//! Bounded admission control: an in-flight limit, a FIFO wait queue with a
//! depth cap, and typed shedding past both.
//!
//! The gate is a counting semaphore with a bounded, ticketed queue. A
//! query either:
//!
//! 1. **runs** — an execution slot was free (or became free while it
//!    waited in FIFO order),
//! 2. **is shed** — both the slots and the queue were full at arrival
//!    ([`AdmitError::Busy`], mapped to the wire's `BUSY` code), never
//!    accept-then-hang, or
//! 3. **expires in the queue** — its deadline or cancellation fired while
//!    waiting ([`AdmitError::Interrupted`]), so queue time counts against
//!    the deadline exactly like execution time.
//!
//! Waiters poll with short parked sleeps instead of a condition variable —
//! the workspace's `parking_lot` shim deliberately has no `Condvar`, and a
//! sub-millisecond poll on a bounded queue costs nothing measurable
//! against query execution. The state lock is labelled for the lock-order
//! tracker, and waiting is marked as a blocking region so holding any
//! tracked lock across an admission wait is flagged as a violation.

use std::collections::VecDeque;
use std::time::Duration;

use crosse_exec::{CancelToken, Interrupt};
use parking_lot::Mutex;

/// Why a query was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Slots and queue both full at arrival; shed immediately.
    Busy {
        /// Queries executing when the shed decision was made.
        active: usize,
        /// Queries already waiting.
        queued: usize,
    },
    /// Cancelled or deadline-expired while waiting in the queue.
    Interrupted(Interrupt),
}

struct GateState {
    /// Queries currently holding an execution slot.
    active: usize,
    /// FIFO tickets of waiting queries (front = next to run).
    waiting: VecDeque<u64>,
    next_ticket: u64,
}

/// The admission gate shared by every connection of one server.
pub struct AdmissionGate {
    state: Mutex<GateState>,
    max_active: usize,
    queue_depth: usize,
}

/// RAII execution slot: dropping it (normal completion, error, client
/// disconnect unwinding the connection thread) frees the slot for the
/// next FIFO waiter.
pub struct Permit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock();
        st.active = st.active.saturating_sub(1);
    }
}

impl AdmissionGate {
    /// A gate allowing `max_active` concurrent queries (≥ 1) plus at most
    /// `queue_depth` waiters.
    pub fn new(max_active: usize, queue_depth: usize) -> Self {
        AdmissionGate {
            state: Mutex::new_labeled("server.admission", GateState {
                active: 0,
                waiting: VecDeque::new(),
                next_ticket: 0,
            }),
            max_active: max_active.max(1),
            queue_depth,
        }
    }

    /// Acquire an execution slot, waiting in FIFO order while `cancel`
    /// stays live. Sheds with [`AdmitError::Busy`] immediately when both
    /// the slots and the queue are full.
    pub fn enter(&self, cancel: &CancelToken) -> Result<Permit<'_>, AdmitError> {
        let ticket = {
            let mut st = self.state.lock();
            if st.active < self.max_active && st.waiting.is_empty() {
                st.active += 1;
                return Ok(Permit { gate: self });
            }
            if st.waiting.len() >= self.queue_depth {
                return Err(AdmitError::Busy {
                    active: st.active,
                    queued: st.waiting.len(),
                });
            }
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.waiting.push_back(ticket);
            ticket
        };
        // Ticketed poll-wait (the shim has no Condvar). Marked as a
        // blocking region: a caller holding a tracked lock across this
        // wait would be a deadlock candidate and gets flagged.
        parking_lot::tracking::blocking_region("server.admission.wait");
        loop {
            if let Err(i) = cancel.check() {
                let mut st = self.state.lock();
                if let Some(pos) = st.waiting.iter().position(|&t| t == ticket) {
                    st.waiting.remove(pos);
                }
                return Err(AdmitError::Interrupted(i));
            }
            {
                let mut st = self.state.lock();
                if st.active < self.max_active && st.waiting.front() == Some(&ticket) {
                    st.waiting.pop_front();
                    st.active += 1;
                    return Ok(Permit { gate: self });
                }
            }
            std::thread::park_timeout(Duration::from_micros(500));
        }
    }

    /// `(active, queued)` right now (stats surface).
    pub fn depth(&self) -> (usize, usize) {
        let st = self.state.lock();
        (st.active, st.waiting.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn immediate_admission_under_capacity() {
        let gate = AdmissionGate::new(2, 0);
        let t = CancelToken::new();
        let p1 = gate.enter(&t).map_err(|_| ()).unwrap();
        let _p2 = gate.enter(&t).map_err(|_| ()).unwrap();
        assert_eq!(gate.depth(), (2, 0));
        drop(p1);
        assert_eq!(gate.depth(), (1, 0));
    }

    #[test]
    fn full_gate_sheds_typed_busy() {
        let gate = AdmissionGate::new(1, 0);
        let t = CancelToken::new();
        let _p = gate.enter(&t).map_err(|_| ()).unwrap();
        match gate.enter(&t) {
            Err(AdmitError::Busy { active, queued }) => {
                assert_eq!((active, queued), (1, 0));
            }
            other => panic!("expected Busy, got ok={:?}", other.is_ok()),
        };
    }

    #[test]
    fn queued_waiter_runs_when_slot_frees() {
        let gate = Arc::new(AdmissionGate::new(1, 4));
        let t = CancelToken::new();
        let p = gate.enter(&t).map_err(|_| ()).unwrap();
        let ran = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let ran = Arc::clone(&ran);
                std::thread::spawn(move || {
                    let token = CancelToken::new();
                    let _p = gate.enter(&token).map_err(|_| ()).unwrap();
                    ran.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(ran.load(Ordering::SeqCst), 0, "nothing runs before the slot frees");
        drop(p);
        for h in handles {
            h.join().map_err(|_| ()).unwrap();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        assert_eq!(gate.depth(), (0, 0));
    }

    #[test]
    fn deadline_expires_in_queue() {
        let gate = AdmissionGate::new(1, 4);
        let live = CancelToken::new();
        let _p = gate.enter(&live).map_err(|_| ()).unwrap();
        let short = CancelToken::with_deadline(Duration::from_millis(5));
        match gate.enter(&short) {
            Err(AdmitError::Interrupted(Interrupt::DeadlineExceeded)) => {}
            other => panic!("expected queue-deadline expiry, got ok={:?}", other.is_ok()),
        }
        // The expired waiter removed its ticket; the queue is clean.
        assert_eq!(gate.depth(), (1, 0));
    }
}
