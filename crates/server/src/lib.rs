//! `crosse-server`: the CROSNET1 network front-end for the CroSSE engine.
//!
//! A dependency-free TCP server (std `TcpListener`, one I/O thread per
//! connection, execution bounded by an admission gate) speaking a
//! length-prefixed binary frame protocol, plus the matching blocking
//! client. The full protocol specification and the robustness design
//! (admission control, deadlines, cooperative cancellation, drain) live
//! in `crates/server/DESIGN.md`.
//!
//! Quick tour:
//!
//! ```no_run
//! use crosse_server::{Client, Lang, Server, ServerConfig};
//!
//! # fn demo(engine: crosse_core::sqm::SesqlEngine) -> Result<(), Box<dyn std::error::Error>> {
//! let mut handle = Server::start(engine, ServerConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! client.hello("alice")?;
//! let result = client.query(Lang::Sql, "SELECT 1", 0)?;
//! assert!(result.error().is_none());
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod admit;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;
pub mod stats;

pub use admit::{AdmissionGate, AdmitError, Permit};
pub use client::{Client, ClientError, QueryOutcome, QueryResult};
pub use frame::{protocol_error_of, read_frame, write_frame, FrameRead, ProtocolError, MAGIC};
pub use proto::{ErrorCode, Lang, ParamBinding, Request, Response};
pub use server::{Server, ServerConfig, ServerHandle};
pub use stats::ServerStats;

/// Row cells on the wire are engine values; re-exported so client code
/// can match on query results without depending on `crosse-relational`.
pub use crosse_relational::Value;
