//! Wire primitives: length-prefixed frames and the total byte decoder.
//!
//! Everything on a `CROSNET1` connection after the 8-byte magic exchange
//! is a *frame*: a little-endian `u32` payload length followed by that
//! many payload bytes, the first of which is the message tag. The decoder
//! in this module is **total**: any byte sequence either decodes to a
//! typed message or to a typed [`ProtocolError`] — it never panics and
//! never reads out of bounds (proven by a proptest over arbitrary bytes
//! plus a fixed malformed corpus in `tests/server_net.rs`).

use std::fmt;
use std::io::{self, Read, Write};

use crosse_relational::Value;

/// The 8-byte connection preamble both sides exchange before framing.
pub const MAGIC: &[u8; 8] = b"CROSNET1";

/// Hard ceiling on any frame's payload length, independent of the
/// configured per-connection limit (a corrupt length prefix must never
/// cause a multi-gigabyte allocation).
pub const ABSOLUTE_MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Every way a peer's bytes can fail to be a protocol message. One typed
/// case per malformed shape, so tests can assert the decoder's verdict
/// and the server can report precisely what it rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before a field was complete.
    Truncated { needed: usize, have: usize },
    /// The connection preamble was not `CROSNET1`.
    BadMagic([u8; 8]),
    /// A frame length prefix exceeded the limit.
    FrameTooLarge { len: u32, max: u32 },
    /// A zero-length frame (every frame carries at least its tag byte).
    EmptyFrame,
    /// An unknown request tag byte.
    UnknownRequest(u8),
    /// An unknown response tag byte.
    UnknownResponse(u8),
    /// An unknown [`Value`] tag byte.
    BadValueTag(u8),
    /// A boolean encoded as something other than 0 or 1.
    BadBool(u8),
    /// An unknown query-language byte.
    BadLang(u8),
    /// An unknown error-code byte in an error response.
    BadErrorCode(u8),
    /// A string field that is not valid UTF-8.
    BadUtf8,
    /// Bytes left over after a complete message was decoded.
    TrailingBytes { extra: usize },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated { needed, have } => {
                write!(f, "truncated message: needed {needed} more bytes, have {have}")
            }
            ProtocolError::BadMagic(m) => write!(f, "bad connection magic {m:?}"),
            ProtocolError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            ProtocolError::EmptyFrame => write!(f, "zero-length frame"),
            ProtocolError::UnknownRequest(t) => write!(f, "unknown request tag 0x{t:02x}"),
            ProtocolError::UnknownResponse(t) => {
                write!(f, "unknown response tag 0x{t:02x}")
            }
            ProtocolError::BadValueTag(t) => write!(f, "unknown value tag 0x{t:02x}"),
            ProtocolError::BadBool(b) => write!(f, "boolean encoded as 0x{b:02x}"),
            ProtocolError::BadLang(l) => write!(f, "unknown query language 0x{l:02x}"),
            ProtocolError::BadErrorCode(c) => write!(f, "unknown error code 0x{c:02x}"),
            ProtocolError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            ProtocolError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

// ---- encoding ---------------------------------------------------------------

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Append one tagged [`Value`].
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Bool(b) => {
            buf.push(1);
            buf.push(u8::from(*b));
        }
        Value::Int(i) => {
            buf.push(2);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            buf.push(3);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(4);
            put_str(buf, s);
        }
    }
}

// ---- decoding ---------------------------------------------------------------

/// A bounds-checked cursor over one frame's payload. All `take_*` methods
/// return [`ProtocolError::Truncated`] instead of reading past the end.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The decode succeeded only if the message consumed the whole frame.
    pub fn finish(&self) -> Result<(), ProtocolError> {
        match self.remaining() {
            0 => Ok(()),
            extra => Err(ProtocolError::TrailingBytes { extra }),
        }
    }

    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.remaining() < n {
            return Err(ProtocolError::Truncated { needed: n, have: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn take_u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take_bytes(1)?[0])
    }

    pub fn take_u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take_bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub fn take_u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn take_u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take_bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn take_i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(self.take_u64()? as i64)
    }

    pub fn take_str(&mut self) -> Result<String, ProtocolError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::BadUtf8)
    }

    pub fn take_bool(&mut self) -> Result<bool, ProtocolError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(ProtocolError::BadBool(b)),
        }
    }

    pub fn take_value(&mut self) -> Result<Value, ProtocolError> {
        match self.take_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.take_bool()?)),
            2 => Ok(Value::Int(self.take_i64()?)),
            3 => Ok(Value::Float(f64::from_bits(self.take_u64()?))),
            4 => Ok(Value::Str(self.take_str()?.into())),
            t => Err(ProtocolError::BadValueTag(t)),
        }
    }
}

// ---- framed I/O -------------------------------------------------------------

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// The outcome of [`read_frame`].
#[derive(Debug)]
pub enum FrameRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The peer closed the connection cleanly between frames.
    Eof,
}

/// Read one frame, enforcing `max_frame` on the length prefix *before*
/// allocating. A clean EOF before any length byte is `FrameRead::Eof`;
/// an EOF mid-frame is an `UnexpectedEof` I/O error. A too-large or
/// zero-length prefix is returned as a typed [`ProtocolError`] wrapped in
/// `InvalidData` so the caller can answer with a typed error frame.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> io::Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(FrameRead::Eof),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, ProtocolError::EmptyFrame));
    }
    let max = max_frame.min(ABSOLUTE_MAX_FRAME);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            ProtocolError::FrameTooLarge { len, max },
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

/// Pull a typed [`ProtocolError`] back out of an I/O error produced by
/// [`read_frame`] (`None` for genuine transport errors).
pub fn protocol_error_of(e: &io::Error) -> Option<ProtocolError> {
    e.get_ref()?.downcast_ref::<ProtocolError>().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(2.5),
            Value::Str("héllo".into()),
        ];
        let mut buf = Vec::new();
        for v in &vals {
            put_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &vals {
            assert_eq!(&r.take_value().unwrap(), v);
        }
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        let mut r = Reader::new(&buf[..buf.len() - 2]);
        assert!(matches!(r.take_str(), Err(ProtocolError::Truncated { .. })));
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut bytes: &[u8] = &[0xff, 0xff, 0xff, 0x7f, 0x00];
        let err = match read_frame(&mut bytes, 1024) {
            Err(e) => e,
            Ok(_) => panic!("oversized frame accepted"),
        };
        assert_eq!(
            protocol_error_of(&err),
            Some(ProtocolError::FrameTooLarge { len: 0x7fffffff, max: 1024 })
        );
    }

    #[test]
    fn empty_frame_is_rejected() {
        let mut bytes: &[u8] = &[0, 0, 0, 0];
        let err = read_frame(&mut bytes, 1024).unwrap_err();
        assert_eq!(protocol_error_of(&err), Some(ProtocolError::EmptyFrame));
    }

    #[test]
    fn clean_eof_between_frames() {
        let mut bytes: &[u8] = &[];
        assert!(matches!(read_frame(&mut bytes, 1024), Ok(FrameRead::Eof)));
    }
}
