//! Typed protocol messages and their (total) codec.
//!
//! See `crates/server/DESIGN.md` for the full wire specification. Every
//! message encodes to one frame payload (tag byte + fields) and decodes
//! via [`Reader`], so malformed bytes always surface as a typed
//! [`ProtocolError`].

use crosse_relational::Value;

use crate::frame::{put_str, put_value, ProtocolError, Reader};

/// Which query language a `QUERY` / `PREPARE` frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lang {
    /// SESQL (ENRICH-capable; DDL/DML statements are routed to the
    /// relational engine exactly like the local CLI does).
    Sesql,
    Sql,
    Sparql,
}

impl Lang {
    pub fn to_byte(self) -> u8 {
        match self {
            Lang::Sesql => 0,
            Lang::Sql => 1,
            Lang::Sparql => 2,
        }
    }

    pub fn from_byte(b: u8) -> Result<Lang, ProtocolError> {
        match b {
            0 => Ok(Lang::Sesql),
            1 => Ok(Lang::Sql),
            2 => Ok(Lang::Sparql),
            other => Err(ProtocolError::BadLang(other)),
        }
    }
}

/// Typed failure classes a server reports. The robustness-relevant ones
/// (`Busy`, `Cancelled`, `DeadlineExceeded`, `RowBudget`) are distinct
/// codes so clients can react (back off, retry, re-plan) without parsing
/// message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer violated the wire protocol.
    Protocol,
    /// Shed by admission control: in-flight and queue limits are full.
    Busy,
    /// The query was cancelled (client disconnect or server shutdown).
    Cancelled,
    /// The query's deadline passed before it finished.
    DeadlineExceeded,
    /// The query itself failed (parse, plan, eval, constraint, ...).
    Query,
    /// A frame exceeded the connection's size limit.
    TooLarge,
    /// The result exceeded the per-query row budget.
    RowBudget,
    /// The server is draining for shutdown and accepts no new queries.
    ShuttingDown,
}

impl ErrorCode {
    pub fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::Busy => 2,
            ErrorCode::Cancelled => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Query => 5,
            ErrorCode::TooLarge => 6,
            ErrorCode::RowBudget => 7,
            ErrorCode::ShuttingDown => 8,
        }
    }

    pub fn from_byte(b: u8) -> Result<ErrorCode, ProtocolError> {
        match b {
            1 => Ok(ErrorCode::Protocol),
            2 => Ok(ErrorCode::Busy),
            3 => Ok(ErrorCode::Cancelled),
            4 => Ok(ErrorCode::DeadlineExceeded),
            5 => Ok(ErrorCode::Query),
            6 => Ok(ErrorCode::TooLarge),
            7 => Ok(ErrorCode::RowBudget),
            8 => Ok(ErrorCode::ShuttingDown),
            other => Err(ProtocolError::BadErrorCode(other)),
        }
    }
}

/// One `(name, value)` binding of an `EXECUTE` frame; an empty name means
/// positional (bindings keep their frame order).
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBinding {
    pub name: String,
    pub value: Value,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Must be the first frame on a connection.
    Hello { user: String },
    /// One-shot query. `deadline_ms == 0` means "use the server default".
    Query { lang: Lang, deadline_ms: u32, text: String },
    /// Compile a statement under a client-chosen cursor name.
    Prepare { lang: Lang, name: String, text: String },
    /// Execute a previously prepared statement with bound parameters.
    Execute { name: String, deadline_ms: u32, params: Vec<ParamBinding> },
    /// Render the optimized plan (SESQL/SQL) without executing.
    Explain { text: String },
    /// Lint a statement in the session's knowledge context.
    Lint { text: String },
    /// Server counters (`\server-stats`).
    Stats,
    Ping,
    /// Graceful goodbye; the server closes after acknowledging.
    Close,
}

const REQ_HELLO: u8 = 0x01;
const REQ_QUERY: u8 = 0x02;
const REQ_PREPARE: u8 = 0x03;
const REQ_EXECUTE: u8 = 0x04;
const REQ_EXPLAIN: u8 = 0x05;
const REQ_LINT: u8 = 0x06;
const REQ_STATS: u8 = 0x07;
const REQ_PING: u8 = 0x08;
const REQ_CLOSE: u8 = 0x09;

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Hello { user } => {
                buf.push(REQ_HELLO);
                put_str(&mut buf, user);
            }
            Request::Query { lang, deadline_ms, text } => {
                buf.push(REQ_QUERY);
                buf.push(lang.to_byte());
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
                put_str(&mut buf, text);
            }
            Request::Prepare { lang, name, text } => {
                buf.push(REQ_PREPARE);
                buf.push(lang.to_byte());
                put_str(&mut buf, name);
                put_str(&mut buf, text);
            }
            Request::Execute { name, deadline_ms, params } => {
                buf.push(REQ_EXECUTE);
                put_str(&mut buf, name);
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
                buf.extend_from_slice(&(params.len() as u16).to_le_bytes());
                for p in params {
                    put_str(&mut buf, &p.name);
                    put_value(&mut buf, &p.value);
                }
            }
            Request::Explain { text } => {
                buf.push(REQ_EXPLAIN);
                put_str(&mut buf, text);
            }
            Request::Lint { text } => {
                buf.push(REQ_LINT);
                put_str(&mut buf, text);
            }
            Request::Stats => buf.push(REQ_STATS),
            Request::Ping => buf.push(REQ_PING),
            Request::Close => buf.push(REQ_CLOSE),
        }
        buf
    }

    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let mut r = Reader::new(payload);
        let req = match r.take_u8()? {
            REQ_HELLO => Request::Hello { user: r.take_str()? },
            REQ_QUERY => Request::Query {
                lang: Lang::from_byte(r.take_u8()?)?,
                deadline_ms: r.take_u32()?,
                text: r.take_str()?,
            },
            REQ_PREPARE => Request::Prepare {
                lang: Lang::from_byte(r.take_u8()?)?,
                name: r.take_str()?,
                text: r.take_str()?,
            },
            REQ_EXECUTE => {
                let name = r.take_str()?;
                let deadline_ms = r.take_u32()?;
                let n = r.take_u16()? as usize;
                let mut params = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    params.push(ParamBinding { name: r.take_str()?, value: r.take_value()? });
                }
                Request::Execute { name, deadline_ms, params }
            }
            REQ_EXPLAIN => Request::Explain { text: r.take_str()? },
            REQ_LINT => Request::Lint { text: r.take_str()? },
            REQ_STATS => Request::Stats,
            REQ_PING => Request::Ping,
            REQ_CLOSE => Request::Close,
            other => return Err(ProtocolError::UnknownRequest(other)),
        };
        r.finish()?;
        Ok(req)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement (server identity string).
    HelloOk { server: String },
    /// Result-set column names; precedes the row batches.
    Schema { columns: Vec<String> },
    /// One batch of rows (each row: `u16` column count + tagged values).
    RowBatch { rows: Vec<Vec<Value>> },
    /// End of a successful query. `rows_scanned` is `u64::MAX` when the
    /// execution path does not track it (materialised enrichment).
    Done { rows: u64, rows_scanned: u64, elapsed_us: u64 },
    /// Typed failure.
    Error { code: ErrorCode, message: String },
    /// Free-form text result (EXPLAIN, lint findings).
    Text { text: String },
    /// A statement was prepared under `name` with `params` parameters.
    PreparedOk { name: String, params: u16 },
    Pong,
    /// Server counters as ordered key/value pairs.
    StatsReply { entries: Vec<(String, u64)> },
}

const RSP_HELLO_OK: u8 = 0x81;
const RSP_SCHEMA: u8 = 0x82;
const RSP_ROW_BATCH: u8 = 0x83;
const RSP_DONE: u8 = 0x84;
const RSP_ERROR: u8 = 0x85;
const RSP_TEXT: u8 = 0x86;
const RSP_PREPARED_OK: u8 = 0x87;
const RSP_PONG: u8 = 0x88;
const RSP_STATS: u8 = 0x89;

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::HelloOk { server } => {
                buf.push(RSP_HELLO_OK);
                put_str(&mut buf, server);
            }
            Response::Schema { columns } => {
                buf.push(RSP_SCHEMA);
                buf.extend_from_slice(&(columns.len() as u16).to_le_bytes());
                for c in columns {
                    put_str(&mut buf, c);
                }
            }
            Response::RowBatch { rows } => {
                buf.push(RSP_ROW_BATCH);
                buf.extend_from_slice(&(rows.len() as u32).to_le_bytes());
                for row in rows {
                    buf.extend_from_slice(&(row.len() as u16).to_le_bytes());
                    for v in row {
                        put_value(&mut buf, v);
                    }
                }
            }
            Response::Done { rows, rows_scanned, elapsed_us } => {
                buf.push(RSP_DONE);
                buf.extend_from_slice(&rows.to_le_bytes());
                buf.extend_from_slice(&rows_scanned.to_le_bytes());
                buf.extend_from_slice(&elapsed_us.to_le_bytes());
            }
            Response::Error { code, message } => {
                buf.push(RSP_ERROR);
                buf.push(code.to_byte());
                put_str(&mut buf, message);
            }
            Response::Text { text } => {
                buf.push(RSP_TEXT);
                put_str(&mut buf, text);
            }
            Response::PreparedOk { name, params } => {
                buf.push(RSP_PREPARED_OK);
                put_str(&mut buf, name);
                buf.extend_from_slice(&params.to_le_bytes());
            }
            Response::Pong => buf.push(RSP_PONG),
            Response::StatsReply { entries } => {
                buf.push(RSP_STATS);
                buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for (k, v) in entries {
                    put_str(&mut buf, k);
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        buf
    }

    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let mut r = Reader::new(payload);
        let rsp = match r.take_u8()? {
            RSP_HELLO_OK => Response::HelloOk { server: r.take_str()? },
            RSP_SCHEMA => {
                let n = r.take_u16()? as usize;
                let mut columns = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    columns.push(r.take_str()?);
                }
                Response::Schema { columns }
            }
            RSP_ROW_BATCH => {
                let n = r.take_u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let w = r.take_u16()? as usize;
                    let mut row = Vec::with_capacity(w.min(1024));
                    for _ in 0..w {
                        row.push(r.take_value()?);
                    }
                    rows.push(row);
                }
                Response::RowBatch { rows }
            }
            RSP_DONE => Response::Done {
                rows: r.take_u64()?,
                rows_scanned: r.take_u64()?,
                elapsed_us: r.take_u64()?,
            },
            RSP_ERROR => Response::Error {
                code: ErrorCode::from_byte(r.take_u8()?)?,
                message: r.take_str()?,
            },
            RSP_TEXT => Response::Text { text: r.take_str()? },
            RSP_PREPARED_OK => {
                Response::PreparedOk { name: r.take_str()?, params: r.take_u16()? }
            }
            RSP_PONG => Response::Pong,
            RSP_STATS => {
                let n = r.take_u16()? as usize;
                let mut entries = Vec::with_capacity(n.min(256));
                for _ in 0..n {
                    entries.push((r.take_str()?, r.take_u64()?));
                }
                Response::StatsReply { entries }
            }
            other => return Err(ProtocolError::UnknownResponse(other)),
        };
        r.finish()?;
        Ok(rsp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        assert_eq!(Request::decode(&req.encode()), Ok(req));
    }

    fn round_trip_rsp(rsp: Response) {
        assert_eq!(Response::decode(&rsp.encode()), Ok(rsp));
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Hello { user: "director".into() });
        round_trip_req(Request::Query {
            lang: Lang::Sesql,
            deadline_ms: 250,
            text: "SELECT 1;".into(),
        });
        round_trip_req(Request::Prepare {
            lang: Lang::Sql,
            name: "q1".into(),
            text: "SELECT * FROM t WHERE x = $1".into(),
        });
        round_trip_req(Request::Execute {
            name: "q1".into(),
            deadline_ms: 0,
            params: vec![
                ParamBinding { name: String::new(), value: Value::Int(7) },
                ParamBinding { name: "lim".into(), value: Value::Str("x".into()) },
            ],
        });
        round_trip_req(Request::Explain { text: "SELECT 1".into() });
        round_trip_req(Request::Lint { text: "SELECT 1".into() });
        round_trip_req(Request::Stats);
        round_trip_req(Request::Ping);
        round_trip_req(Request::Close);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_rsp(Response::HelloOk { server: "crosse 0.1".into() });
        round_trip_rsp(Response::Schema { columns: vec!["a".into(), "b".into()] });
        round_trip_rsp(Response::RowBatch {
            rows: vec![vec![Value::Int(1), Value::Null], vec![Value::Bool(true), Value::Float(0.5)]],
        });
        round_trip_rsp(Response::Done { rows: 10, rows_scanned: 1024, elapsed_us: 55 });
        round_trip_rsp(Response::Error {
            code: ErrorCode::Busy,
            message: "server busy".into(),
        });
        round_trip_rsp(Response::Text { text: "Plan".into() });
        round_trip_rsp(Response::PreparedOk { name: "q1".into(), params: 2 });
        round_trip_rsp(Response::Pong);
        round_trip_rsp(Response::StatsReply {
            entries: vec![("accepted".into(), 3), ("shed".into(), 1)],
        });
    }

    #[test]
    fn unknown_tags_are_typed() {
        assert_eq!(Request::decode(&[0x7f]), Err(ProtocolError::UnknownRequest(0x7f)));
        assert_eq!(Response::decode(&[0x10]), Err(ProtocolError::UnknownResponse(0x10)));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0);
        assert_eq!(
            Request::decode(&bytes),
            Err(ProtocolError::TrailingBytes { extra: 1 })
        );
    }
}
