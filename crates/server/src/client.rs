//! Blocking CROSNET1 client, used by the CLI's `--connect` mode, the
//! over-the-wire benchmark, and the chaos harness.
//!
//! One [`Client`] is one connection: it performs the magic exchange on
//! connect, then exchanges frames synchronously. Query results arrive as
//! a [`QueryResult`] that either completed ([`QueryOutcome::Done`]) or
//! ended in a typed server error mid-stream — both carry whatever rows
//! were received first, mirroring how the server streams.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crosse_relational::Value;

use crate::frame::{protocol_error_of, read_frame, write_frame, FrameRead, MAGIC};
use crate::proto::{ErrorCode, Lang, ParamBinding, Request, Response};

/// Client-side failure: transport/protocol trouble (as opposed to a typed
/// server error, which is part of a normal [`QueryResult`]).
#[derive(Debug)]
pub enum ClientError {
    /// Transport I/O failed (includes protocol violations by the server).
    Io(io::Error),
    /// The server answered with a frame the client did not expect here.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => match protocol_error_of(e) {
                Some(p) => write!(f, "protocol error: {p}"),
                None => write!(f, "connection error: {e}"),
            },
            ClientError::Unexpected(what) => write!(f, "unexpected server reply: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// How a query ended on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// The server sent `DONE`.
    Done {
        rows: u64,
        /// `u64::MAX` means the execution path does not track it.
        rows_scanned: u64,
        elapsed_us: u64,
    },
    /// The server sent a typed error (possibly mid-stream).
    Error { code: ErrorCode, message: String },
}

/// A complete query exchange: schema + rows received before the outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    pub outcome: QueryOutcome,
}

impl QueryResult {
    /// The typed error, if the query did not complete.
    pub fn error(&self) -> Option<(ErrorCode, &str)> {
        match &self.outcome {
            QueryOutcome::Error { code, message } => Some((*code, message)),
            QueryOutcome::Done { .. } => None,
        }
    }
}

/// One CROSNET1 connection.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
}

impl Client {
    /// Connect and exchange magic. No session yet — call [`Client::hello`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.write_all(MAGIC)?;
        stream.flush()?;
        let mut echo = [0u8; 8];
        stream.read_exact(&mut echo)?;
        if &echo != MAGIC {
            return Err(ClientError::Unexpected(format!(
                "bad magic echo {echo:?} — not a CROSNET1 server"
            )));
        }
        Ok(Client { stream, max_frame: crate::frame::ABSOLUTE_MAX_FRAME })
    }

    /// Limit how long any single receive may block (useful in tests and
    /// the chaos harness; the default is to block indefinitely).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        match read_frame(&mut self.stream, self.max_frame)? {
            FrameRead::Frame(payload) => Response::decode(&payload)
                .map_err(|e| ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, e))),
            FrameRead::Eof => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Open a session as `user`. Returns the server identity string, or a
    /// typed error message.
    pub fn hello(&mut self, user: &str) -> Result<String, ClientError> {
        self.send(&Request::Hello { user: user.into() })?;
        match self.recv()? {
            Response::HelloOk { server } => Ok(server),
            Response::Error { code, message } => {
                Err(ClientError::Unexpected(format!("{code:?}: {message}")))
            }
            other => Err(ClientError::Unexpected(describe(&other))),
        }
    }

    /// Run a query and collect its streamed result. `deadline_ms == 0`
    /// asks for the server's default deadline.
    pub fn query(
        &mut self,
        lang: Lang,
        text: &str,
        deadline_ms: u32,
    ) -> Result<QueryResult, ClientError> {
        self.send(&Request::Query { lang, deadline_ms, text: text.into() })?;
        self.collect_result()
    }

    /// Prepare a statement under a client-chosen cursor name. Returns the
    /// server-reported parameter count, or the typed error message.
    pub fn prepare(
        &mut self,
        lang: Lang,
        name: &str,
        text: &str,
    ) -> Result<Result<u16, String>, ClientError> {
        self.send(&Request::Prepare { lang, name: name.into(), text: text.into() })?;
        match self.recv()? {
            Response::PreparedOk { params, .. } => Ok(Ok(params)),
            Response::Error { message, .. } => Ok(Err(message)),
            other => Err(ClientError::Unexpected(describe(&other))),
        }
    }

    /// Execute a prepared statement with bound parameters.
    pub fn execute(
        &mut self,
        name: &str,
        params: Vec<ParamBinding>,
        deadline_ms: u32,
    ) -> Result<QueryResult, ClientError> {
        self.send(&Request::Execute { name: name.into(), deadline_ms, params })?;
        self.collect_result()
    }

    /// `EXPLAIN` a statement; `Err(message)` is the server's typed error.
    pub fn explain(&mut self, text: &str) -> Result<Result<String, String>, ClientError> {
        self.send(&Request::Explain { text: text.into() })?;
        match self.recv()? {
            Response::Text { text } => Ok(Ok(text)),
            Response::Error { message, .. } => Ok(Err(message)),
            other => Err(ClientError::Unexpected(describe(&other))),
        }
    }

    /// Lint a statement; the reply is the rendered diagnostics (possibly
    /// empty).
    pub fn lint(&mut self, text: &str) -> Result<Result<String, String>, ClientError> {
        self.send(&Request::Lint { text: text.into() })?;
        match self.recv()? {
            Response::Text { text } => Ok(Ok(text)),
            Response::Error { message, .. } => Ok(Err(message)),
            other => Err(ClientError::Unexpected(describe(&other))),
        }
    }

    /// Fetch the server's counter snapshot.
    pub fn stats(&mut self) -> Result<Vec<(String, u64)>, ClientError> {
        self.send(&Request::Stats)?;
        match self.recv()? {
            Response::StatsReply { entries } => Ok(entries),
            other => Err(ClientError::Unexpected(describe(&other))),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Unexpected(describe(&other))),
        }
    }

    /// Polite goodbye (the server closes after acknowledging).
    pub fn close(&mut self) -> Result<(), ClientError> {
        self.send(&Request::Close)?;
        let _ = self.recv();
        Ok(())
    }

    /// Drain one query's reply stream: optional `SCHEMA`, any number of
    /// `ROW_BATCH`es, then `DONE` or `ERROR`.
    fn collect_result(&mut self) -> Result<QueryResult, ClientError> {
        let mut columns = Vec::new();
        let mut rows = Vec::new();
        loop {
            match self.recv()? {
                Response::Schema { columns: c } => columns = c,
                Response::RowBatch { rows: mut batch } => rows.append(&mut batch),
                Response::Done { rows: n, rows_scanned, elapsed_us } => {
                    return Ok(QueryResult {
                        columns,
                        rows,
                        outcome: QueryOutcome::Done { rows: n, rows_scanned, elapsed_us },
                    })
                }
                Response::Error { code, message } => {
                    return Ok(QueryResult {
                        columns,
                        rows,
                        outcome: QueryOutcome::Error { code, message },
                    })
                }
                other => return Err(ClientError::Unexpected(describe(&other))),
            }
        }
    }
}

fn describe(rsp: &Response) -> String {
    match rsp {
        Response::HelloOk { .. } => "HELLO_OK".into(),
        Response::Schema { .. } => "SCHEMA".into(),
        Response::RowBatch { .. } => "ROW_BATCH".into(),
        Response::Done { .. } => "DONE".into(),
        Response::Error { code, message } => format!("ERROR({code:?}: {message})"),
        Response::Text { .. } => "TEXT".into(),
        Response::PreparedOk { .. } => "PREPARED_OK".into(),
        Response::Pong => "PONG".into(),
        Response::StatsReply { .. } => "STATS_REPLY".into(),
    }
}
