//! Server counters and latency percentiles (the `\server-stats` surface).
//!
//! Counters are relaxed atomics (monotone, read racily for display);
//! accepted-request latencies go into a bounded ring of recent samples
//! from which p50/p95 are computed on demand. The ring lock is labelled
//! for the lock-order tracker and never held across blocking work.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// Recent-latency window size: big enough for stable percentiles, small
/// enough that a snapshot sort is trivial.
const LATENCY_WINDOW: usize = 1024;

/// Counters shared by every connection of one server.
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted (including ones later rejected over capacity).
    pub accepted_conns: AtomicU64,
    /// Connections open right now.
    pub active_conns: AtomicU64,
    /// Connections rejected because `max_conns` was reached.
    pub rejected_conns: AtomicU64,
    /// Query/Execute requests admitted for execution.
    pub accepted_queries: AtomicU64,
    /// Queries that completed successfully.
    pub completed: AtomicU64,
    /// Queries shed with `BUSY` by admission control.
    pub shed: AtomicU64,
    /// Queries ending in `Cancelled` (disconnect or shutdown).
    pub cancelled: AtomicU64,
    /// Queries ending in `DeadlineExceeded` (in queue or mid-stream).
    pub deadline_exceeded: AtomicU64,
    /// Queries failing in the engine (parse/plan/eval/...).
    pub query_errors: AtomicU64,
    /// Frames rejected as protocol violations.
    pub protocol_errors: AtomicU64,
    /// Queries stopped by the per-query row budget.
    pub row_budget_hits: AtomicU64,
    latencies: Mutex<VecDeque<u64>>,
}

impl ServerStats {
    pub fn new() -> Self {
        ServerStats {
            latencies: Mutex::new_labeled("server.latency", VecDeque::new()),
            ..Default::default()
        }
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one accepted request's end-to-end latency (queue + execute
    /// + stream), keeping the most recent [`LATENCY_WINDOW`] samples.
    pub fn record_latency_us(&self, us: u64) {
        let mut ring = self.latencies.lock();
        if ring.len() == LATENCY_WINDOW {
            ring.pop_front();
        }
        ring.push_back(us);
    }

    /// `(p50, p95)` over the recent window, in microseconds (zeros when
    /// no samples yet).
    pub fn latency_percentiles(&self) -> (u64, u64) {
        let mut sorted: Vec<u64> = self.latencies.lock().iter().copied().collect();
        if sorted.is_empty() {
            return (0, 0);
        }
        sorted.sort_unstable();
        let pick = |p: f64| {
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        (pick(0.50), pick(0.95))
    }

    /// Render every counter (plus queue depth supplied by the caller) as
    /// ordered key/value pairs for the `STATS` response.
    pub fn snapshot(&self, active_queries: usize, queue_depth: usize) -> Vec<(String, u64)> {
        let (p50, p95) = self.latency_percentiles();
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        vec![
            ("accepted_conns".into(), c(&self.accepted_conns)),
            ("active_conns".into(), c(&self.active_conns)),
            ("rejected_conns".into(), c(&self.rejected_conns)),
            ("accepted_queries".into(), c(&self.accepted_queries)),
            ("completed".into(), c(&self.completed)),
            ("shed".into(), c(&self.shed)),
            ("cancelled".into(), c(&self.cancelled)),
            ("deadline_exceeded".into(), c(&self.deadline_exceeded)),
            ("query_errors".into(), c(&self.query_errors)),
            ("protocol_errors".into(), c(&self.protocol_errors)),
            ("row_budget_hits".into(), c(&self.row_budget_hits)),
            ("active_queries".into(), active_queries as u64),
            ("queue_depth".into(), queue_depth as u64),
            ("p50_us".into(), p50),
            ("p95_us".into(), p95),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let s = ServerStats::new();
        for us in 1..=100 {
            s.record_latency_us(us);
        }
        let (p50, p95) = s.latency_percentiles();
        assert!((45..=55).contains(&p50), "p50 = {p50}");
        assert!((90..=100).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn window_is_bounded() {
        let s = ServerStats::new();
        for us in 0..(LATENCY_WINDOW as u64 + 500) {
            s.record_latency_us(us);
        }
        assert_eq!(s.latencies.lock().len(), LATENCY_WINDOW);
        // Only the most recent window remains.
        let (p50, _) = s.latency_percentiles();
        assert!(p50 >= 500);
    }

    #[test]
    fn snapshot_has_stable_keys() {
        let s = ServerStats::new();
        let snap = s.snapshot(2, 3);
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.contains(&"shed"));
        assert!(keys.contains(&"p95_us"));
        let get = |k: &str| snap.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("active_queries"), Some(2));
        assert_eq!(get("queue_depth"), Some(3));
    }
}
