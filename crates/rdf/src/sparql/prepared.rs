// srclint: allow(R002): prepare() resolves every slot before substitution can run
//! Prepared SPARQL queries: compile once, bind terms, evaluate many times.
//!
//! [`prepare`] parses a SELECT into a [`Prepared`] handle carrying its
//! parameter slots. Placeholders use the same grammar as the SQL and
//! SESQL layers:
//!
//! * `$name` — named parameter (every occurrence is one slot). This
//!   deliberately diverges from the SPARQL spec, where `$x` and `?x` are
//!   the same variable; in this engine `?x` is the variable sigil and
//!   `$x` is reserved for parameters.
//! * `?` followed by a non-name character — positional parameter, bound
//!   in occurrence order (internally named `#0`, `#1`, ...).
//!
//! Binding substitutes constant [`Term`]s for the placeholders and hands
//! the resulting parameter-free query to the ID-native evaluator, which
//! then resolves the constants through the dictionary exactly once —
//! bound parameters get the same short-circuit behaviour as constants
//! written literally (an unknown term empties the BGP without scanning).
//!
//! [`PreparedCache`] is the bounded LRU (keyed by normalized query text)
//! that engines put in front of [`prepare`].

use std::sync::Arc;

use parking_lot::Mutex;

use crosse_cache::{CacheStats, Lru};

use crate::error::{Error, Result};
use crate::store::TripleStore;
use crate::term::Term;

use super::ast::{GraphPattern, PatternTerm, PatternTriple, Query, SparqlExpr};
use super::eval::{evaluate_with, EvalOptions, Solutions};
#[cfg(test)]
use super::eval::evaluate;
use super::parser::parse_query;

/// Term bindings for the parameter slots of a prepared query.
#[derive(Debug, Clone, Default)]
pub struct SparqlParams {
    named: Vec<(String, Term)>,
    positional: Vec<Term>,
}

impl SparqlParams {
    pub fn new() -> Self {
        SparqlParams::default()
    }

    /// Bind a named (`$name`) parameter.
    pub fn set(mut self, name: impl Into<String>, term: Term) -> Self {
        let name = name.into();
        self.named.retain(|(n, _)| *n != name);
        self.named.push((name, term));
        self
    }

    /// Bind the next positional (`?`) parameter.
    pub fn push(mut self, term: Term) -> Self {
        self.positional.push(term);
        self
    }

    fn lookup(&self, slot: &str) -> Result<Term> {
        // Positional slots carry their *textual* occurrence index in the
        // synthesized `#<n>` name (AST traversal order differs — filters
        // are hoisted above their group's triples).
        if let Some(n) = slot.strip_prefix('#') {
            let index: usize = n
                .parse()
                .map_err(|_| Error::eval(format!("malformed positional slot `{slot}`")))?;
            self.positional.get(index).cloned().ok_or_else(|| {
                Error::eval(format!(
                    "missing binding for positional parameter #{}",
                    index + 1
                ))
            })
        } else {
            self.named
                .iter()
                .find(|(n, _)| n == slot)
                .map(|(_, t)| t.clone())
                .ok_or_else(|| {
                    Error::eval(format!("missing binding for parameter `${slot}`"))
                })
        }
    }
}

/// A compiled SPARQL SELECT with its parameter slot list.
#[derive(Debug, Clone)]
pub struct Prepared {
    query: Arc<Query>,
    /// Parameter names in first-occurrence order (`#<n>` = positional).
    params: Arc<Vec<String>>,
    text: String,
}

/// Compile a SELECT query into a [`Prepared`] handle.
pub fn prepare(sparql: &str) -> Result<Prepared> {
    let query = parse_query(sparql)?;
    let params = query.params();
    Ok(Prepared {
        query: Arc::new(query),
        params: Arc::new(params),
        text: normalize_sparql(sparql),
    })
}

impl Prepared {
    /// Parameter slot names in binding order (`#<n>` entries are
    /// positional).
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// The parsed (still parameterised) query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Normalized query text (the cache key under [`PreparedCache`]).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Substitute bindings, producing a parameter-free query.
    pub fn bind(&self, params: &SparqlParams) -> Result<Query> {
        if self.params.is_empty() {
            return Ok((*self.query).clone());
        }
        let mut values = Vec::with_capacity(self.params.len());
        for slot in self.params.iter() {
            values.push((slot.clone(), params.lookup(slot)?));
        }
        Ok(bind_query(&self.query, &values))
    }

    /// Bind and evaluate against the union of `graphs`.
    pub fn execute(
        &self,
        store: &TripleStore,
        graphs: &[&str],
        params: &SparqlParams,
    ) -> Result<Solutions> {
        self.execute_with(store, graphs, params, &EvalOptions::default())
    }

    /// Bind and evaluate with explicit [`EvalOptions`] (e.g. a worker
    /// thread budget for partition-parallel probing).
    pub fn execute_with(
        &self,
        store: &TripleStore,
        graphs: &[&str],
        params: &SparqlParams,
        options: &EvalOptions,
    ) -> Result<Solutions> {
        let bound = self.bind(params)?;
        evaluate_with(store, graphs, &bound, options)
    }

    /// Bind and evaluate, returning a cursor over the solutions.
    pub fn cursor(
        &self,
        store: &TripleStore,
        graphs: &[&str],
        params: &SparqlParams,
    ) -> Result<SolutionCursor> {
        Ok(SolutionCursor::new(self.execute(store, graphs, params)?))
    }
}

/// A pull-style cursor over a solution set: the uniform consumption shape
/// shared with the relational `Rows` cursor (the SPARQL evaluator
/// materialises solutions, so this cursor streams the hand-off, not the
/// probe loop).
#[derive(Debug)]
pub struct SolutionCursor {
    variables: Vec<String>,
    rows: std::vec::IntoIter<Vec<Option<Term>>>,
}

impl SolutionCursor {
    pub fn new(sols: Solutions) -> Self {
        SolutionCursor { variables: sols.variables, rows: sols.rows.into_iter() }
    }

    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// Remaining solutions, materialised back into a [`Solutions`].
    pub fn collect_solutions(self) -> Solutions {
        Solutions { variables: self.variables, rows: self.rows.collect() }
    }
}

impl Iterator for SolutionCursor {
    type Item = Vec<Option<Term>>;

    fn next(&mut self) -> Option<Self::Item> {
        self.rows.next()
    }
}

// ---- binding substitution --------------------------------------------------

fn bound_term(slot: &str, values: &[(String, Term)]) -> Term {
    values
        .iter()
        .find(|(n, _)| n == slot)
        .map(|(_, t)| t.clone())
        .expect("all slots resolved before substitution")
}

fn bind_pattern_term(pt: &PatternTerm, values: &[(String, Term)]) -> PatternTerm {
    match pt {
        PatternTerm::Param(p) => PatternTerm::Const(bound_term(p, values)),
        other => other.clone(),
    }
}

fn bind_expr(e: &SparqlExpr, values: &[(String, Term)]) -> SparqlExpr {
    match e {
        SparqlExpr::Param(p) => SparqlExpr::Const(bound_term(p, values)),
        SparqlExpr::Var(_) | SparqlExpr::Const(_) | SparqlExpr::Bound(_) => e.clone(),
        SparqlExpr::Cmp(a, op, b) => SparqlExpr::Cmp(
            Box::new(bind_expr(a, values)),
            *op,
            Box::new(bind_expr(b, values)),
        ),
        SparqlExpr::And(a, b) => {
            SparqlExpr::And(Box::new(bind_expr(a, values)), Box::new(bind_expr(b, values)))
        }
        SparqlExpr::Or(a, b) => {
            SparqlExpr::Or(Box::new(bind_expr(a, values)), Box::new(bind_expr(b, values)))
        }
        SparqlExpr::Not(inner) => SparqlExpr::Not(Box::new(bind_expr(inner, values))),
        SparqlExpr::Regex(inner, pat) => {
            SparqlExpr::Regex(Box::new(bind_expr(inner, values)), pat.clone())
        }
        SparqlExpr::Str(inner) => SparqlExpr::Str(Box::new(bind_expr(inner, values))),
    }
}

fn bind_triple(t: &PatternTriple, values: &[(String, Term)]) -> PatternTriple {
    PatternTriple {
        subject: bind_pattern_term(&t.subject, values),
        predicate: bind_pattern_term(&t.predicate, values),
        object: bind_pattern_term(&t.object, values),
        path: t.path,
        complex: t.complex.clone(),
    }
}

fn bind_graph_pattern(p: &GraphPattern, values: &[(String, Term)]) -> GraphPattern {
    match p {
        GraphPattern::Bgp(ts) => {
            GraphPattern::Bgp(ts.iter().map(|t| bind_triple(t, values)).collect())
        }
        GraphPattern::Join(a, b) => GraphPattern::Join(
            Box::new(bind_graph_pattern(a, values)),
            Box::new(bind_graph_pattern(b, values)),
        ),
        GraphPattern::Optional(a, b) => GraphPattern::Optional(
            Box::new(bind_graph_pattern(a, values)),
            Box::new(bind_graph_pattern(b, values)),
        ),
        GraphPattern::Union(a, b) => GraphPattern::Union(
            Box::new(bind_graph_pattern(a, values)),
            Box::new(bind_graph_pattern(b, values)),
        ),
        GraphPattern::Minus(a, b) => GraphPattern::Minus(
            Box::new(bind_graph_pattern(a, values)),
            Box::new(bind_graph_pattern(b, values)),
        ),
        GraphPattern::Filter(inner, e) => GraphPattern::Filter(
            Box::new(bind_graph_pattern(inner, values)),
            bind_expr(e, values),
        ),
        GraphPattern::Values { .. } => p.clone(),
    }
}

/// Substitute bound terms for every parameter of `query`.
pub fn bind_query(query: &Query, values: &[(String, Term)]) -> Query {
    Query {
        distinct: query.distinct,
        variables: query.variables.clone(),
        projections: query.projections.clone(),
        pattern: bind_graph_pattern(&query.pattern, values),
        group_by: query.group_by.clone(),
        having: query.having.as_ref().map(|h| bind_expr(h, values)),
        order_by: query.order_by.clone(),
        limit: query.limit,
        offset: query.offset,
    }
}

/// Whitespace/comment-insensitive cache key: runs of whitespace collapse
/// to one space (string literals and IRIs survive verbatim), `#` comments
/// drop.
pub fn normalize_sparql(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut pending_space = false;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            _ if c.is_ascii_whitespace() => {
                pending_space = !out.is_empty();
                i += 1;
            }
            b'"' | b'<' => {
                // Copy the literal/IRI verbatim through its terminator.
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                let close = if c == b'"' { b'"' } else { b'>' };
                out.push(c as char);
                i += 1;
                while i < bytes.len() {
                    let b = bytes[i];
                    out.push(b as char);
                    i += 1;
                    if b == b'\\' && close == b'"' && i < bytes.len() {
                        out.push(bytes[i] as char);
                        i += 1;
                        continue;
                    }
                    if b == close {
                        break;
                    }
                    // `<` used as an operator never spans whitespace.
                    if close == b'>' && b.is_ascii_whitespace() {
                        break;
                    }
                }
            }
            _ => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// A bounded LRU of prepared queries keyed by normalized text.
#[derive(Debug)]
pub struct PreparedCache {
    entries: Mutex<Lru<String, Prepared>>,
}

/// Default capacity of a [`PreparedCache`].
pub const DEFAULT_PREPARED_CACHE_CAPACITY: usize = 256;

impl Default for PreparedCache {
    fn default() -> Self {
        PreparedCache::new(DEFAULT_PREPARED_CACHE_CAPACITY)
    }
}

impl PreparedCache {
    pub fn new(capacity: usize) -> Self {
        PreparedCache { entries: Mutex::new_labeled("rdf.prepared_cache", Lru::new(capacity)) }
    }

    /// Compile `sparql`, or return the cached compilation of equivalent
    /// text.
    pub fn prepare(&self, sparql: &str) -> Result<Prepared> {
        let key = normalize_sparql(sparql);
        if let Some(p) = self.entries.lock().get(&key) {
            return Ok(p.clone());
        }
        let p = prepare(sparql)?;
        self.entries.lock().put(key, p.clone());
        Ok(p)
    }

    pub fn stats(&self) -> CacheStats {
        self.entries.lock().stats()
    }

    pub fn set_capacity(&self, capacity: usize) {
        self.entries.lock().set_capacity(capacity);
    }

    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Triple;

    fn store() -> TripleStore {
        let s = TripleStore::new();
        for (sub, p, o) in [
            ("Hg", "dangerLevel", "5"),
            ("Pb", "dangerLevel", "4"),
            ("Cu", "dangerLevel", "1"),
        ] {
            s.insert("kb", &Triple::new(Term::iri(sub), Term::iri(p), Term::lit(o)));
        }
        s
    }

    #[test]
    fn named_parameter_round_trip() {
        let s = store();
        let p = prepare("SELECT ?o WHERE { $elem <dangerLevel> ?o }").unwrap();
        assert_eq!(p.params(), ["elem"]);
        let sols = p
            .execute(&s, &["kb"], &SparqlParams::new().set("elem", Term::iri("Hg")))
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.rows[0][0], Some(Term::lit("5")));
        // Re-execute with a different binding: no re-parse, new result.
        let sols = p
            .execute(&s, &["kb"], &SparqlParams::new().set("elem", Term::iri("Pb")))
            .unwrap();
        assert_eq!(sols.rows[0][0], Some(Term::lit("4")));
    }

    #[test]
    fn positional_parameter_round_trip() {
        let s = store();
        let p = prepare("SELECT ?s WHERE { ?s ? ? }").unwrap();
        assert_eq!(p.params(), ["#0", "#1"]);
        let sols = p
            .execute(
                &s,
                &["kb"],
                &SparqlParams::new()
                    .push(Term::iri("dangerLevel"))
                    .push(Term::lit("5")),
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.rows[0][0], Some(Term::iri("Hg")));
    }

    #[test]
    fn positional_binding_follows_textual_order_not_traversal() {
        // Filters hoist above their group's triples in the AST, so
        // traversal order differs from textual order: a filter written
        // before a triple must still take the *first* pushed value.
        let s = store();
        let p = prepare("SELECT ?s WHERE { FILTER(?d = ?) . ?s ? ?d }").unwrap();
        let sols = p
            .execute(
                &s,
                &["kb"],
                &SparqlParams::new()
                    .push(Term::lit("5")) // #0: the filter comparand
                    .push(Term::iri("dangerLevel")), // #1: the predicate
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.rows[0][0], Some(Term::iri("Hg")));
    }

    #[test]
    fn parameter_in_filter_binds() {
        let s = store();
        let p = prepare(
            "SELECT ?s WHERE { ?s <dangerLevel> ?d . FILTER(?d >= $min) }",
        )
        .unwrap();
        let sols = p
            .execute(&s, &["kb"], &SparqlParams::new().set("min", Term::lit("4")))
            .unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn missing_binding_errors() {
        let s = store();
        let p = prepare("SELECT ?o WHERE { $elem <dangerLevel> ?o }").unwrap();
        let err = p.execute(&s, &["kb"], &SparqlParams::new()).unwrap_err();
        assert!(err.to_string().contains("$elem"), "{err}");
    }

    #[test]
    fn evaluating_unbound_parameters_directly_errors() {
        let s = store();
        let q = parse_query("SELECT ?o WHERE { $elem <dangerLevel> ?o }").unwrap();
        let err = evaluate(&s, &["kb"], &q).unwrap_err();
        assert!(err.to_string().contains("unbound parameter"), "{err}");
    }

    #[test]
    fn unknown_bound_term_short_circuits_to_empty() {
        let s = store();
        let p = prepare("SELECT ?o WHERE { $elem <dangerLevel> ?o }").unwrap();
        let sols = p
            .execute(&s, &["kb"], &SparqlParams::new().set("elem", Term::iri("Xx")))
            .unwrap();
        assert!(sols.is_empty());
    }

    #[test]
    fn question_var_is_still_a_variable() {
        // `?elem` must keep meaning "variable" — only `$` is a parameter.
        let p = prepare("SELECT ?elem WHERE { ?elem <dangerLevel> ?o }").unwrap();
        assert!(p.params().is_empty());
    }

    #[test]
    fn cache_hits_on_whitespace_variants() {
        let cache = PreparedCache::default();
        cache.prepare("SELECT ?s WHERE { ?s <p> ?o }").unwrap();
        cache.prepare("SELECT ?s  WHERE {\n  ?s <p> ?o\n}").unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn cursor_streams_solutions() {
        let s = store();
        let p = prepare("SELECT ?s ?o WHERE { ?s <dangerLevel> ?o }").unwrap();
        let cur = p.cursor(&s, &["kb"], &SparqlParams::new()).unwrap();
        assert_eq!(cur.variables().to_vec(), vec!["s", "o"]);
        let mut n = 0;
        for row in cur {
            assert_eq!(row.len(), 2);
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn prepare_equals_textual_substitution() {
        let s = store();
        let p = prepare(
            "SELECT ?s WHERE { ?s <dangerLevel> ?d . FILTER(?d >= $min) }",
        )
        .unwrap();
        let prepared = p
            .execute(&s, &["kb"], &SparqlParams::new().set("min", Term::lit("4")))
            .unwrap();
        let textual = super::super::eval::query(
            &s,
            &["kb"],
            "SELECT ?s WHERE { ?s <dangerLevel> ?d . FILTER(?d >= \"4\") }",
        )
        .unwrap();
        assert_eq!(prepared.rows, textual.rows);
    }
}
