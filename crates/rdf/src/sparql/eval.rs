//! SPARQL evaluation over the triple store.
//!
//! Evaluation is index-nested-loop over BGPs with a greedy join order
//! (most-constant / most-bound pattern first), hash-free but index-backed —
//! adequate for the per-user knowledge bases CroSSE manages, which are
//! small relative to the relational databank.

use std::cmp::Ordering;
use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::store::{IdPattern, TripleStore};
use crate::term::{Term, TermId};

use super::ast::*;

/// A set of solutions: variable names plus one row of optional bindings per
/// solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    pub variables: Vec<String>,
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a variable.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.variables.iter().position(|v| v == name)
    }

    /// All bound values of one variable (unbound entries skipped).
    pub fn column(&self, name: &str) -> Result<Vec<Term>> {
        let i = self
            .var_index(name)
            .ok_or_else(|| Error::eval(format!("no variable `?{name}` in solutions")))?;
        Ok(self.rows.iter().filter_map(|r| r[i].clone()).collect())
    }
}

/// Evaluate a parsed query against the union of `graphs`.
pub fn evaluate(store: &TripleStore, graphs: &[&str], query: &Query) -> Result<Solutions> {
    // Build the variable table: projected vars first (if explicit), then
    // any others appearing in the pattern.
    let pattern_vars = query.pattern.variables();
    let mut vars: Vec<String> = Vec::new();
    for v in query.variables.iter().chain(pattern_vars.iter()) {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    if !query.is_aggregate() {
        // (Aggregate queries resolve ORDER BY against the output columns,
        // which may be aggregate aliases.)
        for o in &query.order_by {
            if !vars.contains(&o.variable) {
                return Err(Error::eval(format!(
                    "ORDER BY variable `?{}` does not occur in the pattern",
                    o.variable
                )));
            }
        }
    }
    for v in &query.variables {
        if !pattern_vars.contains(v) {
            // Legal in SPARQL (always unbound); we keep it and bind nothing.
        }
    }

    let var_index: HashMap<&str, usize> =
        vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();

    let ctx = EvalCtx { store, graphs, vars: &vars, var_index: &var_index };
    let mut rows = ctx.eval_pattern(&query.pattern, vec![vec![None; vars.len()]])?;

    if query.is_aggregate() {
        return aggregate_solutions(store, query, rows, &var_index);
    }

    // ORDER BY
    if !query.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .map(|o| (var_index[o.variable.as_str()], o.ascending))
            .collect();
        rows.sort_by(|a, b| {
            for &(i, asc) in &keys {
                let ord = cmp_binding(store, a[i], b[i]);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    // Projection
    let (out_vars, proj): (Vec<String>, Vec<usize>) = if query.variables.is_empty() {
        (vars.clone(), (0..vars.len()).collect())
    } else {
        (
            query.variables.clone(),
            query
                .variables
                .iter()
                .map(|v| var_index[v.as_str()])
                .collect(),
        )
    };
    let mut projected: Vec<Vec<Option<TermId>>> = rows
        .into_iter()
        .map(|r| proj.iter().map(|&i| r[i]).collect())
        .collect();

    // DISTINCT
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        projected.retain(|r| seen.insert(r.clone()));
    }

    // LIMIT / OFFSET
    let start = query.offset.unwrap_or(0).min(projected.len());
    let end = match query.limit {
        Some(l) => (start + l).min(projected.len()),
        None => projected.len(),
    };
    let window = &projected[start..end];

    let dict = store.dictionary();
    Ok(Solutions {
        variables: out_vars,
        rows: window
            .iter()
            .map(|r| r.iter().map(|id| id.map(|i| dict.term_of(i))).collect())
            .collect(),
    })
}

/// Group the pattern solutions and compute aggregate projections
/// (SPARQL 1.1 `GROUP BY` / `HAVING` / aggregate functions).
fn aggregate_solutions(
    store: &TripleStore,
    query: &Query,
    rows: Vec<Vec<Option<TermId>>>,
    var_index: &HashMap<&str, usize>,
) -> Result<Solutions> {
    let dict = store.dictionary();

    // Validate projections: plain variables must be grouped.
    for p in &query.projections {
        if let Projection::Var(v) = p {
            if !query.group_by.contains(v) {
                return Err(Error::eval(format!(
                    "variable `?{v}` must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
    }
    let group_is: Vec<usize> = query
        .group_by
        .iter()
        .map(|v| {
            var_index.get(v.as_str()).copied().ok_or_else(|| {
                Error::eval(format!("GROUP BY variable `?{v}` not in pattern"))
            })
        })
        .collect::<Result<_>>()?;

    // Group rows, preserving first-seen order.
    let mut order: Vec<Vec<Option<TermId>>> = Vec::new();
    let mut groups: HashMap<Vec<Option<TermId>>, Vec<usize>> = HashMap::new();
    for (ri, row) in rows.iter().enumerate() {
        let key: Vec<Option<TermId>> = group_is.iter().map(|&i| row[i]).collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(ri);
    }
    // A global aggregate (no GROUP BY) over an empty input is one group.
    if order.is_empty() && query.group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    // Output column names in written order.
    let out_names: Vec<String> = query
        .projections
        .iter()
        .map(|p| match p {
            Projection::Var(v) => v.clone(),
            Projection::Agg(a) => a.alias.clone(),
        })
        .collect();

    let mut out_rows: Vec<Vec<Option<Term>>> = Vec::new();
    for key in &order {
        let members = &groups[key];
        // Per-group bindings for HAVING: group vars + aggregate aliases.
        let mut named: HashMap<&str, Option<Term>> = HashMap::new();
        for (v, id) in query.group_by.iter().zip(key) {
            named.insert(v.as_str(), id.map(|i| dict.term_of(i)));
        }
        let mut agg_values: HashMap<&str, Option<Term>> = HashMap::new();
        for p in &query.projections {
            if let Projection::Agg(a) = p {
                let value = compute_aggregate(store, a, members, &rows, var_index)?;
                agg_values.insert(a.alias.as_str(), value);
            }
        }
        for (k, v) in &agg_values {
            named.insert(k, v.clone());
        }
        if let Some(h) = &query.having {
            if eval_expr_over_terms(h, &named)? != Some(true) {
                continue;
            }
        }
        out_rows.push(
            query
                .projections
                .iter()
                .map(|p| match p {
                    Projection::Var(v) => named.get(v.as_str()).cloned().flatten(),
                    Projection::Agg(a) => {
                        agg_values.get(a.alias.as_str()).cloned().flatten()
                    }
                })
                .collect(),
        );
    }

    // DISTINCT over output rows.
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| {
            let k: Vec<String> = r
                .iter()
                .map(|t| t.as_ref().map(|t| format!("{t:?}")).unwrap_or_default())
                .collect();
            seen.insert(k)
        });
    }

    // ORDER BY against output columns.
    if !query.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .map(|o| {
                out_names
                    .iter()
                    .position(|n| *n == o.variable)
                    .map(|i| (i, o.ascending))
                    .ok_or_else(|| {
                        Error::eval(format!(
                            "ORDER BY variable `?{}` is not projected",
                            o.variable
                        ))
                    })
            })
            .collect::<Result<_>>()?;
        out_rows.sort_by(|a, b| {
            for &(i, asc) in &keys {
                let ord = cmp_term_opt(&a[i], &b[i]);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    let start = query.offset.unwrap_or(0).min(out_rows.len());
    let end = match query.limit {
        Some(l) => (start + l).min(out_rows.len()),
        None => out_rows.len(),
    };
    Ok(Solutions {
        variables: out_names,
        rows: out_rows[start..end].to_vec(),
    })
}

/// Compute one aggregate over the group member rows.
fn compute_aggregate(
    store: &TripleStore,
    agg: &AggProj,
    members: &[usize],
    rows: &[Vec<Option<TermId>>],
    var_index: &HashMap<&str, usize>,
) -> Result<Option<Term>> {
    let dict = store.dictionary();
    // COUNT(*) counts solutions, everything else aggregates bound values.
    let values: Vec<Term> = match &agg.var {
        None => Vec::new(),
        Some(v) => {
            let vi = *var_index.get(v.as_str()).ok_or_else(|| {
                Error::eval(format!("aggregate variable `?{v}` not in pattern"))
            })?;
            let mut vals: Vec<Term> = members
                .iter()
                .filter_map(|&ri| rows[ri][vi].map(|id| dict.term_of(id)))
                .collect();
            if agg.distinct {
                let mut seen = std::collections::HashSet::new();
                vals.retain(|t| seen.insert(t.clone()));
            }
            vals
        }
    };
    let numeric = |vals: &[Term]| -> Result<Vec<f64>> {
        vals.iter()
            .map(|t| {
                t.as_f64().ok_or_else(|| {
                    Error::eval(format!(
                        "non-numeric value `{}` in numeric aggregate",
                        t.lexical_form()
                    ))
                })
            })
            .collect()
    };
    Ok(match agg.func {
        AggFunc::Count => {
            let n = match &agg.var {
                None => members.len(),
                Some(_) => values.len(),
            };
            Some(num_term(n as f64))
        }
        AggFunc::Sum => Some(num_term(numeric(&values)?.iter().sum())),
        AggFunc::Avg => {
            let ns = numeric(&values)?;
            if ns.is_empty() {
                Some(num_term(0.0))
            } else {
                Some(num_term(ns.iter().sum::<f64>() / ns.len() as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Term> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = cmp_term_values(&b, &v);
                        let keep_new = if agg.func == AggFunc::Min {
                            ord == Ordering::Greater
                        } else {
                            ord == Ordering::Less
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best
        }
        AggFunc::Sample => values.into_iter().next(),
    })
}

/// Render a numeric aggregate result as a plain literal, using integer
/// formatting for whole numbers.
fn num_term(x: f64) -> Term {
    if x.fract() == 0.0 && x.abs() < 9e15 {
        Term::lit(format!("{}", x as i64))
    } else {
        Term::lit(format!("{x}"))
    }
}

/// Numeric-when-possible, lexical-otherwise comparison of two terms.
fn cmp_term_values(a: &Term, b: &Term) -> Ordering {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        _ => a.lexical_form().cmp(b.lexical_form()),
    }
}

fn cmp_term_opt(a: &Option<Term>, b: &Option<Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => cmp_term_values(x, y),
    }
}

/// Evaluate a FILTER-style expression over named (already materialised)
/// term bindings — used for HAVING, where values may be computed aggregates
/// that never entered the dictionary.
fn eval_expr_over_terms(
    e: &SparqlExpr,
    named: &HashMap<&str, Option<Term>>,
) -> Result<Option<bool>> {
    fn term_of<'t>(
        e: &'t SparqlExpr,
        named: &'t HashMap<&str, Option<Term>>,
    ) -> Result<Option<Term>> {
        match e {
            SparqlExpr::Var(v) => named
                .get(v.as_str())
                .cloned()
                .ok_or_else(|| Error::eval(format!("unknown variable `?{v}` in HAVING"))),
            SparqlExpr::Const(t) => Ok(Some(t.clone())),
            SparqlExpr::Str(inner) => {
                Ok(term_of(inner, named)?.map(|t| Term::lit(t.lexical_form().to_string())))
            }
            other => Err(Error::eval(format!(
                "expected a term expression in HAVING, got {other:?}"
            ))),
        }
    }
    match e {
        SparqlExpr::And(a, b) => Ok(
            match (eval_expr_over_terms(a, named)?, eval_expr_over_terms(b, named)?) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
        ),
        SparqlExpr::Or(a, b) => Ok(
            match (eval_expr_over_terms(a, named)?, eval_expr_over_terms(b, named)?) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        ),
        SparqlExpr::Not(inner) => Ok(eval_expr_over_terms(inner, named)?.map(|b| !b)),
        SparqlExpr::Bound(v) => Ok(Some(
            named
                .get(v.as_str())
                .ok_or_else(|| Error::eval(format!("unknown variable `?{v}` in HAVING")))?
                .is_some(),
        )),
        SparqlExpr::Regex(inner, pattern) => {
            let Some(t) = term_of(inner, named)? else {
                return Ok(None);
            };
            Ok(Some(simple_regex_match(t.lexical_form(), pattern)))
        }
        SparqlExpr::Cmp(a, op, b) => {
            let (Some(ta), Some(tb)) = (term_of(a, named)?, term_of(b, named)?) else {
                return Ok(None);
            };
            Ok(Some(compare_terms(&ta, *op, &tb)))
        }
        SparqlExpr::Var(_) | SparqlExpr::Const(_) | SparqlExpr::Str(_) => {
            Err(Error::eval("HAVING expression is not boolean"))
        }
    }
}

/// Convenience: parse and evaluate in one step.
pub fn query(store: &TripleStore, graphs: &[&str], sparql: &str) -> Result<Solutions> {
    let q = super::parser::parse_query(sparql)?;
    evaluate(store, graphs, &q)
}

/// Evaluate an `ASK` pattern: does at least one solution exist?
pub fn ask(store: &TripleStore, graphs: &[&str], pattern: &GraphPattern) -> Result<bool> {
    let q = Query {
        distinct: false,
        variables: Vec::new(),
        projections: Vec::new(),
        pattern: pattern.clone(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: Some(1),
        offset: None,
    };
    Ok(!evaluate(store, graphs, &q)?.is_empty())
}

/// Evaluate a `CONSTRUCT`: instantiate `template` once per solution of
/// `pattern`. Triples with unbound variables or literal subjects/predicates
/// are skipped; duplicates are removed.
pub fn construct(
    store: &TripleStore,
    graphs: &[&str],
    template: &[PatternTriple],
    pattern: &GraphPattern,
) -> Result<Vec<crate::store::Triple>> {
    let q = Query {
        distinct: false,
        variables: Vec::new(),
        projections: Vec::new(),
        pattern: pattern.clone(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        offset: None,
    };
    let sols = evaluate(store, graphs, &q)?;
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for row in &sols.rows {
        'tmpl: for t in template {
            let mut resolved = Vec::with_capacity(3);
            for part in [&t.subject, &t.predicate, &t.object] {
                let term = match part {
                    PatternTerm::Const(c) => c.clone(),
                    PatternTerm::Var(v) => {
                        let Some(i) = sols.var_index(v) else { continue 'tmpl };
                        match &row[i] {
                            Some(term) => term.clone(),
                            None => continue 'tmpl,
                        }
                    }
                };
                resolved.push(term);
            }
            // RDF validity: literals cannot be subjects or predicates.
            if resolved[0].is_literal() || resolved[1].is_literal() {
                continue;
            }
            let triple = crate::store::Triple::new(
                resolved[0].clone(),
                resolved[1].clone(),
                resolved[2].clone(),
            );
            if seen.insert(triple.clone()) {
                out.push(triple);
            }
        }
    }
    Ok(out)
}

/// Parse and evaluate any query form; SELECT solutions, ASK booleans and
/// CONSTRUCT graphs are returned through one result enum.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    Solutions(Solutions),
    Boolean(bool),
    Graph(Vec<crate::store::Triple>),
}

/// Evaluate any SPARQL query form.
pub fn query_any(
    store: &TripleStore,
    graphs: &[&str],
    sparql: &str,
) -> Result<QueryOutcome> {
    match super::parser::parse_any(sparql)? {
        ParsedQuery::Select(q) => Ok(QueryOutcome::Solutions(evaluate(store, graphs, &q)?)),
        ParsedQuery::Ask(p) => Ok(QueryOutcome::Boolean(ask(store, graphs, &p)?)),
        ParsedQuery::Construct { template, pattern } => Ok(QueryOutcome::Graph(
            construct(store, graphs, &template, &pattern)?,
        )),
    }
}

fn cmp_binding(store: &TripleStore, a: Option<TermId>, b: Option<TermId>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(a), Some(b)) => {
            let ta = store.dictionary().term_of(a);
            let tb = store.dictionary().term_of(b);
            match (ta.as_f64(), tb.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => ta.lexical_form().cmp(tb.lexical_form()),
            }
        }
    }
}

/// A (partial) solution row over the full variable table.
type Bindings = Vec<Option<TermId>>;

struct EvalCtx<'a> {
    store: &'a TripleStore,
    graphs: &'a [&'a str],
    vars: &'a [String],
    var_index: &'a HashMap<&'a str, usize>,
}

impl<'a> EvalCtx<'a> {
    fn eval_pattern(
        &self,
        pattern: &GraphPattern,
        input: Vec<Bindings>,
    ) -> Result<Vec<Bindings>> {
        match pattern {
            GraphPattern::Bgp(triples) => self.eval_bgp(triples, input),
            GraphPattern::Join(a, b) => {
                let left = self.eval_pattern(a, input)?;
                self.eval_pattern(b, left)
            }
            GraphPattern::Optional(a, b) => {
                let left = self.eval_pattern(a, input)?;
                let mut out = Vec::new();
                for row in left {
                    let extended = self.eval_pattern(b, vec![row.clone()])?;
                    if extended.is_empty() {
                        out.push(row);
                    } else {
                        out.extend(extended);
                    }
                }
                Ok(out)
            }
            GraphPattern::Union(a, b) => {
                let mut left = self.eval_pattern(a, input.clone())?;
                let right = self.eval_pattern(b, input)?;
                left.extend(right);
                Ok(left)
            }
            GraphPattern::Filter(p, e) => {
                let rows = self.eval_pattern(p, input)?;
                let mut out = Vec::new();
                for row in rows {
                    if self.eval_filter(e, &row)? == Some(true) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            GraphPattern::Minus(a, b) => {
                let left = self.eval_pattern(a, input)?;
                // The right side is evaluated independently (fresh scope),
                // per the SPARQL 1.1 MINUS definition.
                let right =
                    self.eval_pattern(b, vec![vec![None; self.vars.len()]])?;
                Ok(left
                    .into_iter()
                    .filter(|l| {
                        !right.iter().any(|r| {
                            let mut shares = false;
                            for (lv, rv) in l.iter().zip(r.iter()) {
                                match (lv, rv) {
                                    (Some(x), Some(y)) if x == y => shares = true,
                                    (Some(_), Some(_)) => return false, // incompatible
                                    _ => {}
                                }
                            }
                            shares // compatible and sharing ≥1 binding → remove
                        })
                    })
                    .collect())
            }
            GraphPattern::Values { vars, rows } => {
                let dict = self.store.dictionary();
                let var_is: Vec<usize> = vars
                    .iter()
                    .map(|v| {
                        self.var_index.get(v.as_str()).copied().ok_or_else(|| {
                            Error::eval(format!("unknown VALUES variable `?{v}`"))
                        })
                    })
                    .collect::<Result<_>>()?;
                let mut out = Vec::new();
                for row in &input {
                    'data: for data in rows {
                        let mut new_row = row.clone();
                        for (&vi, cell) in var_is.iter().zip(data) {
                            let Some(term) = cell else { continue }; // UNDEF
                            // Interning is safe here: it adds the term to
                            // the dictionary without asserting any triple.
                            let id = dict.intern(term);
                            match new_row[vi] {
                                None => new_row[vi] = Some(id),
                                Some(existing) if existing == id => {}
                                Some(_) => continue 'data,
                            }
                        }
                        out.push(new_row);
                    }
                }
                Ok(out)
            }
        }
    }

    fn eval_bgp(
        &self,
        triples: &[PatternTriple],
        mut solutions: Vec<Bindings>,
    ) -> Result<Vec<Bindings>> {
        if triples.is_empty() {
            return Ok(solutions);
        }
        // Greedy ordering: repeatedly pick the unprocessed pattern with the
        // most positions that are constants or already-bound variables.
        let mut remaining: Vec<&PatternTriple> = triples.iter().collect();
        let mut bound_vars: Vec<bool> = vec![false; self.vars.len()];
        // Variables bound by the input solutions count as bound.
        if let Some(first) = solutions.first() {
            for (i, b) in first.iter().enumerate() {
                if b.is_some() {
                    bound_vars[i] = true;
                }
            }
        }

        while !remaining.is_empty() {
            let (best_pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    let score = [&t.subject, &t.predicate, &t.object]
                        .iter()
                        .map(|pt| match pt {
                            PatternTerm::Const(_) => 2usize,
                            PatternTerm::Var(v) => {
                                if bound_vars[self.var_index[v.as_str()]] {
                                    2
                                } else {
                                    0
                                }
                            }
                        })
                        .sum::<usize>();
                    (i, score)
                })
                .max_by_key(|&(_, s)| s)
                .expect("non-empty");
            let t = remaining.remove(best_pos);

            let mut next = Vec::new();
            for row in &solutions {
                self.extend_with_pattern(t, row, &mut next)?;
            }
            solutions = next;
            for pt in [&t.subject, &t.predicate, &t.object] {
                if let PatternTerm::Var(v) = pt {
                    bound_vars[self.var_index[v.as_str()]] = true;
                }
            }
            if solutions.is_empty() {
                return Ok(solutions);
            }
        }
        Ok(solutions)
    }

    fn extend_with_pattern(
        &self,
        t: &PatternTriple,
        row: &Bindings,
        out: &mut Vec<Bindings>,
    ) -> Result<()> {
        if let Some(path) = &t.complex {
            return self.extend_with_complex(path, t, row, out);
        }
        if t.path != PathMod::One {
            return self.extend_with_path(t, row, out);
        }
        let dict = self.store.dictionary();
        // Resolve each position: constant id, bound var id, or free var.
        let mut free: [Option<usize>; 3] = [None, None, None];
        let mut pat: IdPattern = (None, None, None);
        for (pos, pt) in [&t.subject, &t.predicate, &t.object].iter().enumerate() {
            let slot = match pt {
                PatternTerm::Const(term) => match dict.id_of(term) {
                    Some(id) => Some(id),
                    None => return Ok(()), // constant never seen → no match
                },
                PatternTerm::Var(v) => {
                    let vi = self.var_index[v.as_str()];
                    match row[vi] {
                        Some(id) => Some(id),
                        None => {
                            free[pos] = Some(vi);
                            None
                        }
                    }
                }
            };
            match pos {
                0 => pat.0 = slot,
                1 => pat.1 = slot,
                _ => pat.2 = slot,
            }
        }
        // Same variable twice in one pattern (e.g. ?x <p> ?x): the second
        // occurrence must equal the first.
        let mut matches = Vec::new();
        self.store.match_id_pattern(self.graphs, pat, &mut matches);
        'm: for (s, p, o) in matches {
            let mut new_row = row.clone();
            for (pos, id) in [(0usize, s), (1, p), (2, o)] {
                if let Some(vi) = free[pos] {
                    match new_row[vi] {
                        None => new_row[vi] = Some(id),
                        Some(existing) if existing == id => {}
                        Some(_) => continue 'm,
                    }
                }
            }
            out.push(new_row);
        }
        Ok(())
    }

    /// Evaluate a transitive path pattern (`p+` / `p*`) by BFS over the
    /// predicate's edges in the selected graphs.
    fn extend_with_path(
        &self,
        t: &PatternTriple,
        row: &Bindings,
        out: &mut Vec<Bindings>,
    ) -> Result<()> {
        let dict = self.store.dictionary();
        let PatternTerm::Const(pred) = &t.predicate else {
            return Err(Error::eval("path modifiers require a constant predicate"));
        };
        let Some(p) = dict.id_of(pred) else {
            return Ok(()); // predicate never seen → no edges
        };

        // Materialise the p-edge list once per call (bounded by the user
        // KB size, which the paper's workloads keep small).
        let mut edges: Vec<(TermId, TermId, TermId)> = Vec::new();
        self.store
            .match_id_pattern(self.graphs, (None, Some(p), None), &mut edges);
        let mut forward: HashMap<TermId, Vec<TermId>> = HashMap::new();
        let mut nodes: Vec<TermId> = Vec::new();
        for &(s, _, o) in &edges {
            forward.entry(s).or_default().push(o);
            if !nodes.contains(&s) {
                nodes.push(s);
            }
            if !nodes.contains(&o) {
                nodes.push(o);
            }
        }
        let include_zero = t.path == PathMod::ZeroOrMore;

        let reachable = |start: TermId| -> Vec<TermId> {
            let mut seen: Vec<TermId> = Vec::new();
            let mut frontier = vec![start];
            while let Some(n) = frontier.pop() {
                for &next in forward.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                    if !seen.contains(&next) {
                        seen.push(next);
                        frontier.push(next);
                    }
                }
            }
            if include_zero && !seen.contains(&start) {
                seen.push(start);
            }
            seen
        };

        // Resolve the endpoints against the current row.
        let resolve = |pt: &PatternTerm| -> std::result::Result<Option<TermId>, ()> {
            match pt {
                PatternTerm::Const(term) => match dict.id_of(term) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()), // constant never interned → no match
                },
                PatternTerm::Var(v) => Ok(row[self.var_index[v.as_str()]]),
            }
        };
        let (Ok(s_res), Ok(o_res)) = (resolve(&t.subject), resolve(&t.object)) else {
            return Ok(());
        };

        let emit = |s: TermId, o: TermId, out: &mut Vec<Bindings>| {
            let mut new_row = row.clone();
            if let PatternTerm::Var(v) = &t.subject {
                new_row[self.var_index[v.as_str()]] = Some(s);
            }
            if let PatternTerm::Var(v) = &t.object {
                let vi = self.var_index[v.as_str()];
                match new_row[vi] {
                    None => new_row[vi] = Some(o),
                    Some(existing) if existing == o => {}
                    Some(_) => return,
                }
            }
            out.push(new_row);
        };

        match (s_res, o_res) {
            (Some(s), Some(o)) => {
                if reachable(s).contains(&o) {
                    emit(s, o, out);
                }
            }
            (Some(s), None) => {
                for o in reachable(s) {
                    emit(s, o, out);
                }
            }
            (None, Some(o)) => {
                // Backward reachability: nodes from which `o` is reachable.
                for &s in &nodes {
                    if reachable(s).contains(&o) {
                        emit(s, o, out);
                    }
                }
            }
            (None, None) => {
                for &s in &nodes {
                    for o in reachable(s) {
                        emit(s, o, out);
                    }
                }
            }
        }
        Ok(())
    }

    /// Materialise the (subject, object) pair set of a structured property
    /// path. Pair sets stay small because they are evaluated against
    /// per-user knowledge bases, not the relational databank.
    fn path_pairs(&self, path: &PropertyPath) -> Vec<(TermId, TermId)> {
        use std::collections::HashSet;
        match path {
            PropertyPath::Pred(term) => {
                let Some(p) = self.store.dictionary().id_of(term) else {
                    return Vec::new();
                };
                let mut matches = Vec::new();
                self.store
                    .match_id_pattern(self.graphs, (None, Some(p), None), &mut matches);
                matches.into_iter().map(|(s, _, o)| (s, o)).collect()
            }
            PropertyPath::Inverse(p) => {
                self.path_pairs(p).into_iter().map(|(s, o)| (o, s)).collect()
            }
            PropertyPath::Alternative(ps) => {
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for p in ps {
                    for pair in self.path_pairs(p) {
                        if seen.insert(pair) {
                            out.push(pair);
                        }
                    }
                }
                out
            }
            PropertyPath::Sequence(ps) => {
                let mut acc: Option<Vec<(TermId, TermId)>> = None;
                for p in ps {
                    let next = self.path_pairs(p);
                    acc = Some(match acc {
                        None => next,
                        Some(cur) => {
                            let mut by_subject: HashMap<TermId, Vec<TermId>> =
                                HashMap::new();
                            for (s, o) in next {
                                by_subject.entry(s).or_default().push(o);
                            }
                            let mut seen = HashSet::new();
                            let mut out = Vec::new();
                            for (a, b) in cur {
                                for &c in
                                    by_subject.get(&b).map(Vec::as_slice).unwrap_or(&[])
                                {
                                    if seen.insert((a, c)) {
                                        out.push((a, c));
                                    }
                                }
                            }
                            out
                        }
                    });
                    if acc.as_ref().is_some_and(Vec::is_empty) {
                        break;
                    }
                }
                acc.unwrap_or_default()
            }
            PropertyPath::Closure(p, mode) => {
                let base = self.path_pairs(p);
                let mut forward: HashMap<TermId, Vec<TermId>> = HashMap::new();
                let mut nodes: HashSet<TermId> = HashSet::new();
                for &(s, o) in &base {
                    forward.entry(s).or_default().push(o);
                    nodes.insert(s);
                    nodes.insert(o);
                }
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for &start in &nodes {
                    // BFS from each node.
                    let mut frontier = vec![start];
                    let mut reached: HashSet<TermId> = HashSet::new();
                    while let Some(n) = frontier.pop() {
                        for &next in forward.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                            if reached.insert(next) {
                                frontier.push(next);
                            }
                        }
                    }
                    if *mode == PathMod::ZeroOrMore {
                        reached.insert(start);
                    }
                    for o in reached {
                        if seen.insert((start, o)) {
                            out.push((start, o));
                        }
                    }
                }
                out
            }
        }
    }

    /// Bind the endpoints of a structured property path against the pair
    /// set, analogous to [`Self::extend_with_path`] for simple closures.
    fn extend_with_complex(
        &self,
        path: &PropertyPath,
        t: &PatternTriple,
        row: &Bindings,
        out: &mut Vec<Bindings>,
    ) -> Result<()> {
        let dict = self.store.dictionary();
        let resolve = |pt: &PatternTerm| -> std::result::Result<Option<TermId>, ()> {
            match pt {
                PatternTerm::Const(term) => match dict.id_of(term) {
                    Some(id) => Ok(Some(id)),
                    None => Err(()),
                },
                PatternTerm::Var(v) => Ok(row[self.var_index[v.as_str()]]),
            }
        };
        let (Ok(s_res), Ok(o_res)) = (resolve(&t.subject), resolve(&t.object)) else {
            return Ok(()); // constant endpoint never interned → no match
        };
        for (s, o) in self.path_pairs(path) {
            if s_res.is_some_and(|x| x != s) || o_res.is_some_and(|x| x != o) {
                continue;
            }
            let mut new_row = row.clone();
            let mut ok = true;
            for (pt, id) in [(&t.subject, s), (&t.object, o)] {
                if let PatternTerm::Var(v) = pt {
                    let vi = self.var_index[v.as_str()];
                    match new_row[vi] {
                        None => new_row[vi] = Some(id),
                        Some(existing) if existing == id => {}
                        Some(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                out.push(new_row);
            }
        }
        Ok(())
    }

    fn eval_filter(&self, e: &SparqlExpr, row: &Bindings) -> Result<Option<bool>> {
        // Three-valued: unbound variables make a comparison undefined
        // (treated as an evaluation error in SPARQL → filter drops the row,
        // here modelled as None).
        match e {
            SparqlExpr::And(a, b) => Ok(match (self.eval_filter(a, row)?, self.eval_filter(b, row)?) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            }),
            SparqlExpr::Or(a, b) => Ok(match (self.eval_filter(a, row)?, self.eval_filter(b, row)?) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            }),
            SparqlExpr::Not(inner) => Ok(self.eval_filter(inner, row)?.map(|b| !b)),
            SparqlExpr::Bound(v) => {
                let vi = *self
                    .var_index
                    .get(v.as_str())
                    .ok_or_else(|| Error::eval(format!("unknown variable `?{v}`")))?;
                Ok(Some(row[vi].is_some()))
            }
            SparqlExpr::Regex(inner, pattern) => {
                let Some(term) = self.eval_term(inner, row)? else {
                    return Ok(None);
                };
                Ok(Some(simple_regex_match(term.lexical_form(), pattern)))
            }
            SparqlExpr::Cmp(a, op, b) => {
                let (Some(ta), Some(tb)) =
                    (self.eval_term(a, row)?, self.eval_term(b, row)?)
                else {
                    return Ok(None);
                };
                Ok(Some(compare_terms(&ta, *op, &tb)))
            }
            SparqlExpr::Var(_) | SparqlExpr::Const(_) | SparqlExpr::Str(_) => {
                Err(Error::eval("expression is not boolean"))
            }
        }
    }

    fn eval_term(&self, e: &SparqlExpr, row: &Bindings) -> Result<Option<Term>> {
        match e {
            SparqlExpr::Var(v) => {
                let vi = *self
                    .var_index
                    .get(v.as_str())
                    .ok_or_else(|| Error::eval(format!("unknown variable `?{v}`")))?;
                Ok(row[vi].map(|id| self.store.dictionary().term_of(id)))
            }
            SparqlExpr::Const(t) => Ok(Some(t.clone())),
            SparqlExpr::Str(inner) => Ok(self
                .eval_term(inner, row)?
                .map(|t| Term::lit(t.lexical_form().to_string()))),
            other => Err(Error::eval(format!("expected a term expression, got {other:?}"))),
        }
    }
}

/// Term comparison: numeric when both sides parse as numbers, term equality
/// for `=`/`!=`, lexical otherwise.
fn compare_terms(a: &Term, op: CmpOp, b: &Term) -> bool {
    if matches!(op, CmpOp::Eq | CmpOp::NotEq) {
        let eq = match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => a == b || (a.is_iri() ^ b.is_iri() && a.lexical_form() == b.lexical_form()),
        };
        return if op == CmpOp::Eq { eq } else { !eq };
    }
    let ord = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.lexical_form().cmp(b.lexical_form()),
    };
    match op {
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::LtEq => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::GtEq => ord != Ordering::Less,
        CmpOp::Eq | CmpOp::NotEq => unreachable!(),
    }
}

/// A deliberately small REGEX subset: `^` anchors the start, `$` the end,
/// everything else matches literally (substring search). Covers the
/// highlight / snippet use cases of the paper without a regex dependency.
fn simple_regex_match(s: &str, pattern: &str) -> bool {
    let (anchored_start, p) = match pattern.strip_prefix('^') {
        Some(rest) => (true, rest),
        None => (false, pattern),
    };
    let (anchored_end, p) = match p.strip_suffix('$') {
        Some(rest) => (true, rest),
        None => (false, p),
    };
    match (anchored_start, anchored_end) {
        (true, true) => s == p,
        (true, false) => s.starts_with(p),
        (false, true) => s.ends_with(p),
        (false, false) => s.contains(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Triple;

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), o)
    }

    fn store() -> TripleStore {
        let store = TripleStore::new();
        let g = "kb";
        store.insert(g, &t("Hg", "dangerLevel", Term::lit("5")));
        store.insert(g, &t("Pb", "dangerLevel", Term::lit("4")));
        store.insert(g, &t("As", "dangerLevel", Term::lit("5")));
        store.insert(g, &t("Cu", "dangerLevel", Term::lit("1")));
        store.insert(g, &t("Hg", "isA", Term::iri("HazardousWaste")));
        store.insert(g, &t("Pb", "isA", Term::iri("HazardousWaste")));
        store.insert(g, &t("Hg", "name", Term::lit("Mercury")));
        store.insert(g, &t("Pb", "name", Term::lit("Lead")));
        store.insert(g, &t("Hg", "occursWith", Term::iri("As")));
        store
    }

    fn run(sparql: &str) -> Solutions {
        query(&store(), &["kb"], sparql).unwrap()
    }

    #[test]
    fn single_pattern() {
        let s = run("SELECT ?s ?o WHERE { ?s <dangerLevel> ?o }");
        assert_eq!(s.len(), 4);
        assert_eq!(s.variables, vec!["s", "o"]);
    }

    #[test]
    fn join_two_patterns() {
        let s = run(
            "SELECT ?s ?n WHERE { ?s <isA> <HazardousWaste> . ?s <name> ?n } ORDER BY ?n",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[0][1], Some(Term::lit("Lead")));
        assert_eq!(s.rows[1][1], Some(Term::lit("Mercury")));
    }

    #[test]
    fn filter_numeric() {
        let s = run("SELECT ?s WHERE { ?s <dangerLevel> ?d . FILTER(?d >= 4) } ORDER BY ?s");
        assert_eq!(s.len(), 3);
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["As", "Hg", "Pb"]);
    }

    #[test]
    fn filter_inequality_on_iri() {
        let s = run("SELECT ?s WHERE { ?s <isA> <HazardousWaste> . FILTER(?s != <Hg>) }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Pb")));
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = run(
            "SELECT ?s ?w WHERE { ?s <isA> <HazardousWaste> . OPTIONAL { ?s <occursWith> ?w } } ORDER BY ?s",
        );
        assert_eq!(s.len(), 2);
        // Hg has occursWith, Pb does not.
        let hg = s.rows.iter().find(|r| r[0] == Some(Term::iri("Hg"))).unwrap();
        assert_eq!(hg[1], Some(Term::iri("As")));
        let pb = s.rows.iter().find(|r| r[0] == Some(Term::iri("Pb"))).unwrap();
        assert_eq!(pb[1], None);
    }

    #[test]
    fn union_concatenates() {
        let s = run(
            "SELECT ?x WHERE { { ?x <dangerLevel> \"5\" } UNION { ?x <name> \"Lead\" } }",
        );
        assert_eq!(s.len(), 3); // Hg, As (level 5) + Pb (name Lead)
    }

    #[test]
    fn distinct_and_limit() {
        let s = run("SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
        assert_eq!(s.len(), 4); // dangerLevel, isA, name, occursWith
        let s = run("SELECT ?s WHERE { ?s ?p ?o } LIMIT 3");
        assert_eq!(s.len(), 3);
        let s = run("SELECT ?s WHERE { ?s <dangerLevel> ?d } ORDER BY ?s LIMIT 2 OFFSET 3");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn select_star_exposes_all_vars() {
        let s = run("SELECT * WHERE { ?s <name> ?n }");
        assert_eq!(s.variables, vec!["s", "n"]);
    }

    #[test]
    fn same_variable_twice_in_pattern() {
        let store = store();
        store.insert("kb", &t("Se", "occursWith", Term::iri("Se")));
        let s = query(&store, &["kb"], "SELECT ?x WHERE { ?x <occursWith> ?x }").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Se")));
    }

    #[test]
    fn bound_filter_with_optional() {
        let s = run(
            "SELECT ?s WHERE { ?s <isA> <HazardousWaste> . \
             OPTIONAL { ?s <occursWith> ?w } FILTER(!BOUND(?w)) }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Pb")));
    }

    #[test]
    fn regex_subset() {
        let s = run(
            "SELECT ?s WHERE { ?s <name> ?n . FILTER(REGEX(?n, \"^Merc\")) }",
        );
        assert_eq!(s.len(), 1);
        assert!(simple_regex_match("mercury", "cur"));
        assert!(simple_regex_match("mercury", "^merc"));
        assert!(simple_regex_match("mercury", "ury$"));
        assert!(simple_regex_match("mercury", "^mercury$"));
        assert!(!simple_regex_match("mercury", "^urc"));
    }

    #[test]
    fn empty_graph_yields_no_solutions() {
        let s = query(&store(), &["empty"], "SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn order_by_numeric_desc() {
        let s = run("SELECT ?s ?d WHERE { ?s <dangerLevel> ?d } ORDER BY DESC(?d) ?s");
        assert_eq!(s.rows[0][1], Some(Term::lit("5")));
        assert_eq!(s.rows[3][1], Some(Term::lit("1")));
    }

    #[test]
    fn column_helper() {
        let s = run("SELECT ?s WHERE { ?s <isA> <HazardousWaste> }");
        let c = s.column("s").unwrap();
        assert_eq!(c.len(), 2);
        assert!(s.column("nope").is_err());
    }

    fn hierarchy_store() -> TripleStore {
        let store = TripleStore::new();
        for (a, b) in [("HgS", "HeavyMetalOre"), ("HeavyMetalOre", "MetalOre"), ("MetalOre", "Ore")] {
            store.insert("kb", &t(a, "subClassOf", Term::iri(b)));
        }
        store.insert("kb", &t("PbS", "subClassOf", Term::iri("HeavyMetalOre")));
        store
    }

    #[test]
    fn transitive_path_forward() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT ?c WHERE { <HgS> <subClassOf>+ ?c } ORDER BY ?c",
        )
        .unwrap();
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["HeavyMetalOre", "MetalOre", "Ore"]);
    }

    #[test]
    fn transitive_path_backward() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT ?c WHERE { ?c <subClassOf>+ <MetalOre> } ORDER BY ?c",
        )
        .unwrap();
        assert_eq!(s.len(), 3); // HgS, PbS, HeavyMetalOre
    }

    #[test]
    fn zero_or_more_includes_self() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT ?c WHERE { <HgS> <subClassOf>* ?c }",
        )
        .unwrap();
        assert_eq!(s.len(), 4, "self + three ancestors");
    }

    #[test]
    fn path_both_endpoints_bound() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT * WHERE { <HgS> <subClassOf>+ <Ore> }",
        )
        .unwrap();
        assert_eq!(s.len(), 1, "reachability check succeeds");
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT * WHERE { <Ore> <subClassOf>+ <HgS> }",
        )
        .unwrap();
        assert!(s.is_empty(), "no backward edge");
    }

    #[test]
    fn path_with_cycle_terminates() {
        let store = TripleStore::new();
        store.insert("kb", &t("A", "next", Term::iri("B")));
        store.insert("kb", &t("B", "next", Term::iri("A")));
        let s = query(&store, &["kb"], "SELECT ?x WHERE { <A> <next>+ ?x }").unwrap();
        assert_eq!(s.len(), 2); // B and A (via the cycle)
    }

    #[test]
    fn path_joins_with_other_patterns() {
        let store = hierarchy_store();
        store.insert("kb", &t("HgS", "foundIn", Term::lit("LF1")));
        let s = query(
            &store,
            &["kb"],
            "SELECT ?o WHERE { ?o <subClassOf>+ <Ore> . ?o <foundIn> ?l }",
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("HgS")));
    }

    #[test]
    fn path_on_variable_predicate_rejected() {
        assert!(crate::sparql::parser::parse_query(
            "SELECT ?x WHERE { <A> ?p+ ?x }"
        )
        .is_err());
    }

    #[test]
    fn ask_form() {
        let store = store();
        match query_any(&store, &["kb"], "ASK { <Hg> <isA> <HazardousWaste> }").unwrap() {
            QueryOutcome::Boolean(b) => assert!(b),
            other => panic!("unexpected {other:?}"),
        }
        match query_any(&store, &["kb"], "ASK WHERE { <Cu> <isA> <HazardousWaste> }").unwrap()
        {
            QueryOutcome::Boolean(b) => assert!(!b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ask_with_filter() {
        let store = store();
        match query_any(
            &store,
            &["kb"],
            "ASK { ?s <dangerLevel> ?d . FILTER(?d > 4) }",
        )
        .unwrap()
        {
            QueryOutcome::Boolean(b) => assert!(b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn construct_instantiates_template() {
        let store = store();
        let out = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?s <classifiedAs> <Dangerous> } \
             WHERE { ?s <dangerLevel> ?d . FILTER(?d >= 4) }",
        )
        .unwrap();
        match out {
            QueryOutcome::Graph(ts) => {
                assert_eq!(ts.len(), 3); // Hg, Pb, As
                assert!(ts
                    .iter()
                    .all(|t| t.predicate == Term::iri("classifiedAs")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn construct_skips_invalid_and_dedupes() {
        let store = store();
        // Literal subject (?n is a literal) → skipped entirely; constant
        // template emitted once per solution but deduplicated to one.
        let out = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?n <x> <y> . <a> <b> <c> } WHERE { ?s <name> ?n }",
        )
        .unwrap();
        match out {
            QueryOutcome::Graph(ts) => {
                assert_eq!(ts, vec![t("a", "b", Term::iri("c"))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn construct_feeds_back_into_store() {
        // CONSTRUCT output loads into a graph — the "context-aware
        // knowledge extension" loop of Sec. I-B(c).
        let store = store();
        let QueryOutcome::Graph(ts) = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?s <suspect> \"true\" } WHERE { ?s <dangerLevel> \"5\" }",
        )
        .unwrap() else {
            panic!()
        };
        store.insert_all("derived", ts.iter());
        let s = query(&store, &["derived"], "SELECT ?s WHERE { ?s <suspect> ?v }").unwrap();
        assert_eq!(s.len(), 2); // Hg, As
    }

    #[test]
    fn parse_query_rejects_non_select() {
        assert!(crate::sparql::parser::parse_query("ASK { ?s ?p ?o }").is_err());
    }

    #[test]
    fn cross_graph_union_evaluation() {
        let store = store();
        store.insert("kb2", &t("Zn", "dangerLevel", Term::lit("2")));
        let s = query(&store, &["kb", "kb2"], "SELECT ?s WHERE { ?s <dangerLevel> ?d }")
            .unwrap();
        assert_eq!(s.len(), 5);
    }

    // ---- aggregates ---------------------------------------------------------

    #[test]
    fn count_star_global() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?s <dangerLevel> ?d }");
        assert_eq!(s.variables, vec!["n"]);
        assert_eq!(s.rows[0][0], Some(Term::lit("4")));
    }

    #[test]
    fn count_star_on_empty_pattern_is_zero() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?s <nope> ?d }");
        assert_eq!(s.rows[0][0], Some(Term::lit("0")));
    }

    #[test]
    fn group_by_with_count() {
        let s = run(
            "SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <dangerLevel> ?d } \
             GROUP BY ?d ORDER BY DESC(?n) ?d",
        );
        assert_eq!(s.variables, vec!["d", "n"]);
        // level 5 → 2 subjects; levels 4 and 1 → 1 each.
        assert_eq!(s.rows[0][0], Some(Term::lit("5")));
        assert_eq!(s.rows[0][1], Some(Term::lit("2")));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sum_avg_min_max_sample() {
        let s = run(
            "SELECT (SUM(?d) AS ?sum) (AVG(?d) AS ?avg) (MIN(?d) AS ?lo) \
             (MAX(?d) AS ?hi) (SAMPLE(?d) AS ?any) \
             WHERE { ?s <dangerLevel> ?d }",
        );
        assert_eq!(s.rows[0][0], Some(Term::lit("15"))); // 5+4+5+1
        assert_eq!(s.rows[0][1], Some(Term::lit("3.75")));
        assert_eq!(s.rows[0][2], Some(Term::lit("1")));
        assert_eq!(s.rows[0][3], Some(Term::lit("5")));
        assert!(s.rows[0][4].is_some());
    }

    #[test]
    fn count_distinct() {
        let s = run("SELECT (COUNT(DISTINCT ?d) AS ?n) WHERE { ?s <dangerLevel> ?d }");
        assert_eq!(s.rows[0][0], Some(Term::lit("3"))); // 5, 4, 1
    }

    #[test]
    fn having_filters_groups() {
        let s = run(
            "SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <dangerLevel> ?d } \
             GROUP BY ?d HAVING(?n > 1)",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::lit("5")));
    }

    #[test]
    fn ungrouped_projection_rejected() {
        let store = store();
        let err = query(
            &store,
            &["kb"],
            "SELECT ?s (COUNT(?d) AS ?n) WHERE { ?s <dangerLevel> ?d }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn sum_of_non_numeric_errors() {
        let err = query(
            &store(),
            &["kb"],
            "SELECT (SUM(?n) AS ?x) WHERE { ?s <name> ?n }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-numeric"), "{err}");
    }

    #[test]
    fn min_max_lexical_for_strings() {
        let s = run(
            "SELECT (MIN(?n) AS ?lo) (MAX(?n) AS ?hi) WHERE { ?s <name> ?n }",
        );
        assert_eq!(s.rows[0][0], Some(Term::lit("Lead")));
        assert_eq!(s.rows[0][1], Some(Term::lit("Mercury")));
    }

    // ---- MINUS / VALUES -----------------------------------------------------

    #[test]
    fn minus_removes_compatible_solutions() {
        let s = run(
            "SELECT ?s WHERE { ?s <dangerLevel> ?d . \
             MINUS { ?s <isA> <HazardousWaste> } } ORDER BY ?s",
        );
        // Hg and Pb are hazardous → removed; As and Cu remain.
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["As", "Cu"]);
    }

    #[test]
    fn minus_with_disjoint_domain_keeps_everything() {
        // The right side binds only ?x, sharing no variable with the left:
        // nothing is removed (SPARQL 1.1 semantics).
        let s = run(
            "SELECT ?s WHERE { ?s <dangerLevel> ?d . MINUS { ?x <isA> <HazardousWaste> } }",
        );
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn values_single_var_restricts() {
        let s = run(
            "SELECT ?s ?d WHERE { VALUES ?s { <Hg> <Cu> } ?s <dangerLevel> ?d } ORDER BY ?s",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[0][0], Some(Term::iri("Cu")));
    }

    #[test]
    fn values_multi_var_with_undef() {
        let s = run(
            "SELECT ?s ?d WHERE { ?s <dangerLevel> ?d . \
             VALUES (?s ?d) { (<Hg> \"5\") (<Pb> UNDEF) } } ORDER BY ?s",
        );
        // (Hg, 5) matches exactly; (Pb, UNDEF) leaves ?d free → Pb/4.
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[1][0], Some(Term::iri("Pb")));
        assert_eq!(s.rows[1][1], Some(Term::lit("4")));
    }

    #[test]
    fn values_with_unseen_term_matches_nothing_downstream() {
        let s = run(
            "SELECT ?s ?d WHERE { VALUES ?s { <Unobtainium> } ?s <dangerLevel> ?d }",
        );
        assert!(s.is_empty());
    }

    // ---- structured property paths -------------------------------------------

    #[test]
    fn sequence_path_composes_edges() {
        let store = store();
        // Hg occursWith As; As dangerLevel 5 → Hg (occursWith/dangerLevel) 5.
        let s = query(
            &store,
            &["kb"],
            "SELECT ?x ?d WHERE { ?x <occursWith>/<dangerLevel> ?d }",
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Hg")));
        assert_eq!(s.rows[0][1], Some(Term::lit("5")));
    }

    #[test]
    fn alternative_path_unions_edges() {
        let s = run("SELECT ?x ?v WHERE { ?x <name>|<dangerLevel> ?v }");
        assert_eq!(s.len(), 6); // 2 names + 4 danger levels
    }

    #[test]
    fn inverse_path_flips_direction() {
        let s = run("SELECT ?x WHERE { <As> ^<occursWith> ?x }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Hg")));
    }

    #[test]
    fn nested_path_closure_over_alternative() {
        let store = TripleStore::new();
        store.insert("kb", &t("A", "p", Term::iri("B")));
        store.insert("kb", &t("B", "q", Term::iri("C")));
        store.insert("kb", &t("C", "p", Term::iri("D")));
        let s = query(
            &store,
            &["kb"],
            "SELECT ?x WHERE { <A> (<p>|<q>)+ ?x } ORDER BY ?x",
        )
        .unwrap();
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["B", "C", "D"]);
    }

    #[test]
    fn inverse_sequence_roundtrip() {
        let store = hierarchy_store();
        // subClassOf followed by its inverse returns to (any sibling of) the
        // start — HgS and PbS both sit under HeavyMetalOre.
        let s = query(
            &store,
            &["kb"],
            "SELECT ?x WHERE { <HgS> <subClassOf>/^<subClassOf> ?x } ORDER BY ?x",
        )
        .unwrap();
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["HgS", "PbS"]);
    }

    #[test]
    fn path_in_construct_pattern() {
        let store = hierarchy_store();
        let QueryOutcome::Graph(ts) = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?x <ancestor> ?y } WHERE { ?x <subClassOf>+ ?y }",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(ts.len(), 3 + 2 + 1 + 3); // HgS→3, HeavyMetalOre→2, MetalOre→1, PbS→3
    }
}
