// srclint: allow(R002): resolved[] slots are filled by the loop just above; the ordering pick runs over a non-empty candidate set
//! SPARQL evaluation over the triple store.
//!
//! Evaluation is a two-phase, ID-native pipeline:
//!
//! 1. **Compile**: every `PatternTriple` of a BGP is translated into a
//!    [`CompiledTriple`] whose constants are resolved through the
//!    [`Dictionary`](crate::term::Dictionary) exactly once (a constant the
//!    dictionary has never seen short-circuits the whole BGP to the empty
//!    result) and whose variables are pre-resolved to row-slot indices.
//!    FILTER expressions compile the same way ([`CExpr`]), so the per-row
//!    loops never hash a variable name or intern a term.
//! 2. **Stream**: patterns join index-nested-loop style in greedy order
//!    (most-bound first; ties broken by estimated cardinality from the
//!    store's index counts). Probes reuse one scratch buffer per pattern,
//!    input rows are sorted on the bound probe prefix so consecutive range
//!    scans hit warm B-tree nodes, and identical consecutive probes are
//!    answered from the previous scan without touching the store.
//!
//! Property-path patterns materialise their edge set once per pattern (not
//! once per row) and memoise reachability across rows.

use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use crate::error::{Error, Result};
use crate::store::{IdPattern, IdTriple, Prober, TripleStore};
use crate::term::{DictReader, Term, TermId};

use super::ast::*;

/// A set of solutions: variable names plus one row of optional bindings per
/// solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solutions {
    pub variables: Vec<String>,
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a variable.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.variables.iter().position(|v| v == name)
    }

    /// All bound values of one variable (unbound entries skipped).
    pub fn column(&self, name: &str) -> Result<Vec<Term>> {
        let i = self
            .var_index(name)
            .ok_or_else(|| Error::eval(format!("no variable `?{name}` in solutions")))?;
        Ok(self.rows.iter().filter_map(|r| r[i].clone()).collect())
    }
}

/// Evaluation knobs; [`Default`] is fully sequential and uncancellable.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Worker threads for partition-parallel probe batches (the BGP join
    /// loop). Probe inputs are split into contiguous chunks, each worker
    /// probes the shared store snapshot with its own scratch buffer, and
    /// chunk outputs concatenate in order — bit-identical to sequential
    /// evaluation. 1 (the default) disables the worker pool.
    pub threads: usize,
    /// Cooperative cancellation handle, polled between BGP probe batches
    /// and inside long probe loops. `None` (the default) falls back to the
    /// ambient [`CancelToken`] of the calling thread, so a serving layer's
    /// deadline reaches SPARQL legs without explicit plumbing.
    pub cancel: Option<crosse_exec::CancelToken>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { threads: 1, cancel: None }
    }
}

/// Evaluate a parsed query against the union of `graphs` (sequential).
pub fn evaluate(store: &TripleStore, graphs: &[&str], query: &Query) -> Result<Solutions> {
    evaluate_with(store, graphs, query, &EvalOptions::default())
}

/// Evaluate a parsed query against the union of `graphs` with explicit
/// [`EvalOptions`] (e.g. a worker-thread budget).
pub fn evaluate_with(
    store: &TripleStore,
    graphs: &[&str],
    query: &Query,
    options: &EvalOptions,
) -> Result<Solutions> {
    let params = query.params();
    if !params.is_empty() {
        return Err(unbound_param_error(&params));
    }
    // Build the variable table: projected vars first (if explicit), then
    // any others appearing in the pattern.
    let pattern_vars = query.pattern.variables();
    let mut vars: Vec<String> = Vec::new();
    for v in query.variables.iter().chain(pattern_vars.iter()) {
        if !vars.contains(v) {
            vars.push(v.clone());
        }
    }
    if !query.is_aggregate() {
        // (Aggregate queries resolve ORDER BY against the output columns,
        // which may be aggregate aliases.)
        for o in &query.order_by {
            if !vars.contains(&o.variable) {
                return Err(Error::eval(format!(
                    "ORDER BY variable `?{}` does not occur in the pattern",
                    o.variable
                )));
            }
        }
    }
    for v in &query.variables {
        if !pattern_vars.contains(v) {
            // Legal in SPARQL (always unbound); we keep it and bind nothing.
        }
    }

    let var_index: HashMap<&str, usize> =
        vars.iter().enumerate().map(|(i, v)| (v.as_str(), i)).collect();

    let ctx = EvalCtx {
        store,
        graphs,
        vars: &vars,
        var_index: &var_index,
        nums: RefCell::new(HashMap::new()),
        threads: options.threads.max(1),
        cancel: options
            .cancel
            .clone()
            .unwrap_or_else(crosse_exec::CancelToken::current),
    };
    let mut rows = ctx.eval_pattern(&query.pattern, vec![vec![None; vars.len()]])?;

    if query.is_aggregate() {
        return aggregate_solutions(store, query, rows, &var_index);
    }

    // ORDER BY: decode each sort key once per row (numeric value + lexical
    // form), then compare the cached keys — no dictionary access inside the
    // comparator.
    if !query.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .map(|o| (var_index[o.variable.as_str()], o.ascending))
            .collect();
        let mut decorated: Vec<(Vec<SortKey>, Bindings)> = {
            let reader = store.dictionary().reader();
            rows.into_iter()
                .map(|r| {
                    let ks = keys
                        .iter()
                        .map(|&(i, _)| {
                            r[i].map(|id| {
                                let t = reader.term(id);
                                (t.as_f64(), t.lexical_form().to_string())
                            })
                        })
                        .collect();
                    (ks, r)
                })
                .collect()
        };
        decorated.sort_by(|a, b| {
            for (j, &(_, asc)) in keys.iter().enumerate() {
                let ord = cmp_sort_key(&a.0[j], &b.0[j]);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        rows = decorated.into_iter().map(|(_, r)| r).collect();
    }

    // Projection
    let (out_vars, proj): (Vec<String>, Vec<usize>) = if query.variables.is_empty() {
        (vars.clone(), (0..vars.len()).collect())
    } else {
        (
            query.variables.clone(),
            query
                .variables
                .iter()
                .map(|v| var_index[v.as_str()])
                .collect(),
        )
    };
    let mut projected: Vec<Vec<Option<TermId>>> = rows
        .into_iter()
        .map(|r| proj.iter().map(|&i| r[i]).collect())
        .collect();

    // DISTINCT
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        projected.retain(|r| seen.insert(r.clone()));
    }

    // LIMIT / OFFSET
    let start = query.offset.unwrap_or(0).min(projected.len());
    let end = match query.limit {
        Some(l) => (start + l).min(projected.len()),
        None => projected.len(),
    };
    let window = &projected[start..end];

    // Materialise terms through one dictionary read lock.
    let reader = store.dictionary().reader();
    Ok(Solutions {
        variables: out_vars,
        rows: window
            .iter()
            .map(|r| r.iter().map(|id| id.map(|i| reader.term(i).clone())).collect())
            .collect(),
    })
}

/// Cached ORDER BY key for one binding: `None` for unbound, else the
/// numeric interpretation (if any) plus the lexical form.
type SortKey = Option<(Option<f64>, String)>;

fn cmp_sort_key(a: &SortKey, b: &SortKey) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some((na, la)), Some((nb, lb))) => match (na, nb) {
            (Some(x), Some(y)) => x.total_cmp(y),
            _ => la.cmp(lb),
        },
    }
}

/// Group the pattern solutions and compute aggregate projections
/// (SPARQL 1.1 `GROUP BY` / `HAVING` / aggregate functions).
fn aggregate_solutions(
    store: &TripleStore,
    query: &Query,
    rows: Vec<Vec<Option<TermId>>>,
    var_index: &HashMap<&str, usize>,
) -> Result<Solutions> {
    let dict = store.dictionary();

    // Validate projections: plain variables must be grouped.
    for p in &query.projections {
        if let Projection::Var(v) = p {
            if !query.group_by.contains(v) {
                return Err(Error::eval(format!(
                    "variable `?{v}` must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
    }
    let group_is: Vec<usize> = query
        .group_by
        .iter()
        .map(|v| {
            var_index.get(v.as_str()).copied().ok_or_else(|| {
                Error::eval(format!("GROUP BY variable `?{v}` not in pattern"))
            })
        })
        .collect::<Result<_>>()?;

    // Group rows, preserving first-seen order.
    let mut order: Vec<Vec<Option<TermId>>> = Vec::new();
    let mut groups: HashMap<Vec<Option<TermId>>, Vec<usize>> = HashMap::new();
    for (ri, row) in rows.iter().enumerate() {
        let key: Vec<Option<TermId>> = group_is.iter().map(|&i| row[i]).collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(ri);
    }
    // A global aggregate (no GROUP BY) over an empty input is one group.
    if order.is_empty() && query.group_by.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    // Output column names in written order.
    let out_names: Vec<String> = query
        .projections
        .iter()
        .map(|p| match p {
            Projection::Var(v) => v.clone(),
            Projection::Agg(a) => a.alias.clone(),
        })
        .collect();

    let mut out_rows: Vec<Vec<Option<Term>>> = Vec::new();
    for key in &order {
        let members = &groups[key];
        // Per-group bindings for HAVING: group vars + aggregate aliases.
        let mut named: HashMap<&str, Option<Term>> = HashMap::new();
        for (v, id) in query.group_by.iter().zip(key) {
            named.insert(v.as_str(), id.map(|i| dict.term_of(i)));
        }
        let mut agg_values: HashMap<&str, Option<Term>> = HashMap::new();
        for p in &query.projections {
            if let Projection::Agg(a) = p {
                let value = compute_aggregate(store, a, members, &rows, var_index)?;
                agg_values.insert(a.alias.as_str(), value);
            }
        }
        for (k, v) in &agg_values {
            named.insert(k, v.clone());
        }
        if let Some(h) = &query.having {
            if eval_expr_over_terms(h, &named)? != Some(true) {
                continue;
            }
        }
        out_rows.push(
            query
                .projections
                .iter()
                .map(|p| match p {
                    Projection::Var(v) => named.get(v.as_str()).cloned().flatten(),
                    Projection::Agg(a) => {
                        agg_values.get(a.alias.as_str()).cloned().flatten()
                    }
                })
                .collect(),
        );
    }

    // DISTINCT over output rows.
    if query.distinct {
        let mut seen = std::collections::HashSet::new();
        out_rows.retain(|r| {
            let k: Vec<String> = r
                .iter()
                .map(|t| t.as_ref().map(|t| format!("{t:?}")).unwrap_or_default())
                .collect();
            seen.insert(k)
        });
    }

    // ORDER BY against output columns.
    if !query.order_by.is_empty() {
        let keys: Vec<(usize, bool)> = query
            .order_by
            .iter()
            .map(|o| {
                out_names
                    .iter()
                    .position(|n| *n == o.variable)
                    .map(|i| (i, o.ascending))
                    .ok_or_else(|| {
                        Error::eval(format!(
                            "ORDER BY variable `?{}` is not projected",
                            o.variable
                        ))
                    })
            })
            .collect::<Result<_>>()?;
        out_rows.sort_by(|a, b| {
            for &(i, asc) in &keys {
                let ord = cmp_term_opt(&a[i], &b[i]);
                let ord = if asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    let start = query.offset.unwrap_or(0).min(out_rows.len());
    let end = match query.limit {
        Some(l) => (start + l).min(out_rows.len()),
        None => out_rows.len(),
    };
    Ok(Solutions {
        variables: out_names,
        rows: out_rows[start..end].to_vec(),
    })
}

/// Compute one aggregate over the group member rows.
fn compute_aggregate(
    store: &TripleStore,
    agg: &AggProj,
    members: &[usize],
    rows: &[Vec<Option<TermId>>],
    var_index: &HashMap<&str, usize>,
) -> Result<Option<Term>> {
    let dict = store.dictionary();
    // COUNT(*) counts solutions, everything else aggregates bound values.
    let values: Vec<Term> = match &agg.var {
        None => Vec::new(),
        Some(v) => {
            let vi = *var_index.get(v.as_str()).ok_or_else(|| {
                Error::eval(format!("aggregate variable `?{v}` not in pattern"))
            })?;
            let mut vals: Vec<Term> = members
                .iter()
                .filter_map(|&ri| rows[ri][vi].map(|id| dict.term_of(id)))
                .collect();
            if agg.distinct {
                let mut seen = std::collections::HashSet::new();
                vals.retain(|t| seen.insert(t.clone()));
            }
            vals
        }
    };
    let numeric = |vals: &[Term]| -> Result<Vec<f64>> {
        vals.iter()
            .map(|t| {
                t.as_f64().ok_or_else(|| {
                    Error::eval(format!(
                        "non-numeric value `{}` in numeric aggregate",
                        t.lexical_form()
                    ))
                })
            })
            .collect()
    };
    Ok(match agg.func {
        AggFunc::Count => {
            let n = match &agg.var {
                None => members.len(),
                Some(_) => values.len(),
            };
            Some(num_term(n as f64))
        }
        AggFunc::Sum => Some(num_term(numeric(&values)?.iter().sum())),
        AggFunc::Avg => {
            let ns = numeric(&values)?;
            if ns.is_empty() {
                Some(num_term(0.0))
            } else {
                Some(num_term(ns.iter().sum::<f64>() / ns.len() as f64))
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Term> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = cmp_term_values(&b, &v);
                        let keep_new = if agg.func == AggFunc::Min {
                            ord == Ordering::Greater
                        } else {
                            ord == Ordering::Less
                        };
                        if keep_new {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best
        }
        AggFunc::Sample => values.into_iter().next(),
    })
}

/// Render a numeric aggregate result as a plain literal, using integer
/// formatting for whole numbers.
fn num_term(x: f64) -> Term {
    if x.fract() == 0.0 && x.abs() < 9e15 {
        Term::lit(format!("{}", x as i64))
    } else {
        Term::lit(format!("{x}"))
    }
}

/// Numeric-when-possible, lexical-otherwise comparison of two terms.
fn cmp_term_values(a: &Term, b: &Term) -> Ordering {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        _ => a.lexical_form().cmp(b.lexical_form()),
    }
}

fn cmp_term_opt(a: &Option<Term>, b: &Option<Term>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => cmp_term_values(x, y),
    }
}

/// Evaluate a FILTER-style expression over named (already materialised)
/// term bindings — used for HAVING, where values may be computed aggregates
/// that never entered the dictionary.
fn eval_expr_over_terms(
    e: &SparqlExpr,
    named: &HashMap<&str, Option<Term>>,
) -> Result<Option<bool>> {
    fn term_of<'t>(
        e: &'t SparqlExpr,
        named: &'t HashMap<&str, Option<Term>>,
    ) -> Result<Option<Term>> {
        match e {
            SparqlExpr::Var(v) => named
                .get(v.as_str())
                .cloned()
                .ok_or_else(|| Error::eval(format!("unknown variable `?{v}` in HAVING"))),
            SparqlExpr::Const(t) => Ok(Some(t.clone())),
            SparqlExpr::Str(inner) => {
                Ok(term_of(inner, named)?.map(|t| Term::lit(t.lexical_form().to_string())))
            }
            SparqlExpr::Param(p) => Err(Error::eval(format!(
                "unbound parameter `${p}` in HAVING"
            ))),
            other => Err(Error::eval(format!(
                "expected a term expression in HAVING, got {other:?}"
            ))),
        }
    }
    match e {
        SparqlExpr::And(a, b) => Ok(
            match (eval_expr_over_terms(a, named)?, eval_expr_over_terms(b, named)?) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
        ),
        SparqlExpr::Or(a, b) => Ok(
            match (eval_expr_over_terms(a, named)?, eval_expr_over_terms(b, named)?) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
        ),
        SparqlExpr::Not(inner) => Ok(eval_expr_over_terms(inner, named)?.map(|b| !b)),
        SparqlExpr::Bound(v) => Ok(Some(
            named
                .get(v.as_str())
                .ok_or_else(|| Error::eval(format!("unknown variable `?{v}` in HAVING")))?
                .is_some(),
        )),
        SparqlExpr::Regex(inner, pattern) => {
            let Some(t) = term_of(inner, named)? else {
                return Ok(None);
            };
            Ok(Some(simple_regex_match(t.lexical_form(), pattern)))
        }
        SparqlExpr::Cmp(a, op, b) => {
            let (Some(ta), Some(tb)) = (term_of(a, named)?, term_of(b, named)?) else {
                return Ok(None);
            };
            Ok(Some(compare_terms(&ta, *op, &tb)))
        }
        SparqlExpr::Var(_) | SparqlExpr::Const(_) | SparqlExpr::Str(_) => {
            Err(Error::eval("HAVING expression is not boolean"))
        }
        SparqlExpr::Param(p) => {
            Err(Error::eval(format!("unbound parameter `${p}` in HAVING")))
        }
    }
}

/// The error reported when a query with unbound parameters reaches the
/// evaluator directly.
fn unbound_param_error(params: &[String]) -> Error {
    let shown: Vec<String> = params
        .iter()
        .map(|p| match p.strip_prefix('#') {
            Some(n) => format!("?#{n}"),
            None => format!("${p}"),
        })
        .collect();
    Error::eval(format!(
        "query has unbound parameter(s) {} — prepare it and execute with bindings",
        shown.join(", ")
    ))
}

/// Convenience: parse and evaluate in one step.
pub fn query(store: &TripleStore, graphs: &[&str], sparql: &str) -> Result<Solutions> {
    let q = super::parser::parse_query(sparql)?;
    evaluate(store, graphs, &q)
}

/// Evaluate an `ASK` pattern: does at least one solution exist?
pub fn ask(store: &TripleStore, graphs: &[&str], pattern: &GraphPattern) -> Result<bool> {
    let q = Query {
        distinct: false,
        variables: Vec::new(),
        projections: Vec::new(),
        pattern: pattern.clone(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: Some(1),
        offset: None,
    };
    Ok(!evaluate(store, graphs, &q)?.is_empty())
}

/// Evaluate a `CONSTRUCT`: instantiate `template` once per solution of
/// `pattern`. Triples with unbound variables or literal subjects/predicates
/// are skipped; duplicates are removed.
pub fn construct(
    store: &TripleStore,
    graphs: &[&str],
    template: &[PatternTriple],
    pattern: &GraphPattern,
) -> Result<Vec<crate::store::Triple>> {
    let q = Query {
        distinct: false,
        variables: Vec::new(),
        projections: Vec::new(),
        pattern: pattern.clone(),
        group_by: Vec::new(),
        having: None,
        order_by: Vec::new(),
        limit: None,
        offset: None,
    };
    let sols = evaluate(store, graphs, &q)?;

    // Compile the template once: variable positions resolved against the
    // solution columns, constants kept by reference.
    enum TSlot<'t> {
        Const(&'t Term),
        Var(Option<usize>),
    }
    let compiled: Vec<[TSlot; 3]> = template
        .iter()
        .map(|t| {
            [&t.subject, &t.predicate, &t.object].map(|part| match part {
                PatternTerm::Const(c) => TSlot::Const(c),
                PatternTerm::Var(v) => TSlot::Var(sols.var_index(v)),
                // Unbound parameters never instantiate a template triple.
                PatternTerm::Param(_) => TSlot::Var(None),
            })
        })
        .collect();

    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for row in &sols.rows {
        'tmpl: for slots in &compiled {
            let mut resolved: [Option<&Term>; 3] = [None, None, None];
            for (pos, slot) in slots.iter().enumerate() {
                resolved[pos] = match slot {
                    TSlot::Const(c) => Some(c),
                    TSlot::Var(None) => continue 'tmpl,
                    TSlot::Var(Some(i)) => match &row[*i] {
                        Some(term) => Some(term),
                        None => continue 'tmpl,
                    },
                };
            }
            let (s, p, o) = (
                resolved[0].expect("filled"),
                resolved[1].expect("filled"),
                resolved[2].expect("filled"),
            );
            // RDF validity: literals cannot be subjects or predicates.
            if s.is_literal() || p.is_literal() {
                continue;
            }
            let triple = crate::store::Triple::new(s.clone(), p.clone(), o.clone());
            if seen.insert(triple.clone()) {
                out.push(triple);
            }
        }
    }
    Ok(out)
}

/// Parse and evaluate any query form; SELECT solutions, ASK booleans and
/// CONSTRUCT graphs are returned through one result enum.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    Solutions(Solutions),
    Boolean(bool),
    Graph(Vec<crate::store::Triple>),
}

/// Evaluate any SPARQL query form.
pub fn query_any(
    store: &TripleStore,
    graphs: &[&str],
    sparql: &str,
) -> Result<QueryOutcome> {
    match super::parser::parse_any(sparql)? {
        ParsedQuery::Select(q) => Ok(QueryOutcome::Solutions(evaluate(store, graphs, &q)?)),
        ParsedQuery::Ask(p) => Ok(QueryOutcome::Boolean(ask(store, graphs, &p)?)),
        ParsedQuery::Construct { template, pattern } => Ok(QueryOutcome::Graph(
            construct(store, graphs, &template, &pattern)?,
        )),
    }
}

/// A (partial) solution row over the full variable table.
type Bindings = Vec<Option<TermId>>;

/// One position of a compiled triple pattern: a constant already resolved
/// to its dictionary id, or a variable resolved to its row slot.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Const(TermId),
    Var(usize),
}

/// A simple (non-path) pattern with every name resolved exactly once.
#[derive(Debug, Clone, Copy)]
struct CompiledTriple {
    slots: [Slot; 3],
}

impl CompiledTriple {
    /// The probe pattern for one input row: constants stay fixed, bound
    /// variables contribute their binding, free variables stay wildcards.
    #[inline]
    fn probe(&self, row: &Bindings) -> IdPattern {
        let v = |slot: Slot| match slot {
            Slot::Const(id) => Some(id),
            Slot::Var(vi) => row[vi],
        };
        (v(self.slots[0]), v(self.slots[1]), v(self.slots[2]))
    }

    fn has_var(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, Slot::Var(_)))
    }
}

/// A compiled FILTER expression: variable names and constant terms are
/// resolved once, so per-row evaluation is id-native.
enum CExpr {
    And(Box<CExpr>, Box<CExpr>),
    Or(Box<CExpr>, Box<CExpr>),
    Not(Box<CExpr>),
    Bound(usize),
    Regex(CTerm, String),
    Cmp(CTerm, CmpOp, CTerm),
}

/// A compiled term expression inside a FILTER.
enum CTerm {
    Var(usize),
    /// A constant with its dictionary id (if interned) precomputed.
    Const { id: Option<TermId>, term: Term },
    Str(Box<CTerm>),
}

/// A resolved term value during FILTER evaluation: an interned id (no
/// materialisation), a borrowed constant, or an owned synthesised term
/// (only `STR(...)` produces these).
enum RTerm<'a> {
    Id(TermId),
    Term(&'a Term),
    Owned(Term),
}

/// Minimum probe-batch size before [`EvalOptions::threads`] actually
/// spawns workers — smaller batches finish faster than a thread spawn.
const PARALLEL_PROBE_MIN: usize = 1024;

/// The probe loop of [`EvalCtx::extend_batch_simple`] over one chunk of
/// input rows (a free function so worker threads can run it against the
/// shared prober without borrowing the evaluation context).
fn probe_rows(
    ct: &CompiledTriple,
    prober: &Prober<'_>,
    rows: Vec<Bindings>,
    cancel: &crosse_exec::CancelToken,
) -> Vec<Bindings> {
    let mut out = Vec::with_capacity(rows.len());
    let mut scratch: Vec<IdTriple> = Vec::new();
    let mut last: Option<IdPattern> = None;
    let mut since_check = 0usize;
    // Bind the free positions of `row` to one match; false if a
    // repeated variable (e.g. ?x <p> ?x) disagrees.
    let bind = |row: &mut Bindings, (s, p, o): IdTriple| -> bool {
        for (pos, id) in [(0usize, s), (1, p), (2, o)] {
            if let Slot::Var(vi) = ct.slots[pos] {
                match row[vi] {
                    None => row[vi] = Some(id),
                    Some(existing) if existing == id => {}
                    Some(_) => return false,
                }
            }
        }
        true
    };
    for mut row in rows {
        // Stop early on cancellation: the partial output is discarded by
        // the typed error the BGP loop raises at its next batch boundary.
        since_check += 1;
        if since_check >= PARALLEL_PROBE_MIN {
            since_check = 0;
            if cancel.check().is_err() {
                return out;
            }
        }
        let pat = ct.probe(&row);
        if last != Some(pat) {
            scratch.clear();
            prober.probe(pat, &mut scratch);
            last = Some(pat);
        }
        // All matches but the last extend a clone of the input
        // row; the last consumes the row itself, so the common
        // 1-match-per-row join allocates nothing.
        if let [head @ .., tail] = scratch.as_slice() {
            for &m in head {
                let mut new_row = row.clone();
                if bind(&mut new_row, m) {
                    out.push(new_row);
                }
            }
            if bind(&mut row, *tail) {
                out.push(row);
            }
        }
    }
    out
}

struct EvalCtx<'a> {
    store: &'a TripleStore,
    graphs: &'a [&'a str],
    vars: &'a [String],
    var_index: &'a HashMap<&'a str, usize>,
    /// Numeric interpretations memoised per term id (FILTER hot path).
    nums: RefCell<HashMap<TermId, Option<f64>>>,
    /// Worker threads for partition-parallel probe batches (1 = off).
    threads: usize,
    /// Cooperative cancellation handle, polled between probe batches.
    cancel: crosse_exec::CancelToken,
}

impl<'a> EvalCtx<'a> {
    fn eval_pattern(
        &self,
        pattern: &GraphPattern,
        input: Vec<Bindings>,
    ) -> Result<Vec<Bindings>> {
        match pattern {
            GraphPattern::Bgp(triples) => self.eval_bgp(triples, input),
            GraphPattern::Join(a, b) => {
                let left = self.eval_pattern(a, input)?;
                self.eval_pattern(b, left)
            }
            GraphPattern::Optional(a, b) => {
                let left = self.eval_pattern(a, input)?;
                let mut out = Vec::new();
                for row in left {
                    let extended = self.eval_pattern(b, vec![row.clone()])?;
                    if extended.is_empty() {
                        out.push(row);
                    } else {
                        out.extend(extended);
                    }
                }
                Ok(out)
            }
            GraphPattern::Union(a, b) => {
                let mut left = self.eval_pattern(a, input.clone())?;
                let right = self.eval_pattern(b, input)?;
                left.extend(right);
                Ok(left)
            }
            GraphPattern::Filter(p, e) => {
                let rows = self.eval_pattern(p, input)?;
                if rows.is_empty() {
                    return Ok(rows);
                }
                let compiled = self.compile_expr(e)?;
                let mut out = Vec::new();
                // One dictionary read guard serves the whole batch; filter
                // evaluation never interns, so holding it is safe.
                let reader = self.store.dictionary().reader();
                for row in rows {
                    if self.eval_cexpr(&compiled, &row, &reader) == Some(true) {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            GraphPattern::Minus(a, b) => {
                let left = self.eval_pattern(a, input)?;
                // The right side is evaluated independently (fresh scope),
                // per the SPARQL 1.1 MINUS definition.
                let right =
                    self.eval_pattern(b, vec![vec![None; self.vars.len()]])?;
                Ok(left
                    .into_iter()
                    .filter(|l| {
                        !right.iter().any(|r| {
                            let mut shares = false;
                            for (lv, rv) in l.iter().zip(r.iter()) {
                                match (lv, rv) {
                                    (Some(x), Some(y)) if x == y => shares = true,
                                    (Some(_), Some(_)) => return false, // incompatible
                                    _ => {}
                                }
                            }
                            shares // compatible and sharing ≥1 binding → remove
                        })
                    })
                    .collect())
            }
            GraphPattern::Values { vars, rows } => {
                let dict = self.store.dictionary();
                let var_is: Vec<usize> = vars
                    .iter()
                    .map(|v| {
                        self.var_index.get(v.as_str()).copied().ok_or_else(|| {
                            Error::eval(format!("unknown VALUES variable `?{v}`"))
                        })
                    })
                    .collect::<Result<_>>()?;
                // Intern each VALUES cell once, not once per input row.
                // (Interning is safe here: it adds the term to the
                // dictionary without asserting any triple.)
                let data_ids: Vec<Vec<Option<TermId>>> = rows
                    .iter()
                    .map(|data| {
                        data.iter()
                            .map(|cell| cell.as_ref().map(|t| dict.intern(t)))
                            .collect()
                    })
                    .collect();
                let mut out = Vec::new();
                for row in &input {
                    'data: for data in &data_ids {
                        let mut new_row = row.clone();
                        for (&vi, cell) in var_is.iter().zip(data) {
                            let Some(id) = *cell else { continue }; // UNDEF
                            match new_row[vi] {
                                None => new_row[vi] = Some(id),
                                Some(existing) if existing == id => {}
                                Some(_) => continue 'data,
                            }
                        }
                        out.push(new_row);
                    }
                }
                Ok(out)
            }
        }
    }

    /// What a BGP pattern compiles to.
    fn eval_bgp(
        &self,
        triples: &[PatternTriple],
        mut solutions: Vec<Bindings>,
    ) -> Result<Vec<Bindings>> {
        if triples.is_empty() {
            return Ok(solutions);
        }

        enum Kind<'t> {
            Simple(CompiledTriple),
            Path(&'t PatternTriple),
            Complex(&'t PropertyPath, &'t PatternTriple),
        }

        // Compile phase: resolve every constant through the dictionary
        // exactly once, pre-resolve the variable slots used for ordering,
        // and estimate each pattern's cardinality from the store's indexes.
        struct Compiled<'t> {
            estimate: usize,
            /// `None` = constant position, `Some(vi)` = variable slot.
            score_slots: [Option<usize>; 3],
            kind: Kind<'t>,
        }
        let mut remaining: Vec<Compiled> = Vec::with_capacity(triples.len());
        for t in triples {
            let kind = if let Some(path) = &t.complex {
                Kind::Complex(path, t)
            } else if t.path != PathMod::One {
                Kind::Path(t)
            } else {
                match self.compile_triple(t) {
                    Some(ct) => Kind::Simple(ct),
                    // A constant the dictionary has never seen: the whole
                    // conjunction is empty.
                    None => return Ok(Vec::new()),
                }
            };
            let score_slots = [&t.subject, &t.predicate, &t.object].map(|pt| match pt {
                PatternTerm::Const(_) | PatternTerm::Param(_) => None,
                PatternTerm::Var(v) => Some(self.var_index[v.as_str()]),
            });
            let estimate = self.estimate_pattern(t, matches!(kind, Kind::Simple(_)));
            remaining.push(Compiled { estimate, score_slots, kind });
        }

        // Greedy ordering: repeatedly pick the unprocessed pattern with the
        // most positions that are constants or already-bound variables;
        // ties go to the smaller estimated cardinality.
        let mut bound_vars: Vec<bool> = vec![false; self.vars.len()];
        // Variables bound by the input solutions count as bound.
        if let Some(first) = solutions.first() {
            for (i, b) in first.iter().enumerate() {
                if b.is_some() {
                    bound_vars[i] = true;
                }
            }
        }

        // Boundness score: 2 per constant or bound-variable position.
        let score = |c: &Compiled, bound: &[bool]| -> usize {
            c.score_slots
                .iter()
                .map(|slot| match slot {
                    None => 2usize,
                    Some(vi) => {
                        if bound[*vi] {
                            2
                        } else {
                            0
                        }
                    }
                })
                .sum()
        };

        while !remaining.is_empty() {
            // Probe-batch boundary: each pattern extension below walks the
            // whole solution batch, so poll the cancel token here — a
            // cancelled SPARQL leg stops between joins with a typed error
            // instead of running the conjunction to completion.
            self.cancel.check()?;
            let best_pos = remaining
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    score(a, &bound_vars)
                        .cmp(&score(b, &bound_vars))
                        // Smaller estimated cardinality wins ties.
                        .then_with(|| b.estimate.cmp(&a.estimate))
                })
                .map(|(i, _)| i)
                .expect("non-empty");
            let chosen = remaining.remove(best_pos);

            solutions = match chosen.kind {
                Kind::Simple(ct) => self.extend_batch_simple(&ct, solutions),
                Kind::Path(t) => self.extend_batch_path(t, solutions)?,
                Kind::Complex(path, t) => self.extend_batch_complex(path, t, solutions)?,
            };
            for slot in chosen.score_slots.into_iter().flatten() {
                bound_vars[slot] = true;
            }
            if solutions.is_empty() {
                return Ok(solutions);
            }
        }
        Ok(solutions)
    }

    /// Estimated result cardinality of one pattern against the store: the
    /// index count for its constant positions (variables wildcard, since
    /// their per-row values are unknown at planning time). The walk is
    /// capped — the estimate only breaks ties, so relative size up to the
    /// cap is all the resolution ordering needs.
    fn estimate_pattern(&self, t: &PatternTriple, simple: bool) -> usize {
        const EST_CAP: usize = 256;
        let dict = self.store.dictionary();
        if simple {
            let conv = |pt: &PatternTerm| match pt {
                PatternTerm::Const(term) => dict.id_of(term),
                PatternTerm::Var(_) | PatternTerm::Param(_) => None,
            };
            let pat = (conv(&t.subject), conv(&t.predicate), conv(&t.object));
            self.store.count_id_pattern(self.graphs, pat, EST_CAP)
        } else {
            // Path patterns scan their predicate's extension.
            match &t.predicate {
                PatternTerm::Const(p) => match dict.id_of(p) {
                    Some(id) => self.store.count_id_pattern(
                        self.graphs,
                        (None, Some(id), None),
                        EST_CAP,
                    ),
                    None => 0,
                },
                PatternTerm::Var(_) | PatternTerm::Param(_) => {
                    self.store.count_id_pattern(self.graphs, (None, None, None), EST_CAP)
                }
            }
        }
    }

    fn compile_triple(&self, t: &PatternTriple) -> Option<CompiledTriple> {
        let dict = self.store.dictionary();
        let mut slots = [Slot::Var(0); 3];
        for (pos, pt) in [&t.subject, &t.predicate, &t.object].into_iter().enumerate() {
            slots[pos] = match pt {
                PatternTerm::Const(term) => Slot::Const(dict.id_of(term)?),
                PatternTerm::Var(v) => Slot::Var(self.var_index[v.as_str()]),
                // Guarded against in `evaluate`; an unbound parameter can
                // never match (behaves like an unknown constant).
                PatternTerm::Param(_) => return None,
            };
        }
        Some(CompiledTriple { slots })
    }

    /// Join every input row with one compiled pattern. The per-row loop is
    /// id-native: no dictionary lookups, no per-row probe allocation (one
    /// scratch buffer serves every probe), and rows are pre-sorted on their
    /// probe key so consecutive range scans are index-adjacent — identical
    /// consecutive probes reuse the previous scan outright.
    ///
    /// With a parallel thread budget (see [`EvalOptions::threads`]) and a
    /// large enough batch, the sorted rows are split into contiguous
    /// chunks and probed partition-parallel: the store's graph map is
    /// resolved once into a shared [`Prober`], each worker owns its chunk
    /// and scratch buffer, and chunk outputs concatenate in order — the
    /// result is bit-identical to the sequential loop.
    fn extend_batch_simple(
        &self,
        ct: &CompiledTriple,
        mut rows: Vec<Bindings>,
    ) -> Vec<Bindings> {
        if rows.len() > 16 && ct.has_var() {
            rows.sort_by_cached_key(|row| ct.probe(row));
        }
        // Captured alone so worker closures don't borrow the (non-Sync)
        // evaluation context.
        let cancel = &self.cancel;
        self.store.with_prober(self.graphs, |prober| {
            if self.threads > 1 && rows.len() >= PARALLEL_PROBE_MIN {
                let pool = crosse_exec::WorkerPool::new(self.threads);
                pool.map_owned_chunks(rows, self.threads, |_, chunk| {
                    probe_rows(ct, prober, chunk, cancel)
                })
                .into_iter()
                .flatten()
                .collect()
            } else {
                probe_rows(ct, prober, rows, cancel)
            }
        })
    }

    /// Resolve a path endpoint once per pattern (same slot model as
    /// [`CompiledTriple`]). `None` means a constant the dictionary has
    /// never seen (pattern matches nothing).
    fn compile_end(&self, pt: &PatternTerm) -> Option<Slot> {
        match pt {
            PatternTerm::Const(term) => {
                self.store.dictionary().id_of(term).map(Slot::Const)
            }
            PatternTerm::Var(v) => Some(Slot::Var(self.var_index[v.as_str()])),
            PatternTerm::Param(_) => None,
        }
    }

    /// Evaluate a transitive path pattern (`p+` / `p*`) against every input
    /// row. The predicate's edge list and adjacency maps are materialised
    /// once per *pattern* (they were previously rebuilt per row), and
    /// reachability sets are memoised across rows.
    fn extend_batch_path(
        &self,
        t: &PatternTriple,
        rows: Vec<Bindings>,
    ) -> Result<Vec<Bindings>> {
        let dict = self.store.dictionary();
        let PatternTerm::Const(pred) = &t.predicate else {
            return Err(Error::eval("path modifiers require a constant predicate"));
        };
        let Some(p) = dict.id_of(pred) else {
            return Ok(Vec::new()); // predicate never seen → no edges
        };
        let (Some(s_end), Some(o_end)) =
            (self.compile_end(&t.subject), self.compile_end(&t.object))
        else {
            return Ok(Vec::new()); // constant endpoint never interned
        };

        let mut edges: Vec<IdTriple> = Vec::new();
        self.store
            .match_id_pattern(self.graphs, (None, Some(p), None), &mut edges);
        let mut forward: HashMap<TermId, Vec<TermId>> = HashMap::new();
        let mut backward: HashMap<TermId, Vec<TermId>> = HashMap::new();
        let mut nodes: Vec<TermId> = Vec::new();
        let mut node_set: HashSet<TermId> = HashSet::new();
        for &(s, _, o) in &edges {
            forward.entry(s).or_default().push(o);
            backward.entry(o).or_default().push(s);
            if node_set.insert(s) {
                nodes.push(s);
            }
            if node_set.insert(o) {
                nodes.push(o);
            }
        }
        let include_zero = t.path == PathMod::ZeroOrMore;

        let mut reach_memo: HashMap<TermId, Rc<ReachSet>> = HashMap::new();
        let mut back_memo: HashMap<TermId, Rc<HashSet<TermId>>> = HashMap::new();

        let mut out = Vec::new();
        for row in &rows {
            let end_val = |end: Slot| match end {
                Slot::Const(id) => Some(id),
                Slot::Var(vi) => row[vi],
            };
            let (s_res, o_res) = (end_val(s_end), end_val(o_end));

            let emit = |s: TermId, o: TermId, out: &mut Vec<Bindings>| {
                let mut new_row = row.clone();
                if let Slot::Var(vi) = s_end {
                    new_row[vi] = Some(s);
                }
                if let Slot::Var(vi) = o_end {
                    match new_row[vi] {
                        None => new_row[vi] = Some(o),
                        Some(existing) if existing == o => {}
                        Some(_) => return,
                    }
                }
                out.push(new_row);
            };

            match (s_res, o_res) {
                (Some(s), Some(o)) => {
                    let r = reachable(&forward, include_zero, &mut reach_memo, s);
                    if r.set.contains(&o) {
                        emit(s, o, &mut out);
                    }
                }
                (Some(s), None) => {
                    let r = reachable(&forward, include_zero, &mut reach_memo, s);
                    for &o in &r.order {
                        emit(s, o, &mut out);
                    }
                }
                (None, Some(o)) => {
                    // Backward reachability: nodes from which `o` is
                    // reachable, in node-first-seen order.
                    let sources = back_reachable(
                        &backward,
                        &node_set,
                        include_zero,
                        &mut back_memo,
                        o,
                    );
                    for &s in &nodes {
                        if sources.contains(&s) {
                            emit(s, o, &mut out);
                        }
                    }
                }
                (None, None) => {
                    for &s in &nodes {
                        let r = reachable(&forward, include_zero, &mut reach_memo, s);
                        for &o in &r.order {
                            emit(s, o, &mut out);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Bind the endpoints of a structured property path against its pair
    /// set. The pair set and its endpoint indexes are built once per
    /// pattern (previously the pair set was recomputed per row).
    fn extend_batch_complex(
        &self,
        path: &PropertyPath,
        t: &PatternTriple,
        rows: Vec<Bindings>,
    ) -> Result<Vec<Bindings>> {
        let (Some(s_end), Some(o_end)) =
            (self.compile_end(&t.subject), self.compile_end(&t.object))
        else {
            return Ok(Vec::new()); // constant endpoint never interned
        };
        let pairs = self.path_pairs(path);
        let mut by_s: HashMap<TermId, Vec<TermId>> = HashMap::new();
        let mut by_o: HashMap<TermId, Vec<TermId>> = HashMap::new();
        let mut pair_set: HashSet<(TermId, TermId)> = HashSet::with_capacity(pairs.len());
        for &(s, o) in &pairs {
            by_s.entry(s).or_default().push(o);
            by_o.entry(o).or_default().push(s);
            pair_set.insert((s, o));
        }

        let mut out = Vec::new();
        for row in &rows {
            let end_val = |end: Slot| match end {
                Slot::Const(id) => Some(id),
                Slot::Var(vi) => row[vi],
            };
            let (s_res, o_res) = (end_val(s_end), end_val(o_end));

            let emit = |s: TermId, o: TermId, out: &mut Vec<Bindings>| {
                let mut new_row = row.clone();
                let mut ok = true;
                for (end, id) in [(s_end, s), (o_end, o)] {
                    if let Slot::Var(vi) = end {
                        match new_row[vi] {
                            None => new_row[vi] = Some(id),
                            Some(existing) if existing == id => {}
                            Some(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    out.push(new_row);
                }
            };

            match (s_res, o_res) {
                (Some(s), Some(o)) => {
                    if pair_set.contains(&(s, o)) {
                        emit(s, o, &mut out);
                    }
                }
                (Some(s), None) => {
                    for &o in by_s.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                        emit(s, o, &mut out);
                    }
                }
                (None, Some(o)) => {
                    for &s in by_o.get(&o).map(Vec::as_slice).unwrap_or(&[]) {
                        emit(s, o, &mut out);
                    }
                }
                (None, None) => {
                    for &(s, o) in &pairs {
                        emit(s, o, &mut out);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Materialise the (subject, object) pair set of a structured property
    /// path. Pair sets stay small because they are evaluated against
    /// per-user knowledge bases, not the relational databank.
    fn path_pairs(&self, path: &PropertyPath) -> Vec<(TermId, TermId)> {
        match path {
            PropertyPath::Pred(term) => {
                let Some(p) = self.store.dictionary().id_of(term) else {
                    return Vec::new();
                };
                let mut matches = Vec::new();
                self.store
                    .match_id_pattern(self.graphs, (None, Some(p), None), &mut matches);
                matches.into_iter().map(|(s, _, o)| (s, o)).collect()
            }
            PropertyPath::Inverse(p) => {
                self.path_pairs(p).into_iter().map(|(s, o)| (o, s)).collect()
            }
            PropertyPath::Alternative(ps) => {
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for p in ps {
                    for pair in self.path_pairs(p) {
                        if seen.insert(pair) {
                            out.push(pair);
                        }
                    }
                }
                out
            }
            PropertyPath::Sequence(ps) => {
                let mut acc: Option<Vec<(TermId, TermId)>> = None;
                for p in ps {
                    let next = self.path_pairs(p);
                    acc = Some(match acc {
                        None => next,
                        Some(cur) => {
                            let mut by_subject: HashMap<TermId, Vec<TermId>> =
                                HashMap::new();
                            for (s, o) in next {
                                by_subject.entry(s).or_default().push(o);
                            }
                            let mut seen = HashSet::new();
                            let mut out = Vec::new();
                            for (a, b) in cur {
                                for &c in
                                    by_subject.get(&b).map(Vec::as_slice).unwrap_or(&[])
                                {
                                    if seen.insert((a, c)) {
                                        out.push((a, c));
                                    }
                                }
                            }
                            out
                        }
                    });
                    if acc.as_ref().is_some_and(Vec::is_empty) {
                        break;
                    }
                }
                acc.unwrap_or_default()
            }
            PropertyPath::Closure(p, mode) => {
                let base = self.path_pairs(p);
                let mut forward: HashMap<TermId, Vec<TermId>> = HashMap::new();
                let mut nodes: HashSet<TermId> = HashSet::new();
                for &(s, o) in &base {
                    forward.entry(s).or_default().push(o);
                    nodes.insert(s);
                    nodes.insert(o);
                }
                let mut seen = HashSet::new();
                let mut out = Vec::new();
                for &start in &nodes {
                    // BFS from each node.
                    let mut frontier = vec![start];
                    let mut reached: HashSet<TermId> = HashSet::new();
                    while let Some(n) = frontier.pop() {
                        for &next in forward.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                            if reached.insert(next) {
                                frontier.push(next);
                            }
                        }
                    }
                    if *mode == PathMod::ZeroOrMore {
                        reached.insert(start);
                    }
                    for o in reached {
                        if seen.insert((start, o)) {
                            out.push((start, o));
                        }
                    }
                }
                out
            }
        }
    }

    // ---- compiled FILTER evaluation ------------------------------------

    fn compile_expr(&self, e: &SparqlExpr) -> Result<CExpr> {
        Ok(match e {
            SparqlExpr::And(a, b) => {
                CExpr::And(Box::new(self.compile_expr(a)?), Box::new(self.compile_expr(b)?))
            }
            SparqlExpr::Or(a, b) => {
                CExpr::Or(Box::new(self.compile_expr(a)?), Box::new(self.compile_expr(b)?))
            }
            SparqlExpr::Not(inner) => CExpr::Not(Box::new(self.compile_expr(inner)?)),
            SparqlExpr::Bound(v) => CExpr::Bound(self.resolve_var(v)?),
            SparqlExpr::Regex(inner, pattern) => {
                CExpr::Regex(self.compile_cterm(inner)?, pattern.clone())
            }
            SparqlExpr::Cmp(a, op, b) => {
                CExpr::Cmp(self.compile_cterm(a)?, *op, self.compile_cterm(b)?)
            }
            SparqlExpr::Var(_) | SparqlExpr::Const(_) | SparqlExpr::Str(_) => {
                return Err(Error::eval("expression is not boolean"))
            }
            SparqlExpr::Param(p) => {
                return Err(Error::eval(format!("unbound parameter `${p}`")))
            }
        })
    }

    fn compile_cterm(&self, e: &SparqlExpr) -> Result<CTerm> {
        Ok(match e {
            SparqlExpr::Var(v) => CTerm::Var(self.resolve_var(v)?),
            SparqlExpr::Const(t) => CTerm::Const {
                id: self.store.dictionary().id_of(t),
                term: t.clone(),
            },
            SparqlExpr::Str(inner) => CTerm::Str(Box::new(self.compile_cterm(inner)?)),
            other => {
                return Err(Error::eval(format!(
                    "expected a term expression, got {other:?}"
                )))
            }
        })
    }

    fn resolve_var(&self, v: &str) -> Result<usize> {
        self.var_index
            .get(v)
            .copied()
            .ok_or_else(|| Error::eval(format!("unknown variable `?{v}`")))
    }

    fn eval_cexpr(&self, e: &CExpr, row: &Bindings, reader: &DictReader) -> Option<bool> {
        // Three-valued: unbound variables make a comparison undefined
        // (treated as an evaluation error in SPARQL → filter drops the row,
        // here modelled as None).
        match e {
            CExpr::And(a, b) => match
                (self.eval_cexpr(a, row, reader), self.eval_cexpr(b, row, reader))
            {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            CExpr::Or(a, b) => match
                (self.eval_cexpr(a, row, reader), self.eval_cexpr(b, row, reader))
            {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            CExpr::Not(inner) => self.eval_cexpr(inner, row, reader).map(|b| !b),
            CExpr::Bound(vi) => Some(row[*vi].is_some()),
            CExpr::Regex(ct, pattern) => {
                let value = self.resolve_cterm(ct, row, reader)?;
                Some(match value {
                    RTerm::Id(id) => {
                        simple_regex_match(reader.term(id).lexical_form(), pattern)
                    }
                    RTerm::Term(t) => simple_regex_match(t.lexical_form(), pattern),
                    RTerm::Owned(t) => simple_regex_match(t.lexical_form(), pattern),
                })
            }
            CExpr::Cmp(a, op, b) => {
                let va = self.resolve_cterm(a, row, reader)?;
                let vb = self.resolve_cterm(b, row, reader)?;
                Some(self.compare_rterms(&va, *op, &vb, reader))
            }
        }
    }

    fn resolve_cterm<'t>(
        &self,
        ct: &'t CTerm,
        row: &Bindings,
        reader: &DictReader,
    ) -> Option<RTerm<'t>> {
        match ct {
            CTerm::Var(vi) => row[*vi].map(RTerm::Id),
            CTerm::Const { id: Some(id), .. } => Some(RTerm::Id(*id)),
            CTerm::Const { id: None, term } => Some(RTerm::Term(term)),
            CTerm::Str(inner) => {
                let value = self.resolve_cterm(inner, row, reader)?;
                let lex = match value {
                    RTerm::Id(id) => reader.term(id).lexical_form().to_string(),
                    RTerm::Term(t) => t.lexical_form().to_string(),
                    RTerm::Owned(t) => t.lexical_form().to_string(),
                };
                Some(RTerm::Owned(Term::lit(lex)))
            }
        }
    }

    /// Memoised numeric interpretation of an interned term.
    fn num(&self, id: TermId, reader: &DictReader) -> Option<f64> {
        if let Some(&v) = self.nums.borrow().get(&id) {
            return v;
        }
        let v = reader.term(id).as_f64();
        self.nums.borrow_mut().insert(id, v);
        v
    }

    fn num_of(&self, r: &RTerm, reader: &DictReader) -> Option<f64> {
        match r {
            RTerm::Id(id) => self.num(*id, reader),
            RTerm::Term(t) => t.as_f64(),
            RTerm::Owned(t) => t.as_f64(),
        }
    }

    /// Compare two resolved terms with the semantics of [`compare_terms`]:
    /// numeric when both sides parse as numbers, id/term equality for
    /// `=`/`!=`, lexical otherwise. Ids are compared before any term is
    /// materialised; the dictionary is only read (never cloned from) when
    /// the id fast paths cannot decide.
    fn compare_rterms(&self, a: &RTerm, op: CmpOp, b: &RTerm, reader: &DictReader) -> bool {
        if let (Some(x), Some(y)) = (self.num_of(a, reader), self.num_of(b, reader)) {
            return match op {
                CmpOp::Eq => x == y,
                CmpOp::NotEq => x != y,
                op => {
                    let ord = x.partial_cmp(&y).unwrap_or(Ordering::Equal);
                    match op {
                        CmpOp::Lt => ord == Ordering::Less,
                        CmpOp::LtEq => ord != Ordering::Greater,
                        CmpOp::Gt => ord == Ordering::Greater,
                        CmpOp::GtEq => ord != Ordering::Less,
                        CmpOp::Eq | CmpOp::NotEq => unreachable!(),
                    }
                }
            };
        }
        // Identical ids ⇒ identical terms, no materialisation needed.
        if let (RTerm::Id(x), RTerm::Id(y)) = (a, b) {
            if x == y && matches!(op, CmpOp::Eq | CmpOp::NotEq) {
                return op == CmpOp::Eq;
            }
        }
        // Fall back to the term-level comparison, borrowing interned terms
        // from the dictionary without cloning.
        let ta: &Term = match a {
            RTerm::Id(id) => reader.term(*id),
            RTerm::Term(t) => t,
            RTerm::Owned(t) => t,
        };
        let tb: &Term = match b {
            RTerm::Id(id) => reader.term(*id),
            RTerm::Term(t) => t,
            RTerm::Owned(t) => t,
        };
        compare_terms(ta, op, tb)
    }
}

/// A memoised forward-reachability result: insertion order (for stable
/// emission order) plus a set (for O(1) membership).
struct ReachSet {
    order: Vec<TermId>,
    set: HashSet<TermId>,
}

/// Nodes reachable from `start` over `forward` edges (≥1 step; `start`
/// itself included when `include_zero`). Memoised per start node.
fn reachable(
    forward: &HashMap<TermId, Vec<TermId>>,
    include_zero: bool,
    memo: &mut HashMap<TermId, Rc<ReachSet>>,
    start: TermId,
) -> Rc<ReachSet> {
    if let Some(r) = memo.get(&start) {
        return r.clone();
    }
    let mut set: HashSet<TermId> = HashSet::new();
    let mut order: Vec<TermId> = Vec::new();
    let mut frontier = vec![start];
    while let Some(n) = frontier.pop() {
        for &next in forward.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
            if set.insert(next) {
                order.push(next);
                frontier.push(next);
            }
        }
    }
    if include_zero && set.insert(start) {
        order.push(start);
    }
    let rc = Rc::new(ReachSet { order, set });
    memo.insert(start, rc.clone());
    rc
}

/// Nodes from which `target` is reachable (≥1 step; `target` itself
/// included when `include_zero` and it occurs in the edge set). Memoised
/// per target node.
fn back_reachable(
    backward: &HashMap<TermId, Vec<TermId>>,
    node_set: &HashSet<TermId>,
    include_zero: bool,
    memo: &mut HashMap<TermId, Rc<HashSet<TermId>>>,
    target: TermId,
) -> Rc<HashSet<TermId>> {
    if let Some(r) = memo.get(&target) {
        return r.clone();
    }
    let mut set: HashSet<TermId> = HashSet::new();
    let mut frontier = vec![target];
    while let Some(n) = frontier.pop() {
        for &prev in backward.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
            if set.insert(prev) {
                frontier.push(prev);
            }
        }
    }
    if include_zero && node_set.contains(&target) {
        set.insert(target);
    }
    let rc = Rc::new(set);
    memo.insert(target, rc.clone());
    rc
}

/// Term comparison: numeric when both sides parse as numbers, term equality
/// for `=`/`!=`, lexical otherwise.
pub(crate) fn compare_terms(a: &Term, op: CmpOp, b: &Term) -> bool {
    if matches!(op, CmpOp::Eq | CmpOp::NotEq) {
        let eq = match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x == y,
            _ => a == b || (a.is_iri() ^ b.is_iri() && a.lexical_form() == b.lexical_form()),
        };
        return if op == CmpOp::Eq { eq } else { !eq };
    }
    let ord = match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.lexical_form().cmp(b.lexical_form()),
    };
    match op {
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::LtEq => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::GtEq => ord != Ordering::Less,
        CmpOp::Eq | CmpOp::NotEq => unreachable!(),
    }
}

/// A deliberately small REGEX subset: `^` anchors the start, `$` the end,
/// everything else matches literally (substring search). Covers the
/// highlight / snippet use cases of the paper without a regex dependency.
fn simple_regex_match(s: &str, pattern: &str) -> bool {
    let (anchored_start, p) = match pattern.strip_prefix('^') {
        Some(rest) => (true, rest),
        None => (false, pattern),
    };
    let (anchored_end, p) = match p.strip_suffix('$') {
        Some(rest) => (true, rest),
        None => (false, p),
    };
    match (anchored_start, anchored_end) {
        (true, true) => s == p,
        (true, false) => s.starts_with(p),
        (false, true) => s.ends_with(p),
        (false, false) => s.contains(p),
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Triple;

    fn t(s: &str, p: &str, o: Term) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), o)
    }

    fn store() -> TripleStore {
        let store = TripleStore::new();
        let g = "kb";
        store.insert(g, &t("Hg", "dangerLevel", Term::lit("5")));
        store.insert(g, &t("Pb", "dangerLevel", Term::lit("4")));
        store.insert(g, &t("As", "dangerLevel", Term::lit("5")));
        store.insert(g, &t("Cu", "dangerLevel", Term::lit("1")));
        store.insert(g, &t("Hg", "isA", Term::iri("HazardousWaste")));
        store.insert(g, &t("Pb", "isA", Term::iri("HazardousWaste")));
        store.insert(g, &t("Hg", "name", Term::lit("Mercury")));
        store.insert(g, &t("Pb", "name", Term::lit("Lead")));
        store.insert(g, &t("Hg", "occursWith", Term::iri("As")));
        store
    }

    fn run(sparql: &str) -> Solutions {
        query(&store(), &["kb"], sparql).unwrap()
    }

    #[test]
    fn single_pattern() {
        let s = run("SELECT ?s ?o WHERE { ?s <dangerLevel> ?o }");
        assert_eq!(s.len(), 4);
        assert_eq!(s.variables, vec!["s", "o"]);
    }

    #[test]
    fn join_two_patterns() {
        let s = run(
            "SELECT ?s ?n WHERE { ?s <isA> <HazardousWaste> . ?s <name> ?n } ORDER BY ?n",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[0][1], Some(Term::lit("Lead")));
        assert_eq!(s.rows[1][1], Some(Term::lit("Mercury")));
    }

    #[test]
    fn filter_numeric() {
        let s = run("SELECT ?s WHERE { ?s <dangerLevel> ?d . FILTER(?d >= 4) } ORDER BY ?s");
        assert_eq!(s.len(), 3);
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["As", "Hg", "Pb"]);
    }

    #[test]
    fn filter_inequality_on_iri() {
        let s = run("SELECT ?s WHERE { ?s <isA> <HazardousWaste> . FILTER(?s != <Hg>) }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Pb")));
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = run(
            "SELECT ?s ?w WHERE { ?s <isA> <HazardousWaste> . OPTIONAL { ?s <occursWith> ?w } } ORDER BY ?s",
        );
        assert_eq!(s.len(), 2);
        // Hg has occursWith, Pb does not.
        let hg = s.rows.iter().find(|r| r[0] == Some(Term::iri("Hg"))).unwrap();
        assert_eq!(hg[1], Some(Term::iri("As")));
        let pb = s.rows.iter().find(|r| r[0] == Some(Term::iri("Pb"))).unwrap();
        assert_eq!(pb[1], None);
    }

    #[test]
    fn union_concatenates() {
        let s = run(
            "SELECT ?x WHERE { { ?x <dangerLevel> \"5\" } UNION { ?x <name> \"Lead\" } }",
        );
        assert_eq!(s.len(), 3); // Hg, As (level 5) + Pb (name Lead)
    }

    #[test]
    fn distinct_and_limit() {
        let s = run("SELECT DISTINCT ?p WHERE { ?s ?p ?o }");
        assert_eq!(s.len(), 4); // dangerLevel, isA, name, occursWith
        let s = run("SELECT ?s WHERE { ?s ?p ?o } LIMIT 3");
        assert_eq!(s.len(), 3);
        let s = run("SELECT ?s WHERE { ?s <dangerLevel> ?d } ORDER BY ?s LIMIT 2 OFFSET 3");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn select_star_exposes_all_vars() {
        let s = run("SELECT * WHERE { ?s <name> ?n }");
        assert_eq!(s.variables, vec!["s", "n"]);
    }

    #[test]
    fn same_variable_twice_in_pattern() {
        let store = store();
        store.insert("kb", &t("Se", "occursWith", Term::iri("Se")));
        let s = query(&store, &["kb"], "SELECT ?x WHERE { ?x <occursWith> ?x }").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Se")));
    }

    #[test]
    fn bound_filter_with_optional() {
        let s = run(
            "SELECT ?s WHERE { ?s <isA> <HazardousWaste> . \
             OPTIONAL { ?s <occursWith> ?w } FILTER(!BOUND(?w)) }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Pb")));
    }

    #[test]
    fn regex_subset() {
        let s = run(
            "SELECT ?s WHERE { ?s <name> ?n . FILTER(REGEX(?n, \"^Merc\")) }",
        );
        assert_eq!(s.len(), 1);
        assert!(simple_regex_match("mercury", "cur"));
        assert!(simple_regex_match("mercury", "^merc"));
        assert!(simple_regex_match("mercury", "ury$"));
        assert!(simple_regex_match("mercury", "^mercury$"));
        assert!(!simple_regex_match("mercury", "^urc"));
    }

    #[test]
    fn empty_graph_yields_no_solutions() {
        let s = query(&store(), &["empty"], "SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn order_by_numeric_desc() {
        let s = run("SELECT ?s ?d WHERE { ?s <dangerLevel> ?d } ORDER BY DESC(?d) ?s");
        assert_eq!(s.rows[0][1], Some(Term::lit("5")));
        assert_eq!(s.rows[3][1], Some(Term::lit("1")));
    }

    #[test]
    fn column_helper() {
        let s = run("SELECT ?s WHERE { ?s <isA> <HazardousWaste> }");
        let c = s.column("s").unwrap();
        assert_eq!(c.len(), 2);
        assert!(s.column("nope").is_err());
    }

    fn hierarchy_store() -> TripleStore {
        let store = TripleStore::new();
        for (a, b) in [("HgS", "HeavyMetalOre"), ("HeavyMetalOre", "MetalOre"), ("MetalOre", "Ore")] {
            store.insert("kb", &t(a, "subClassOf", Term::iri(b)));
        }
        store.insert("kb", &t("PbS", "subClassOf", Term::iri("HeavyMetalOre")));
        store
    }

    #[test]
    fn transitive_path_forward() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT ?c WHERE { <HgS> <subClassOf>+ ?c } ORDER BY ?c",
        )
        .unwrap();
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["HeavyMetalOre", "MetalOre", "Ore"]);
    }

    #[test]
    fn transitive_path_backward() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT ?c WHERE { ?c <subClassOf>+ <MetalOre> } ORDER BY ?c",
        )
        .unwrap();
        assert_eq!(s.len(), 3); // HgS, PbS, HeavyMetalOre
    }

    #[test]
    fn zero_or_more_includes_self() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT ?c WHERE { <HgS> <subClassOf>* ?c }",
        )
        .unwrap();
        assert_eq!(s.len(), 4, "self + three ancestors");
    }

    #[test]
    fn path_both_endpoints_bound() {
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT * WHERE { <HgS> <subClassOf>+ <Ore> }",
        )
        .unwrap();
        assert_eq!(s.len(), 1, "reachability check succeeds");
        let s = query(
            &hierarchy_store(),
            &["kb"],
            "SELECT * WHERE { <Ore> <subClassOf>+ <HgS> }",
        )
        .unwrap();
        assert!(s.is_empty(), "no backward edge");
    }

    #[test]
    fn path_with_cycle_terminates() {
        let store = TripleStore::new();
        store.insert("kb", &t("A", "next", Term::iri("B")));
        store.insert("kb", &t("B", "next", Term::iri("A")));
        let s = query(&store, &["kb"], "SELECT ?x WHERE { <A> <next>+ ?x }").unwrap();
        assert_eq!(s.len(), 2); // B and A (via the cycle)
    }

    #[test]
    fn path_joins_with_other_patterns() {
        let store = hierarchy_store();
        store.insert("kb", &t("HgS", "foundIn", Term::lit("LF1")));
        let s = query(
            &store,
            &["kb"],
            "SELECT ?o WHERE { ?o <subClassOf>+ <Ore> . ?o <foundIn> ?l }",
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("HgS")));
    }

    #[test]
    fn path_on_variable_predicate_rejected() {
        assert!(crate::sparql::parser::parse_query(
            "SELECT ?x WHERE { <A> ?p+ ?x }"
        )
        .is_err());
    }

    #[test]
    fn ask_form() {
        let store = store();
        match query_any(&store, &["kb"], "ASK { <Hg> <isA> <HazardousWaste> }").unwrap() {
            QueryOutcome::Boolean(b) => assert!(b),
            other => panic!("unexpected {other:?}"),
        }
        match query_any(&store, &["kb"], "ASK WHERE { <Cu> <isA> <HazardousWaste> }").unwrap()
        {
            QueryOutcome::Boolean(b) => assert!(!b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ask_with_filter() {
        let store = store();
        match query_any(
            &store,
            &["kb"],
            "ASK { ?s <dangerLevel> ?d . FILTER(?d > 4) }",
        )
        .unwrap()
        {
            QueryOutcome::Boolean(b) => assert!(b),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn construct_instantiates_template() {
        let store = store();
        let out = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?s <classifiedAs> <Dangerous> } \
             WHERE { ?s <dangerLevel> ?d . FILTER(?d >= 4) }",
        )
        .unwrap();
        match out {
            QueryOutcome::Graph(ts) => {
                assert_eq!(ts.len(), 3); // Hg, Pb, As
                assert!(ts
                    .iter()
                    .all(|t| t.predicate == Term::iri("classifiedAs")));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn construct_skips_invalid_and_dedupes() {
        let store = store();
        // Literal subject (?n is a literal) → skipped entirely; constant
        // template emitted once per solution but deduplicated to one.
        let out = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?n <x> <y> . <a> <b> <c> } WHERE { ?s <name> ?n }",
        )
        .unwrap();
        match out {
            QueryOutcome::Graph(ts) => {
                assert_eq!(ts, vec![t("a", "b", Term::iri("c"))]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn construct_feeds_back_into_store() {
        // CONSTRUCT output loads into a graph — the "context-aware
        // knowledge extension" loop of Sec. I-B(c).
        let store = store();
        let QueryOutcome::Graph(ts) = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?s <suspect> \"true\" } WHERE { ?s <dangerLevel> \"5\" }",
        )
        .unwrap() else {
            panic!()
        };
        store.insert_all("derived", ts.iter());
        let s = query(&store, &["derived"], "SELECT ?s WHERE { ?s <suspect> ?v }").unwrap();
        assert_eq!(s.len(), 2); // Hg, As
    }

    #[test]
    fn parse_query_rejects_non_select() {
        assert!(crate::sparql::parser::parse_query("ASK { ?s ?p ?o }").is_err());
    }

    #[test]
    fn cross_graph_union_evaluation() {
        let store = store();
        store.insert("kb2", &t("Zn", "dangerLevel", Term::lit("2")));
        let s = query(&store, &["kb", "kb2"], "SELECT ?s WHERE { ?s <dangerLevel> ?d }")
            .unwrap();
        assert_eq!(s.len(), 5);
    }

    // ---- aggregates ---------------------------------------------------------

    #[test]
    fn count_star_global() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?s <dangerLevel> ?d }");
        assert_eq!(s.variables, vec!["n"]);
        assert_eq!(s.rows[0][0], Some(Term::lit("4")));
    }

    #[test]
    fn count_star_on_empty_pattern_is_zero() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?s <nope> ?d }");
        assert_eq!(s.rows[0][0], Some(Term::lit("0")));
    }

    #[test]
    fn group_by_with_count() {
        let s = run(
            "SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <dangerLevel> ?d } \
             GROUP BY ?d ORDER BY DESC(?n) ?d",
        );
        assert_eq!(s.variables, vec!["d", "n"]);
        // level 5 → 2 subjects; levels 4 and 1 → 1 each.
        assert_eq!(s.rows[0][0], Some(Term::lit("5")));
        assert_eq!(s.rows[0][1], Some(Term::lit("2")));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn sum_avg_min_max_sample() {
        let s = run(
            "SELECT (SUM(?d) AS ?sum) (AVG(?d) AS ?avg) (MIN(?d) AS ?lo) \
             (MAX(?d) AS ?hi) (SAMPLE(?d) AS ?any) \
             WHERE { ?s <dangerLevel> ?d }",
        );
        assert_eq!(s.rows[0][0], Some(Term::lit("15"))); // 5+4+5+1
        assert_eq!(s.rows[0][1], Some(Term::lit("3.75")));
        assert_eq!(s.rows[0][2], Some(Term::lit("1")));
        assert_eq!(s.rows[0][3], Some(Term::lit("5")));
        assert!(s.rows[0][4].is_some());
    }

    #[test]
    fn count_distinct() {
        let s = run("SELECT (COUNT(DISTINCT ?d) AS ?n) WHERE { ?s <dangerLevel> ?d }");
        assert_eq!(s.rows[0][0], Some(Term::lit("3"))); // 5, 4, 1
    }

    #[test]
    fn having_filters_groups() {
        let s = run(
            "SELECT ?d (COUNT(?s) AS ?n) WHERE { ?s <dangerLevel> ?d } \
             GROUP BY ?d HAVING(?n > 1)",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::lit("5")));
    }

    #[test]
    fn ungrouped_projection_rejected() {
        let store = store();
        let err = query(
            &store,
            &["kb"],
            "SELECT ?s (COUNT(?d) AS ?n) WHERE { ?s <dangerLevel> ?d }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn sum_of_non_numeric_errors() {
        let err = query(
            &store(),
            &["kb"],
            "SELECT (SUM(?n) AS ?x) WHERE { ?s <name> ?n }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("non-numeric"), "{err}");
    }

    #[test]
    fn min_max_lexical_for_strings() {
        let s = run(
            "SELECT (MIN(?n) AS ?lo) (MAX(?n) AS ?hi) WHERE { ?s <name> ?n }",
        );
        assert_eq!(s.rows[0][0], Some(Term::lit("Lead")));
        assert_eq!(s.rows[0][1], Some(Term::lit("Mercury")));
    }

    // ---- MINUS / VALUES -----------------------------------------------------

    #[test]
    fn minus_removes_compatible_solutions() {
        let s = run(
            "SELECT ?s WHERE { ?s <dangerLevel> ?d . \
             MINUS { ?s <isA> <HazardousWaste> } } ORDER BY ?s",
        );
        // Hg and Pb are hazardous → removed; As and Cu remain.
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["As", "Cu"]);
    }

    #[test]
    fn minus_with_disjoint_domain_keeps_everything() {
        // The right side binds only ?x, sharing no variable with the left:
        // nothing is removed (SPARQL 1.1 semantics).
        let s = run(
            "SELECT ?s WHERE { ?s <dangerLevel> ?d . MINUS { ?x <isA> <HazardousWaste> } }",
        );
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn values_single_var_restricts() {
        let s = run(
            "SELECT ?s ?d WHERE { VALUES ?s { <Hg> <Cu> } ?s <dangerLevel> ?d } ORDER BY ?s",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[0][0], Some(Term::iri("Cu")));
    }

    #[test]
    fn values_multi_var_with_undef() {
        let s = run(
            "SELECT ?s ?d WHERE { ?s <dangerLevel> ?d . \
             VALUES (?s ?d) { (<Hg> \"5\") (<Pb> UNDEF) } } ORDER BY ?s",
        );
        // (Hg, 5) matches exactly; (Pb, UNDEF) leaves ?d free → Pb/4.
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows[1][0], Some(Term::iri("Pb")));
        assert_eq!(s.rows[1][1], Some(Term::lit("4")));
    }

    #[test]
    fn values_with_unseen_term_matches_nothing_downstream() {
        let s = run(
            "SELECT ?s ?d WHERE { VALUES ?s { <Unobtainium> } ?s <dangerLevel> ?d }",
        );
        assert!(s.is_empty());
    }

    // ---- structured property paths -------------------------------------------

    #[test]
    fn sequence_path_composes_edges() {
        let store = store();
        // Hg occursWith As; As dangerLevel 5 → Hg (occursWith/dangerLevel) 5.
        let s = query(
            &store,
            &["kb"],
            "SELECT ?x ?d WHERE { ?x <occursWith>/<dangerLevel> ?d }",
        )
        .unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Hg")));
        assert_eq!(s.rows[0][1], Some(Term::lit("5")));
    }

    #[test]
    fn alternative_path_unions_edges() {
        let s = run("SELECT ?x ?v WHERE { ?x <name>|<dangerLevel> ?v }");
        assert_eq!(s.len(), 6); // 2 names + 4 danger levels
    }

    #[test]
    fn inverse_path_flips_direction() {
        let s = run("SELECT ?x WHERE { <As> ^<occursWith> ?x }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0], Some(Term::iri("Hg")));
    }

    #[test]
    fn nested_path_closure_over_alternative() {
        let store = TripleStore::new();
        store.insert("kb", &t("A", "p", Term::iri("B")));
        store.insert("kb", &t("B", "q", Term::iri("C")));
        store.insert("kb", &t("C", "p", Term::iri("D")));
        let s = query(
            &store,
            &["kb"],
            "SELECT ?x WHERE { <A> (<p>|<q>)+ ?x } ORDER BY ?x",
        )
        .unwrap();
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["B", "C", "D"]);
    }

    #[test]
    fn inverse_sequence_roundtrip() {
        let store = hierarchy_store();
        // subClassOf followed by its inverse returns to (any sibling of) the
        // start — HgS and PbS both sit under HeavyMetalOre.
        let s = query(
            &store,
            &["kb"],
            "SELECT ?x WHERE { <HgS> <subClassOf>/^<subClassOf> ?x } ORDER BY ?x",
        )
        .unwrap();
        let names: Vec<String> = s
            .rows
            .iter()
            .map(|r| r[0].clone().unwrap().lexical_form().to_string())
            .collect();
        assert_eq!(names, vec!["HgS", "PbS"]);
    }

    #[test]
    fn path_in_construct_pattern() {
        let store = hierarchy_store();
        let QueryOutcome::Graph(ts) = query_any(
            &store,
            &["kb"],
            "CONSTRUCT { ?x <ancestor> ?y } WHERE { ?x <subClassOf>+ ?y }",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(ts.len(), 3 + 2 + 1 + 3); // HgS→3, HeavyMetalOre→2, MetalOre→1, PbS→3
    }
}
