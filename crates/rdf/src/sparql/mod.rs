//! SPARQL subset: parser, evaluator, and prepared queries.

pub mod ast;
pub mod eval;
pub mod lint;
pub mod parser;
pub mod prepared;

pub use prepared::{prepare, Prepared, PreparedCache, SolutionCursor, SparqlParams};
