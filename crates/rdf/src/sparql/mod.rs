//! SPARQL subset: parser and evaluator.

pub mod ast;
pub mod eval;
pub mod parser;
