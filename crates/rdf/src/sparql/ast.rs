//! SPARQL abstract syntax / algebra.

use std::fmt;

use crate::term::Term;

/// Any parsed SPARQL query: SELECT, ASK or CONSTRUCT.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedQuery {
    Select(Query),
    /// `ASK WHERE { ... }` — does at least one solution exist?
    Ask(GraphPattern),
    /// `CONSTRUCT { template } WHERE { ... }` — instantiate the template
    /// once per solution.
    Construct { template: Vec<PatternTriple>, pattern: GraphPattern },
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    /// Projected plain variable names (without `?`); empty means `SELECT *`
    /// unless `projections` carries aggregates.
    pub variables: Vec<String>,
    /// Full projection list in written order (plain variables interleaved
    /// with aggregate expressions). Empty together with `variables` means
    /// `SELECT *`.
    pub projections: Vec<Projection>,
    pub pattern: GraphPattern,
    /// `GROUP BY` variables; with aggregates but no GROUP BY the whole
    /// solution set is one group.
    pub group_by: Vec<String>,
    /// `HAVING(expr)` over group keys and aggregate aliases.
    pub having: Option<SparqlExpr>,
    pub order_by: Vec<OrderCond>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

impl Query {
    /// Whether this query aggregates (has aggregate projections or a
    /// GROUP BY clause).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self.projections.iter().any(|p| matches!(p, Projection::Agg(_)))
    }

    /// Parameter names mentioned anywhere in the query, in first-
    /// appearance order (synthesized `#<n>` names are positional slots).
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.pattern.collect_params(&mut out);
        if let Some(h) = &self.having {
            h.collect_params(&mut out);
        }
        out
    }
}

/// One projected output column.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// Plain variable.
    Var(String),
    /// `(FUNC(?v) AS ?alias)`.
    Agg(AggProj),
}

/// An aggregate projection: `(COUNT(DISTINCT ?x) AS ?n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggProj {
    pub func: AggFunc,
    /// Aggregated variable; `None` is `COUNT(*)`.
    pub var: Option<String>,
    pub distinct: bool,
    pub alias: String,
}

/// SPARQL 1.1 aggregate functions (the numeric ones treat non-numeric
/// bindings as evaluation errors, matching the spec's type errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    /// An arbitrary element of the group (first-seen here, deterministic).
    Sample,
}

impl AggFunc {
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            "AVG" => AggFunc::Avg,
            "SAMPLE" => AggFunc::Sample,
            _ => return None,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderCond {
    pub variable: String,
    pub ascending: bool,
}

/// Graph patterns (a pragmatic subset of the SPARQL algebra).
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPattern {
    /// Basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<PatternTriple>),
    /// Inner join of two patterns (adjacent group patterns).
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// `left OPTIONAL { right }`.
    Optional(Box<GraphPattern>, Box<GraphPattern>),
    /// `{ left } UNION { right }`.
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// `pattern FILTER(expr)`.
    Filter(Box<GraphPattern>, SparqlExpr),
    /// `left MINUS { right }`: solutions of `left` that are incompatible
    /// with every solution of `right` (solutions sharing no bound variable
    /// with any right-solution are kept, per the SPARQL 1.1 definition).
    Minus(Box<GraphPattern>, Box<GraphPattern>),
    /// Inline data: `VALUES ?v { ... }` / `VALUES (?a ?b) { (..) (..) }`.
    /// `None` entries are `UNDEF`.
    Values {
        vars: Vec<String>,
        rows: Vec<Vec<Option<Term>>>,
    },
}

impl GraphPattern {
    /// Collect every variable mentioned anywhere in the pattern, in first-
    /// appearance order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        let mut push = |v: &str| {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        };
        match self {
            GraphPattern::Bgp(triples) => {
                for t in triples {
                    for part in [&t.subject, &t.predicate, &t.object] {
                        if let PatternTerm::Var(v) = part {
                            push(v);
                        }
                    }
                }
            }
            GraphPattern::Join(a, b)
            | GraphPattern::Optional(a, b)
            | GraphPattern::Union(a, b)
            | GraphPattern::Minus(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            GraphPattern::Filter(p, e) => {
                p.collect_vars(out);
                e.collect_vars(out);
            }
            GraphPattern::Values { vars, .. } => {
                for v in vars {
                    push(v);
                }
            }
        }
    }

    /// Collect parameter names in first-appearance order.
    pub(crate) fn collect_params(&self, out: &mut Vec<String>) {
        let mut push = |p: &str| {
            if !out.iter().any(|x| x == p) {
                out.push(p.to_string());
            }
        };
        match self {
            GraphPattern::Bgp(triples) => {
                for t in triples {
                    for part in [&t.subject, &t.predicate, &t.object] {
                        if let PatternTerm::Param(p) = part {
                            push(p);
                        }
                    }
                }
            }
            GraphPattern::Join(a, b)
            | GraphPattern::Optional(a, b)
            | GraphPattern::Union(a, b)
            | GraphPattern::Minus(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            GraphPattern::Filter(p, e) => {
                p.collect_params(out);
                e.collect_params(out);
            }
            GraphPattern::Values { .. } => {}
        }
    }
}

/// A triple pattern position: variable, constant term, or an unbound
/// parameter placeholder.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternTerm {
    Var(String),
    Const(Term),
    /// `$name` (named) or bare `?` (positional, synthesized `#<n>` name) —
    /// a prepared-query parameter awaiting a constant term at execute
    /// time. Note the deliberate divergence from the SPARQL spec (where
    /// `$x` and `?x` are the same variable): this engine reserves the `$`
    /// sigil for parameters, uniformly with the SQL and SESQL grammars.
    Param(String),
}

impl PatternTerm {
    pub fn var(name: impl Into<String>) -> Self {
        PatternTerm::Var(name.into())
    }
}

/// Path modifier on a predicate: plain edge, transitive (`+`), or
/// reflexive-transitive (`*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PathMod {
    #[default]
    One,
    /// `p+` — one or more edges.
    OneOrMore,
    /// `p*` — zero or more edges (zero-length only over nodes touching a
    /// `p` edge).
    ZeroOrMore,
}

/// A triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternTriple {
    pub subject: PatternTerm,
    pub predicate: PatternTerm,
    pub object: PatternTerm,
    /// Path modifier; only meaningful when the predicate is a constant.
    pub path: PathMod,
    /// A structured property path (`p1/p2`, `p1|p2`, `^p`, nested
    /// closures). When set, `predicate`/`path` are ignored for matching
    /// (the predicate holds a rendering of the path for display purposes).
    pub complex: Option<PropertyPath>,
}

/// SPARQL 1.1 property-path algebra over constant predicates.
#[derive(Debug, Clone, PartialEq)]
pub enum PropertyPath {
    /// A plain predicate IRI.
    Pred(Term),
    /// `^path` — inverted edges.
    Inverse(Box<PropertyPath>),
    /// `p1/p2/...` — edge composition.
    Sequence(Vec<PropertyPath>),
    /// `p1|p2|...` — union of edge sets.
    Alternative(Vec<PropertyPath>),
    /// `path+` / `path*`.
    Closure(Box<PropertyPath>, PathMod),
}

impl fmt::Display for PropertyPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyPath::Pred(t) => write!(f, "{t}"),
            PropertyPath::Inverse(p) => write!(f, "^{p}"),
            PropertyPath::Sequence(ps) => {
                let items: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", items.join("/"))
            }
            PropertyPath::Alternative(ps) => {
                let items: Vec<String> = ps.iter().map(|p| p.to_string()).collect();
                write!(f, "({})", items.join("|"))
            }
            PropertyPath::Closure(p, PathMod::OneOrMore) => write!(f, "{p}+"),
            PropertyPath::Closure(p, PathMod::ZeroOrMore) => write!(f, "{p}*"),
            PropertyPath::Closure(p, PathMod::One) => write!(f, "{p}"),
        }
    }
}

impl PatternTriple {
    pub fn new(subject: PatternTerm, predicate: PatternTerm, object: PatternTerm) -> Self {
        PatternTriple { subject, predicate, object, path: PathMod::One, complex: None }
    }

    pub fn with_path(mut self, path: PathMod) -> Self {
        self.path = path;
        self
    }

    /// Attach a structured property path; the plain predicate slot keeps a
    /// placeholder constant for display.
    pub fn with_complex_path(mut self, path: PropertyPath) -> Self {
        self.predicate = PatternTerm::Const(Term::iri(path.to_string()));
        self.complex = Some(path);
        self
    }

    /// Number of constant positions (used for join-order heuristics).
    pub fn constant_count(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .iter()
            .filter(|t| matches!(t, PatternTerm::Const(_)))
            .count()
    }
}

/// FILTER expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum SparqlExpr {
    Var(String),
    Const(Term),
    /// A prepared-query parameter (see [`PatternTerm::Param`]).
    Param(String),
    Cmp(Box<SparqlExpr>, CmpOp, Box<SparqlExpr>),
    And(Box<SparqlExpr>, Box<SparqlExpr>),
    Or(Box<SparqlExpr>, Box<SparqlExpr>),
    Not(Box<SparqlExpr>),
    /// `BOUND(?v)`
    Bound(String),
    /// `REGEX(expr, "pattern")` — substring/anchor subset, no full regex.
    Regex(Box<SparqlExpr>, String),
    /// `STR(expr)` — lexical form as a plain literal.
    Str(Box<SparqlExpr>),
}

impl SparqlExpr {
    pub fn collect_vars(&self, out: &mut Vec<String>) {
        let mut push = |v: &str| {
            if !out.iter().any(|x| x == v) {
                out.push(v.to_string());
            }
        };
        match self {
            SparqlExpr::Var(v) | SparqlExpr::Bound(v) => push(v),
            SparqlExpr::Const(_) | SparqlExpr::Param(_) => {}
            SparqlExpr::Cmp(a, _, b) | SparqlExpr::And(a, b) | SparqlExpr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            SparqlExpr::Not(e) | SparqlExpr::Regex(e, _) | SparqlExpr::Str(e) => {
                e.collect_vars(out)
            }
        }
    }

    pub(crate) fn collect_params(&self, out: &mut Vec<String>) {
        match self {
            SparqlExpr::Param(p) => {
                if !out.iter().any(|x| x == p) {
                    out.push(p.clone());
                }
            }
            SparqlExpr::Var(_) | SparqlExpr::Const(_) | SparqlExpr::Bound(_) => {}
            SparqlExpr::Cmp(a, _, b) | SparqlExpr::And(a, b) | SparqlExpr::Or(a, b) => {
                a.collect_params(out);
                b.collect_params(out);
            }
            SparqlExpr::Not(e) | SparqlExpr::Regex(e, _) | SparqlExpr::Str(e) => {
                e.collect_params(out)
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "!=",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_collection_dedupes_in_order() {
        let bgp = GraphPattern::Bgp(vec![
            PatternTriple::new(
                PatternTerm::var("s"),
                PatternTerm::Const(Term::iri("p")),
                PatternTerm::var("o"),
            ),
            PatternTriple::new(
                PatternTerm::var("o"),
                PatternTerm::Const(Term::iri("q")),
                PatternTerm::var("z"),
            ),
        ]);
        assert_eq!(bgp.variables(), vec!["s", "o", "z"]);
    }

    #[test]
    fn filter_vars_are_collected() {
        let p = GraphPattern::Filter(
            Box::new(GraphPattern::Bgp(vec![])),
            SparqlExpr::Cmp(
                Box::new(SparqlExpr::Var("d".into())),
                CmpOp::GtEq,
                Box::new(SparqlExpr::Const(Term::lit("3"))),
            ),
        );
        assert_eq!(p.variables(), vec!["d"]);
    }

    #[test]
    fn constant_count() {
        let t = PatternTriple::new(
            PatternTerm::var("s"),
            PatternTerm::Const(Term::iri("p")),
            PatternTerm::Const(Term::lit("o")),
        );
        assert_eq!(t.constant_count(), 2);
    }
}
