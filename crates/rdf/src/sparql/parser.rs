// srclint: allow(R002): most hits are the parser's own Result-returning expect(&Tok) combinator; the rest are in-bounds char reads from the same scan
//! SPARQL parser (lexer + recursive descent in one module).

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::term::Term;

use super::ast::*;

/// Parse a SPARQL SELECT query.
pub fn parse_query(src: &str) -> Result<Query> {
    match parse_any(src)? {
        ParsedQuery::Select(q) => Ok(q),
        _ => Err(Error::parse("expected a SELECT query", 0)),
    }
}

/// Parse any SPARQL query form (SELECT / ASK / CONSTRUCT).
pub fn parse_any(src: &str) -> Result<ParsedQuery> {
    let mut p = Parser::new(src)?;
    let q = p.any_query()?;
    p.expect_eof()?;
    Ok(q)
}

// ---- lexer ----------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Bare word (keyword or prefixed-name fragment before `:`).
    Word(String),
    /// `?name` variable.
    Var(String),
    /// `$name` parameter, or bare `?` (positional, synthesized `#<n>`
    /// name). This engine reserves `$` for prepared-query parameters —
    /// a deliberate divergence from the SPARQL spec's `$x ≡ ?x` — so the
    /// placeholder grammar is uniform with SQL and SESQL.
    Param(String),
    /// `<iri>`
    Iri(String),
    /// String literal.
    Str(String),
    /// Numeric literal, kept in lexical form.
    Num(String),
    /// `prefix:local`
    Prefixed(String, String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Comma,
    Semicolon,
    Star,
    /// `+` path modifier.
    Plus,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    AndAnd,
    OrOr,
    Bang,
    /// `^^` datatype marker.
    DtMarker,
    /// `/` path sequence operator.
    Slash,
    /// `|` path alternative operator.
    Pipe,
    /// `^` path inverse operator.
    Caret,
    Eof,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let mut positional = 0usize;
    while i < b.len() {
        let c = b[i];
        let start = i;
        match c {
            _ if c.is_ascii_whitespace() => {
                i += 1;
                continue;
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'{' => {
                out.push((Tok::LBrace, start));
                i += 1;
            }
            b'}' => {
                out.push((Tok::RBrace, start));
                i += 1;
            }
            b'(' => {
                out.push((Tok::LParen, start));
                i += 1;
            }
            b')' => {
                out.push((Tok::RParen, start));
                i += 1;
            }
            b'.' => {
                out.push((Tok::Dot, start));
                i += 1;
            }
            b',' => {
                out.push((Tok::Comma, start));
                i += 1;
            }
            b';' => {
                out.push((Tok::Semicolon, start));
                i += 1;
            }
            b'*' => {
                out.push((Tok::Star, start));
                i += 1;
            }
            b'=' => {
                out.push((Tok::Eq, start));
                i += 1;
            }
            b'!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::NotEq, start));
                    i += 2;
                } else {
                    out.push((Tok::Bang, start));
                    i += 1;
                }
            }
            b'<' => {
                // `<=` or IRI
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::LtEq, start));
                    i += 2;
                } else {
                    // IRI iff it closes with '>' before whitespace.
                    let mut j = i + 1;
                    let mut iri = String::new();
                    let mut is_iri = false;
                    while j < b.len() {
                        if b[j] == b'>' {
                            is_iri = true;
                            break;
                        }
                        if b[j].is_ascii_whitespace() {
                            break;
                        }
                        iri.push(b[j] as char);
                        j += 1;
                    }
                    if is_iri {
                        out.push((Tok::Iri(iri), start));
                        i = j + 1;
                    } else {
                        out.push((Tok::Lt, start));
                        i += 1;
                    }
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::GtEq, start));
                    i += 2;
                } else {
                    out.push((Tok::Gt, start));
                    i += 1;
                }
            }
            b'&' => {
                if b.get(i + 1) == Some(&b'&') {
                    out.push((Tok::AndAnd, start));
                    i += 2;
                } else {
                    return Err(Error::parse("unexpected `&`", start));
                }
            }
            b'|' => {
                if b.get(i + 1) == Some(&b'|') {
                    out.push((Tok::OrOr, start));
                    i += 2;
                } else {
                    out.push((Tok::Pipe, start));
                    i += 1;
                }
            }
            b'^' => {
                if b.get(i + 1) == Some(&b'^') {
                    out.push((Tok::DtMarker, start));
                    i += 2;
                } else {
                    out.push((Tok::Caret, start));
                    i += 1;
                }
            }
            b'/' => {
                out.push((Tok::Slash, start));
                i += 1;
            }
            b'?' | b'$' => {
                i += 1;
                let s = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                if s == i {
                    if c == b'?' {
                        // Bare `?`: a positional parameter slot.
                        out.push((Tok::Param(format!("#{positional}")), start));
                        positional += 1;
                    } else {
                        return Err(Error::parse("empty parameter name after `$`", start));
                    }
                } else if c == b'$' {
                    out.push((Tok::Param(src[s..i].to_string()), start));
                } else {
                    out.push((Tok::Var(src[s..i].to_string()), start));
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            let esc = b.get(i + 1).copied();
                            match esc {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                _ => return Err(Error::parse("bad escape", i)),
                            }
                            i += 2;
                        }
                        Some(_) => {
                            let ch = src[i..].chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                        None => return Err(Error::parse("unterminated string", start)),
                    }
                }
                out.push((Tok::Str(s), start));
            }
            b'0'..=b'9' | b'-' | b'+' => {
                // `+` not followed by a digit is the path modifier.
                if c == b'+' && !b.get(i + 1).map(|d| d.is_ascii_digit()).unwrap_or(false) {
                    out.push((Tok::Plus, start));
                    i += 1;
                    continue;
                }
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    // A dot followed by non-digit ends the number (it's a
                    // triple terminator).
                    if b[i] == b'.'
                        && !b.get(i + 1).map(|d| d.is_ascii_digit()).unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                if text == "-" {
                    return Err(Error::parse("dangling sign", start));
                }
                out.push((Tok::Num(text.to_string()), start));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'-')
                {
                    i += 1;
                }
                let word = src[start..i].to_string();
                // prefixed name?
                if b.get(i) == Some(&b':') {
                    i += 1;
                    let s = i;
                    while i < b.len()
                        && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'-')
                    {
                        i += 1;
                    }
                    out.push((Tok::Prefixed(word, src[s..i].to_string()), start));
                } else {
                    out.push((Tok::Word(word), start));
                }
            }
            b':' => {
                // default-prefix name `:local`
                i += 1;
                let s = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'-')
                {
                    i += 1;
                }
                out.push((Tok::Prefixed(String::new(), src[s..i].to_string()), start));
            }
            other => {
                return Err(Error::parse(
                    format!("unexpected character `{}`", other as char),
                    start,
                ))
            }
        }
    }
    out.push((Tok::Eof, src.len()));
    Ok(out)
}

// ---- parser ---------------------------------------------------------------

/// The verb position of a triple pattern.
enum Verb {
    /// Plain predicate (possibly a variable) with an optional closure.
    Simple(PatternTerm, PathMod),
    /// Structured property path.
    Path(PropertyPath),
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn new(src: &str) -> Result<Self> {
        Ok(Parser { toks: lex(src)?, pos: 0, prefixes: HashMap::new() })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].1
    }

    fn advance(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected {t:?}, found {:?}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Tok::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.advance();
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::parse(
                format!("expected `{}`, found {:?}", kw.to_uppercase(), self.peek()),
                self.offset(),
            ))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(Error::parse(
                format!("unexpected trailing input {:?}", self.peek()),
                self.offset(),
            ))
        }
    }

    fn any_query(&mut self) -> Result<ParsedQuery> {
        self.prefixes_block()?;
        if self.eat_kw("ask") {
            // The WHERE keyword is optional in SPARQL's ASK form.
            self.eat_kw("where");
            let pattern = self.group_graph_pattern()?;
            return Ok(ParsedQuery::Ask(pattern));
        }
        if self.eat_kw("construct") {
            let template = self.construct_template()?;
            self.expect_kw("where")?;
            let pattern = self.group_graph_pattern()?;
            return Ok(ParsedQuery::Construct { template, pattern });
        }
        Ok(ParsedQuery::Select(self.query()?))
    }

    /// The `{ triples }` template of a CONSTRUCT query (no FILTER/OPTIONAL).
    fn construct_template(&mut self) -> Result<Vec<PatternTriple>> {
        self.expect(&Tok::LBrace)?;
        let mut out = Vec::new();
        while !self.eat(&Tok::RBrace) {
            let subject = self.pattern_term()?;
            loop {
                let predicate = self.pattern_term()?;
                loop {
                    let object = self.pattern_term()?;
                    out.push(PatternTriple::new(
                        subject.clone(),
                        predicate.clone(),
                        object,
                    ));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                if !self.eat(&Tok::Semicolon) {
                    break;
                }
                if matches!(self.peek(), Tok::Dot | Tok::RBrace) {
                    break;
                }
            }
            self.eat(&Tok::Dot);
        }
        Ok(out)
    }

    fn prefixes_block(&mut self) -> Result<()> {
        while self.eat_kw("prefix") {
            let (name, iri) = match self.advance() {
                Tok::Prefixed(p, local) if local.is_empty() => {
                    match self.advance() {
                        Tok::Iri(i) => (p, i),
                        other => {
                            return Err(Error::parse(
                                format!("expected IRI after PREFIX, found {other:?}"),
                                self.offset(),
                            ))
                        }
                    }
                }
                other => {
                    return Err(Error::parse(
                        format!("expected `name:` after PREFIX, found {other:?}"),
                        self.offset(),
                    ))
                }
            };
            self.prefixes.insert(name, iri);
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Query> {
        // Accept (and record) a PREFIX block here too so parse_query
        // remains usable standalone.
        self.prefixes_block()?;
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut variables = Vec::new();
        let mut projections = Vec::new();
        if !self.eat(&Tok::Star) {
            loop {
                match self.peek().clone() {
                    Tok::Var(v) => {
                        self.advance();
                        variables.push(v.clone());
                        projections.push(Projection::Var(v));
                    }
                    Tok::LParen => {
                        self.advance();
                        projections.push(Projection::Agg(self.agg_projection()?));
                    }
                    _ => break,
                }
            }
            if projections.is_empty() {
                return Err(Error::parse("SELECT needs variables or `*`", self.offset()));
            }
        }
        self.expect_kw("where")?;
        let pattern = self.group_graph_pattern()?;

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            while let Tok::Var(v) = self.peek().clone() {
                self.advance();
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(Error::parse("GROUP BY needs at least one variable", self.offset()));
            }
        }
        let having = if self.eat_kw("having") {
            self.expect(&Tok::LParen)?;
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            Some(e)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let (variable, ascending) = if self.eat_kw("desc") {
                    self.expect(&Tok::LParen)?;
                    let v = self.variable()?;
                    self.expect(&Tok::RParen)?;
                    (v, false)
                } else if self.eat_kw("asc") {
                    self.expect(&Tok::LParen)?;
                    let v = self.variable()?;
                    self.expect(&Tok::RParen)?;
                    (v, true)
                } else if matches!(self.peek(), Tok::Var(_)) {
                    (self.variable()?, true)
                } else {
                    break;
                };
                order_by.push(OrderCond { variable, ascending });
            }
            if order_by.is_empty() {
                return Err(Error::parse("ORDER BY needs at least one key", self.offset()));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_kw("limit") {
                limit = Some(self.number_usize()?);
            } else if self.eat_kw("offset") {
                offset = Some(self.number_usize()?);
            } else {
                break;
            }
        }

        let q = Query {
            distinct,
            variables,
            projections,
            pattern,
            group_by,
            having,
            order_by,
            limit,
            offset,
        };
        if q.having.is_some() && !q.is_aggregate() {
            return Err(Error::parse("HAVING requires GROUP BY or aggregates", self.offset()));
        }
        Ok(q)
    }

    /// Parse the inside of an aggregate projection after its opening paren:
    /// `FUNC([DISTINCT] ?v | *) AS ?alias)`.
    fn agg_projection(&mut self) -> Result<AggProj> {
        let func = match self.advance() {
            Tok::Word(w) => AggFunc::parse(&w).ok_or_else(|| {
                Error::parse(format!("unknown aggregate `{w}`"), self.offset())
            })?,
            other => {
                return Err(Error::parse(
                    format!("expected aggregate function, found {other:?}"),
                    self.offset(),
                ))
            }
        };
        self.expect(&Tok::LParen)?;
        let distinct = self.eat_kw("distinct");
        let var = if self.eat(&Tok::Star) {
            if func != AggFunc::Count {
                return Err(Error::parse("`*` is only valid in COUNT", self.offset()));
            }
            None
        } else {
            Some(self.variable()?)
        };
        self.expect(&Tok::RParen)?;
        self.expect_kw("as")?;
        let alias = self.variable()?;
        self.expect(&Tok::RParen)?;
        Ok(AggProj { func, var, distinct, alias })
    }

    fn variable(&mut self) -> Result<String> {
        match self.advance() {
            Tok::Var(v) => Ok(v),
            other => Err(Error::parse(
                format!("expected variable, found {other:?}"),
                self.offset(),
            )),
        }
    }

    fn number_usize(&mut self) -> Result<usize> {
        match self.advance() {
            Tok::Num(n) => n
                .parse()
                .map_err(|_| Error::parse(format!("bad number `{n}`"), self.offset())),
            other => Err(Error::parse(
                format!("expected number, found {other:?}"),
                self.offset(),
            )),
        }
    }

    fn group_graph_pattern(&mut self) -> Result<GraphPattern> {
        self.expect(&Tok::LBrace)?;
        let mut current: Option<GraphPattern> = None;
        let mut filters: Vec<SparqlExpr> = Vec::new();
        let mut bgp: Vec<PatternTriple> = Vec::new();

        fn flush(current: &mut Option<GraphPattern>, bgp: &mut Vec<PatternTriple>) {
            if !bgp.is_empty() {
                let b = GraphPattern::Bgp(std::mem::take(bgp));
                *current = Some(match current.take() {
                    None => b,
                    Some(c) => GraphPattern::Join(Box::new(c), Box::new(b)),
                });
            }
        }

        loop {
            if self.eat(&Tok::RBrace) {
                break;
            }
            if self.eat_kw("filter") {
                self.expect(&Tok::LParen)?;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                filters.push(e);
                self.eat(&Tok::Dot);
                continue;
            }
            if self.eat_kw("optional") {
                flush(&mut current, &mut bgp);
                let inner = self.group_graph_pattern()?;
                let left = current.take().unwrap_or(GraphPattern::Bgp(vec![]));
                current = Some(GraphPattern::Optional(Box::new(left), Box::new(inner)));
                self.eat(&Tok::Dot);
                continue;
            }
            if self.eat_kw("minus") {
                flush(&mut current, &mut bgp);
                let inner = self.group_graph_pattern()?;
                let left = current.take().unwrap_or(GraphPattern::Bgp(vec![]));
                current = Some(GraphPattern::Minus(Box::new(left), Box::new(inner)));
                self.eat(&Tok::Dot);
                continue;
            }
            if self.eat_kw("values") {
                flush(&mut current, &mut bgp);
                let values = self.values_block()?;
                current = Some(match current.take() {
                    None => values,
                    Some(c) => GraphPattern::Join(Box::new(c), Box::new(values)),
                });
                self.eat(&Tok::Dot);
                continue;
            }
            if matches!(self.peek(), Tok::LBrace) {
                flush(&mut current, &mut bgp);
                let mut grp = self.group_graph_pattern()?;
                while self.eat_kw("union") {
                    let rhs = self.group_graph_pattern()?;
                    grp = GraphPattern::Union(Box::new(grp), Box::new(rhs));
                }
                current = Some(match current.take() {
                    None => grp,
                    Some(c) => GraphPattern::Join(Box::new(c), Box::new(grp)),
                });
                self.eat(&Tok::Dot);
                continue;
            }
            // triples block: subject (path object (',' object)*)
            // (';' path object ...)* '.'
            let subject = self.pattern_term()?;
            loop {
                let verb = self.path_or_predicate()?;
                loop {
                    let object = self.pattern_term()?;
                    let triple = match &verb {
                        Verb::Simple(predicate, path) => {
                            PatternTriple::new(subject.clone(), predicate.clone(), object)
                                .with_path(*path)
                        }
                        Verb::Path(p) => {
                            PatternTriple::new(
                                subject.clone(),
                                PatternTerm::Const(Term::iri("")),
                                object,
                            )
                            .with_complex_path(p.clone())
                        }
                    };
                    bgp.push(triple);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                if !self.eat(&Tok::Semicolon) {
                    break;
                }
                // allow trailing `;` before `.`
                if matches!(self.peek(), Tok::Dot | Tok::RBrace) {
                    break;
                }
            }
            self.eat(&Tok::Dot);
        }

        flush(&mut current, &mut bgp);
        let mut pattern = current.unwrap_or(GraphPattern::Bgp(vec![]));
        for f in filters {
            pattern = GraphPattern::Filter(Box::new(pattern), f);
        }
        Ok(pattern)
    }

    fn resolve_prefixed(&self, prefix: &str, local: &str) -> Result<Term> {
        // Well-known prefixes are built in so queries generated by the
        // SESQL layer need no PREFIX preamble.
        let base = self.prefixes.get(prefix).map(String::as_str).or(match prefix {
            "rdf" => Some("http://www.w3.org/1999/02/22-rdf-syntax-ns#"),
            "rdfs" => Some("http://www.w3.org/2000/01/rdf-schema#"),
            "xsd" => Some("http://www.w3.org/2001/XMLSchema#"),
            "smg" => Some(crate::schema::SMG_NS),
            _ => None,
        });
        match base {
            Some(b) => Ok(Term::iri(format!("{b}{local}"))),
            None => Err(Error::parse(
                format!("unknown prefix `{prefix}:`"),
                self.offset(),
            )),
        }
    }

    /// Parse the verb (predicate) position of a triple: either a simple
    /// predicate (variable or constant, with an optional `+`/`*` closure)
    /// or a structured property path.
    fn path_or_predicate(&mut self) -> Result<Verb> {
        if matches!(self.peek(), Tok::Caret | Tok::LParen) {
            return Ok(Verb::Path(self.path_alternative()?));
        }
        let first = self.pattern_term()?;
        let path = if self.eat(&Tok::Plus) {
            PathMod::OneOrMore
        } else if self.eat(&Tok::Star) {
            PathMod::ZeroOrMore
        } else {
            PathMod::One
        };
        if path != PathMod::One && !matches!(first, PatternTerm::Const(_)) {
            return Err(Error::parse(
                "path modifiers require a constant predicate",
                self.offset(),
            ));
        }
        if matches!(self.peek(), Tok::Slash | Tok::Pipe) {
            let PatternTerm::Const(t) = first else {
                return Err(Error::parse(
                    "property paths require constant predicates",
                    self.offset(),
                ));
            };
            let mut head = PropertyPath::Pred(t);
            if path != PathMod::One {
                head = PropertyPath::Closure(Box::new(head), path);
            }
            let mut seq = vec![head];
            while self.eat(&Tok::Slash) {
                seq.push(self.path_elt_or_inverse()?);
            }
            let mut p = if seq.len() == 1 {
                seq.pop().expect("non-empty")
            } else {
                PropertyPath::Sequence(seq)
            };
            if *self.peek() == Tok::Pipe {
                let mut alts = vec![p];
                while self.eat(&Tok::Pipe) {
                    alts.push(self.path_sequence()?);
                }
                p = PropertyPath::Alternative(alts);
            }
            return Ok(Verb::Path(p));
        }
        Ok(Verb::Simple(first, path))
    }

    fn path_alternative(&mut self) -> Result<PropertyPath> {
        let mut alts = vec![self.path_sequence()?];
        while self.eat(&Tok::Pipe) {
            alts.push(self.path_sequence()?);
        }
        Ok(if alts.len() == 1 {
            alts.pop().expect("non-empty")
        } else {
            PropertyPath::Alternative(alts)
        })
    }

    fn path_sequence(&mut self) -> Result<PropertyPath> {
        let mut seq = vec![self.path_elt_or_inverse()?];
        while self.eat(&Tok::Slash) {
            seq.push(self.path_elt_or_inverse()?);
        }
        Ok(if seq.len() == 1 {
            seq.pop().expect("non-empty")
        } else {
            PropertyPath::Sequence(seq)
        })
    }

    fn path_elt_or_inverse(&mut self) -> Result<PropertyPath> {
        if self.eat(&Tok::Caret) {
            return Ok(PropertyPath::Inverse(Box::new(self.path_elt()?)));
        }
        self.path_elt()
    }

    fn path_elt(&mut self) -> Result<PropertyPath> {
        let primary = if self.eat(&Tok::LParen) {
            let p = self.path_alternative()?;
            self.expect(&Tok::RParen)?;
            p
        } else {
            match self.pattern_term()? {
                PatternTerm::Const(t @ Term::Iri(_)) => PropertyPath::Pred(t),
                other => {
                    return Err(Error::parse(
                        format!("property paths require IRI predicates, found {other:?}"),
                        self.offset(),
                    ))
                }
            }
        };
        if self.eat(&Tok::Plus) {
            Ok(PropertyPath::Closure(Box::new(primary), PathMod::OneOrMore))
        } else if self.eat(&Tok::Star) {
            Ok(PropertyPath::Closure(Box::new(primary), PathMod::ZeroOrMore))
        } else {
            Ok(primary)
        }
    }

    /// Parse a `VALUES` block after the keyword: `?v { t ... }` or
    /// `(?a ?b) { (t t) ... }` with `UNDEF` for unbound cells.
    fn values_block(&mut self) -> Result<GraphPattern> {
        let mut vars = Vec::new();
        let multi = self.eat(&Tok::LParen);
        if multi {
            while matches!(self.peek(), Tok::Var(_)) {
                vars.push(self.variable()?);
            }
            self.expect(&Tok::RParen)?;
        } else {
            vars.push(self.variable()?);
        }
        if vars.is_empty() {
            return Err(Error::parse("VALUES needs at least one variable", self.offset()));
        }
        self.expect(&Tok::LBrace)?;
        let mut rows = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if multi {
                self.expect(&Tok::LParen)?;
                let mut row = Vec::with_capacity(vars.len());
                for _ in 0..vars.len() {
                    row.push(self.values_term()?);
                }
                self.expect(&Tok::RParen)?;
                rows.push(row);
            } else {
                rows.push(vec![self.values_term()?]);
            }
        }
        Ok(GraphPattern::Values { vars, rows })
    }

    fn values_term(&mut self) -> Result<Option<Term>> {
        if let Tok::Word(w) = self.peek() {
            if w.eq_ignore_ascii_case("undef") {
                self.advance();
                return Ok(None);
            }
        }
        match self.pattern_term()? {
            PatternTerm::Const(t) => Ok(Some(t)),
            PatternTerm::Var(_) | PatternTerm::Param(_) => {
                Err(Error::parse("VALUES data must be constant", self.offset()))
            }
        }
    }

    fn pattern_term(&mut self) -> Result<PatternTerm> {
        match self.advance() {
            Tok::Var(v) => Ok(PatternTerm::Var(v)),
            Tok::Param(p) => Ok(PatternTerm::Param(p)),
            Tok::Iri(i) => Ok(PatternTerm::Const(Term::iri(i))),
            Tok::Str(s) => {
                // optional datatype
                if self.eat(&Tok::DtMarker) {
                    match self.advance() {
                        Tok::Iri(dt) => Ok(PatternTerm::Const(Term::typed_lit(s, dt))),
                        Tok::Prefixed(p, l) => {
                            let t = self.resolve_prefixed(&p, &l)?;
                            let Term::Iri(dt) = t else { unreachable!() };
                            Ok(PatternTerm::Const(Term::typed_lit(s, dt)))
                        }
                        other => Err(Error::parse(
                            format!("expected datatype IRI, found {other:?}"),
                            self.offset(),
                        )),
                    }
                } else {
                    Ok(PatternTerm::Const(Term::lit(s)))
                }
            }
            Tok::Num(n) => Ok(PatternTerm::Const(Term::lit(n))),
            Tok::Prefixed(p, l) => {
                if p.eq_ignore_ascii_case("a") && l.is_empty() {
                    return Ok(PatternTerm::Const(Term::iri(
                        "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                    )));
                }
                Ok(PatternTerm::Const(self.resolve_prefixed(&p, &l)?))
            }
            Tok::Word(w) if w == "a" => Ok(PatternTerm::Const(Term::iri(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            ))),
            other => Err(Error::parse(
                format!("expected a term, found {other:?}"),
                self.offset(),
            )),
        }
    }

    // FILTER expression grammar: or > and > not > cmp > primary
    fn expr(&mut self) -> Result<SparqlExpr> {
        let mut left = self.and_expr()?;
        while self.eat(&Tok::OrOr) {
            let right = self.and_expr()?;
            left = SparqlExpr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<SparqlExpr> {
        let mut left = self.not_expr()?;
        while self.eat(&Tok::AndAnd) {
            let right = self.not_expr()?;
            left = SparqlExpr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<SparqlExpr> {
        if self.eat(&Tok::Bang) {
            let e = self.not_expr()?;
            return Ok(SparqlExpr::Not(Box::new(e)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SparqlExpr> {
        let left = self.primary_expr()?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::NotEq => CmpOp::NotEq,
            Tok::Lt => CmpOp::Lt,
            Tok::LtEq => CmpOp::LtEq,
            Tok::Gt => CmpOp::Gt,
            Tok::GtEq => CmpOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.primary_expr()?;
        Ok(SparqlExpr::Cmp(Box::new(left), op, Box::new(right)))
    }

    fn primary_expr(&mut self) -> Result<SparqlExpr> {
        if self.eat(&Tok::LParen) {
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(e);
        }
        if self.eat_kw("bound") {
            self.expect(&Tok::LParen)?;
            let v = self.variable()?;
            self.expect(&Tok::RParen)?;
            return Ok(SparqlExpr::Bound(v));
        }
        if self.eat_kw("regex") {
            self.expect(&Tok::LParen)?;
            let e = self.expr()?;
            self.expect(&Tok::Comma)?;
            let pat = match self.advance() {
                Tok::Str(s) => s,
                other => {
                    return Err(Error::parse(
                        format!("REGEX pattern must be a string, found {other:?}"),
                        self.offset(),
                    ))
                }
            };
            self.expect(&Tok::RParen)?;
            return Ok(SparqlExpr::Regex(Box::new(e), pat));
        }
        if self.eat_kw("str") {
            self.expect(&Tok::LParen)?;
            let e = self.expr()?;
            self.expect(&Tok::RParen)?;
            return Ok(SparqlExpr::Str(Box::new(e)));
        }
        match self.advance() {
            Tok::Var(v) => Ok(SparqlExpr::Var(v)),
            Tok::Param(p) => Ok(SparqlExpr::Param(p)),
            Tok::Iri(i) => Ok(SparqlExpr::Const(Term::iri(i))),
            Tok::Str(s) => Ok(SparqlExpr::Const(Term::lit(s))),
            Tok::Num(n) => Ok(SparqlExpr::Const(Term::lit(n))),
            Tok::Prefixed(p, l) => Ok(SparqlExpr::Const(self.resolve_prefixed(&p, &l)?)),
            other => Err(Error::parse(
                format!("expected expression, found {other:?}"),
                self.offset(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_bgp() {
        let q = parse_query("SELECT ?s ?o WHERE { ?s <dangerLevel> ?o . }").unwrap();
        assert_eq!(q.variables, vec!["s", "o"]);
        let GraphPattern::Bgp(ts) = &q.pattern else { panic!() };
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].predicate, PatternTerm::Const(Term::iri("dangerLevel")));
    }

    #[test]
    fn select_star_distinct() {
        let q = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o }").unwrap();
        assert!(q.distinct);
        assert!(q.variables.is_empty());
    }

    #[test]
    fn prefixes_and_a_keyword() {
        let q = parse_query(
            "PREFIX ex: <http://ex.org/> \
             SELECT ?x WHERE { ?x a ex:Element . ?x ex:danger \"5\" }",
        )
        .unwrap();
        let GraphPattern::Bgp(ts) = &q.pattern else { panic!() };
        assert_eq!(
            ts[0].predicate,
            PatternTerm::Const(Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"))
        );
        assert_eq!(ts[1].predicate, PatternTerm::Const(Term::iri("http://ex.org/danger")));
    }

    #[test]
    fn builtin_prefixes() {
        let q = parse_query("SELECT ?x WHERE { ?x rdf:type rdfs:Class }").unwrap();
        let GraphPattern::Bgp(ts) = &q.pattern else { panic!() };
        assert!(matches!(
            &ts[0].predicate,
            PatternTerm::Const(Term::Iri(i)) if i.ends_with("#type")
        ));
    }

    #[test]
    fn unknown_prefix_errors() {
        assert!(parse_query("SELECT ?x WHERE { ?x nope:p ?y }").is_err());
    }

    #[test]
    fn filter_with_comparison_and_logic() {
        let q = parse_query(
            "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 3 && ?e != <Hg>) }",
        )
        .unwrap();
        let GraphPattern::Filter(_, e) = &q.pattern else { panic!() };
        assert!(matches!(e, SparqlExpr::And(..)));
    }

    #[test]
    fn optional_and_union() {
        let q = parse_query(
            "SELECT ?s WHERE { ?s <p> ?o . OPTIONAL { ?s <q> ?z } }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Optional(..)));

        let q = parse_query(
            "SELECT ?s WHERE { { ?s <p> ?o } UNION { ?s <q> ?o } }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Union(..)));
    }

    #[test]
    fn predicate_object_lists() {
        let q = parse_query(
            "SELECT ?s WHERE { ?s <p> ?a , ?b ; <q> ?c . }",
        )
        .unwrap();
        let GraphPattern::Bgp(ts) = &q.pattern else { panic!() };
        assert_eq!(ts.len(), 3);
        assert_eq!(ts[0].subject, ts[2].subject);
    }

    #[test]
    fn order_limit_offset() {
        let q = parse_query(
            "SELECT ?s ?d WHERE { ?s <p> ?d } ORDER BY DESC(?d) ?s LIMIT 10 OFFSET 5",
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn typed_literal() {
        let q = parse_query(
            "SELECT ?s WHERE { ?s <p> \"3\"^^xsd:integer }",
        )
        .unwrap();
        let GraphPattern::Bgp(ts) = &q.pattern else { panic!() };
        assert!(matches!(
            &ts[0].object,
            PatternTerm::Const(Term::Literal { datatype: Some(dt), .. })
                if dt.ends_with("integer")
        ));
    }

    #[test]
    fn bound_regex_str() {
        let q = parse_query(
            "SELECT ?s WHERE { ?s <p> ?o . FILTER(BOUND(?o) && REGEX(STR(?o), \"merc\")) }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Filter(..)));
    }

    #[test]
    fn errors() {
        assert!(parse_query("SELECT WHERE { ?s ?p ?o }").is_err());
        assert!(parse_query("SELECT ?s { ?s ?p ?o }").is_err()); // missing WHERE
        assert!(parse_query("SELECT ?s WHERE { ?s ?p }").is_err());
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o ").is_err());
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o } LIMIT x").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        let q = parse_query(
            "# a comment\nSELECT ?s WHERE { ?s ?p ?o } # trailing",
        )
        .unwrap();
        assert_eq!(q.variables, vec!["s"]);
    }

    #[test]
    fn aggregate_projection_parses() {
        let q = parse_query(
            "SELECT ?d (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s <p> ?d } \
             GROUP BY ?d HAVING(?n > 1) ORDER BY ?n LIMIT 5",
        )
        .unwrap();
        assert!(q.is_aggregate());
        assert_eq!(q.projections.len(), 2);
        match &q.projections[1] {
            Projection::Agg(a) => {
                assert_eq!(a.func, AggFunc::Count);
                assert!(a.distinct);
                assert_eq!(a.alias, "n");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.group_by, vec!["d"]);
        assert!(q.having.is_some());
    }

    #[test]
    fn count_star_parses_and_star_elsewhere_rejected() {
        let q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }").unwrap();
        let Projection::Agg(a) = &q.projections[0] else { panic!() };
        assert!(a.var.is_none());
        assert!(parse_query("SELECT (SUM(*) AS ?n) WHERE { ?s ?p ?o }").is_err());
        assert!(parse_query("SELECT (NOPE(?x) AS ?n) WHERE { ?s ?p ?o }").is_err());
        assert!(parse_query("SELECT (COUNT(?x) ?n) WHERE { ?s ?p ?o }").is_err());
    }

    #[test]
    fn having_without_aggregation_rejected() {
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o } HAVING(?s > 1)").is_err());
    }

    #[test]
    fn minus_and_values_parse() {
        let q = parse_query(
            "SELECT ?s WHERE { ?s <p> ?o . MINUS { ?s <q> ?z } }",
        )
        .unwrap();
        assert!(matches!(q.pattern, GraphPattern::Minus(..)));

        let q = parse_query(
            "SELECT ?s WHERE { VALUES ?s { <a> <b> } ?s <p> ?o }",
        )
        .unwrap();
        let vars = q.pattern.variables();
        assert!(vars.contains(&"s".to_string()));

        let q = parse_query(
            "SELECT ?a WHERE { VALUES (?a ?b) { (<x> \"1\") (UNDEF \"2\") } ?a <p> ?b }",
        )
        .unwrap();
        fn find_values(p: &GraphPattern) -> Option<(usize, usize)> {
            match p {
                GraphPattern::Values { vars, rows } => Some((vars.len(), rows.len())),
                GraphPattern::Join(a, b) => find_values(a).or_else(|| find_values(b)),
                _ => None,
            }
        }
        assert_eq!(find_values(&q.pattern), Some((2, 2)));
    }

    #[test]
    fn values_rejects_variables_in_data() {
        assert!(parse_query("SELECT ?s WHERE { VALUES ?s { ?x } }").is_err());
    }

    #[test]
    fn property_path_forms_parse() {
        for src in [
            "SELECT ?x WHERE { ?x <p>/<q> ?y }",
            "SELECT ?x WHERE { ?x <p>|<q> ?y }",
            "SELECT ?x WHERE { ?x ^<p> ?y }",
            "SELECT ?x WHERE { ?x (<p>|<q>)+ ?y }",
            "SELECT ?x WHERE { ?x <p>/^<q> ?y }",
            "SELECT ?x WHERE { ?x <p>+/<q> ?y }",
            "SELECT ?x WHERE { ?x <p>/<q>|<r> ?y }",
        ] {
            let q = parse_query(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let GraphPattern::Bgp(ts) = &q.pattern else { panic!("{src}") };
            assert!(ts[0].complex.is_some(), "{src} should build a complex path");
        }
        // Simple predicates (with or without closure) keep the old shape.
        let q = parse_query("SELECT ?x WHERE { ?x <p>+ ?y }").unwrap();
        let GraphPattern::Bgp(ts) = &q.pattern else { panic!() };
        assert!(ts[0].complex.is_none());
        assert_eq!(ts[0].path, PathMod::OneOrMore);
    }

    #[test]
    fn path_with_variable_element_rejected() {
        assert!(parse_query("SELECT ?x WHERE { ?x <p>/?v ?y }").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x ^?v ?y }").is_err());
    }

    #[test]
    fn negative_number_literal() {
        let q = parse_query("SELECT ?s WHERE { ?s <p> -3.5 }").unwrap();
        let GraphPattern::Bgp(ts) = &q.pattern else { panic!() };
        assert_eq!(ts[0].object, PatternTerm::Const(Term::lit("-3.5")));
    }
}
