//! Semantic lint rules for the SPARQL subset.
//!
//! Mirrors the relational linter's contract: rules are *conservative* —
//! they only fire when the defect is certain from the AST alone, never on
//! "maybe" cases — and they never panic on any parseable query. Codes:
//!
//! * `S001` (warning): a variable is bound in the graph pattern but used
//!   nowhere else — not projected, not filtered, not ordered or grouped
//!   on, and appearing only once in the pattern (so it does not even act
//!   as a join constraint). The binding is dead weight.
//! * `S002` (warning): a projected variable is never bound by the graph
//!   pattern; the output column is unbound in every solution.
//! * `S003` (error): a `FILTER` expression is a constant that evaluates
//!   to false, so the enclosing pattern can never produce solutions.

use std::collections::HashMap;

use crosse_lint::Diagnostic;

use super::ast::{
    AggFunc, GraphPattern, ParsedQuery, PatternTerm, Projection, Query, SparqlExpr,
};
use super::eval::compare_terms;

/// Lint any parsed query form. ASK and CONSTRUCT queries only get the
/// filter checks (`S003`) plus, for CONSTRUCT, template variables that the
/// WHERE pattern never binds (`S002`).
pub fn lint_parsed(query: &ParsedQuery, source: &str) -> Vec<Diagnostic> {
    match query {
        ParsedQuery::Select(q) => lint_query(q, source),
        ParsedQuery::Ask(pattern) => lint_filters(pattern, source),
        ParsedQuery::Construct { template, pattern } => {
            let mut out = lint_filters(pattern, source);
            let bound = pattern.variables();
            let mut seen: Vec<&str> = Vec::new();
            for t in template {
                for part in [&t.subject, &t.predicate, &t.object] {
                    if let PatternTerm::Var(v) = part {
                        if !bound.iter().any(|b| b == v) && !seen.contains(&v.as_str()) {
                            seen.push(v);
                            out.push(never_bound(v, source));
                        }
                    }
                }
            }
            out
        }
    }
}

/// Lint a SELECT query.
pub fn lint_query(query: &Query, source: &str) -> Vec<Diagnostic> {
    let mut out = lint_filters(&query.pattern, source);
    let bound = query.pattern.variables();

    // S002: projected (or aggregated) variables the pattern never binds.
    // Aggregate aliases are outputs, not pattern variables, so only the
    // aggregate *input* is checked.
    let mut candidates: Vec<&str> = query.variables.iter().map(String::as_str).collect();
    for p in &query.projections {
        match p {
            Projection::Var(v) => candidates.push(v),
            Projection::Agg(a) => {
                if let Some(v) = &a.var {
                    candidates.push(v);
                }
            }
        }
    }
    let mut reported: Vec<&str> = Vec::new();
    for v in candidates {
        if !bound.iter().any(|b| b == v) && !reported.contains(&v) {
            reported.push(v);
            out.push(never_bound(v, source));
        }
    }

    // S001: pattern-bound variables used nowhere. SELECT * projects every
    // variable, and COUNT(*) counts whole solutions, so both disable the
    // rule — every binding is observable in the output.
    let select_star = query.variables.is_empty()
        && !query.projections.iter().any(|p| matches!(p, Projection::Var(_)));
    let count_star = query
        .projections
        .iter()
        .any(|p| matches!(p, Projection::Agg(a) if a.var.is_none() && a.func == AggFunc::Count));
    if !select_star && !count_star {
        let counts = occurrence_counts(&query.pattern);
        let used = used_variables(query);
        for v in &bound {
            if counts.get(v.as_str()).copied().unwrap_or(0) <= 1
                && !used.iter().any(|u| u == v)
            {
                out.push(
                    Diagnostic::warning(
                        "S001",
                        format!("variable ?{v} is bound in the pattern but never used"),
                    )
                    .try_span_of(source, &format!("?{v}")),
                );
            }
        }
    }

    out
}

fn never_bound(v: &str, source: &str) -> Diagnostic {
    Diagnostic::warning(
        "S002",
        format!("variable ?{v} is projected but never bound by the pattern"),
    )
    .try_span_of(source, &format!("?{v}"))
}

/// Every variable "used" outside its binding site: projections, aggregate
/// inputs, GROUP BY, HAVING, ORDER BY, and all FILTER expressions.
fn used_variables(query: &Query) -> Vec<String> {
    let mut used: Vec<String> = Vec::new();
    let mut push = |v: &str| {
        if !used.iter().any(|x| x == v) {
            used.push(v.to_string());
        }
    };
    for v in &query.variables {
        push(v);
    }
    for p in &query.projections {
        match p {
            Projection::Var(v) => push(v),
            Projection::Agg(a) => {
                if let Some(v) = &a.var {
                    push(v);
                }
            }
        }
    }
    for v in &query.group_by {
        push(v);
    }
    for o in &query.order_by {
        push(&o.variable);
    }
    let mut filter_vars = Vec::new();
    if let Some(h) = &query.having {
        h.collect_vars(&mut filter_vars);
    }
    for f in collect_filters(&query.pattern) {
        f.collect_vars(&mut filter_vars);
    }
    for v in &filter_vars {
        push(v);
    }
    used
}

/// Count how many times each variable appears in binding position across
/// the whole pattern (unlike `variables()`, duplicates count — a variable
/// appearing twice joins two triples and is therefore "used").
fn occurrence_counts(pattern: &GraphPattern) -> HashMap<&str, usize> {
    let mut counts = HashMap::new();
    fn walk<'a>(p: &'a GraphPattern, counts: &mut HashMap<&'a str, usize>) {
        match p {
            GraphPattern::Bgp(triples) => {
                for t in triples {
                    for part in [&t.subject, &t.predicate, &t.object] {
                        if let PatternTerm::Var(v) = part {
                            *counts.entry(v.as_str()).or_insert(0) += 1;
                        }
                    }
                }
            }
            GraphPattern::Join(a, b)
            | GraphPattern::Optional(a, b)
            | GraphPattern::Union(a, b)
            | GraphPattern::Minus(a, b) => {
                walk(a, counts);
                walk(b, counts);
            }
            GraphPattern::Filter(inner, _) => walk(inner, counts),
            GraphPattern::Values { vars, .. } => {
                for v in vars {
                    *counts.entry(v.as_str()).or_insert(0) += 1;
                }
            }
        }
    }
    walk(pattern, &mut counts);
    counts
}

/// All FILTER expressions anywhere in the pattern.
fn collect_filters(pattern: &GraphPattern) -> Vec<&SparqlExpr> {
    let mut out = Vec::new();
    fn walk<'a>(p: &'a GraphPattern, out: &mut Vec<&'a SparqlExpr>) {
        match p {
            GraphPattern::Bgp(_) | GraphPattern::Values { .. } => {}
            GraphPattern::Join(a, b)
            | GraphPattern::Optional(a, b)
            | GraphPattern::Union(a, b)
            | GraphPattern::Minus(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            GraphPattern::Filter(inner, e) => {
                walk(inner, out);
                out.push(e);
            }
        }
    }
    walk(pattern, &mut out);
    out
}

/// S003 over every FILTER in the pattern.
fn lint_filters(pattern: &GraphPattern, source: &str) -> Vec<Diagnostic> {
    collect_filters(pattern)
        .into_iter()
        .filter(|e| const_truth(e) == Some(false))
        .map(|_| {
            Diagnostic::error(
                "S003",
                "FILTER expression is always false; the pattern can never match",
            )
            .try_span_of(source, "FILTER")
        })
        .collect()
}

/// Fold an expression to a constant truth value where possible. Uses the
/// evaluator's own `compare_terms` so the verdict matches runtime
/// semantics exactly. Anything touching a variable or parameter is
/// `None` (unknown).
fn const_truth(e: &SparqlExpr) -> Option<bool> {
    match e {
        SparqlExpr::Cmp(a, op, b) => match (&**a, &**b) {
            (SparqlExpr::Const(ta), SparqlExpr::Const(tb)) => Some(compare_terms(ta, *op, tb)),
            _ => None,
        },
        SparqlExpr::And(a, b) => match (const_truth(a), const_truth(b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        SparqlExpr::Or(a, b) => match (const_truth(a), const_truth(b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        SparqlExpr::Not(inner) => const_truth(inner).map(|t| !t),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::super::parser::{parse_any, parse_query};
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn unused_variable_fires_and_select_star_suppresses() {
        let src = "SELECT ?s WHERE { ?s <urn:p> ?dead }";
        let q = parse_query(src).unwrap();
        let diags = lint_query(&q, src);
        assert_eq!(codes(&diags), vec!["S001"]);
        assert!(diags[0].message.contains("?dead"));
        assert!(diags[0].span.is_some());

        let star = "SELECT * WHERE { ?s <urn:p> ?o }";
        let q = parse_query(star).unwrap();
        assert!(lint_query(&q, star).is_empty());
    }

    #[test]
    fn join_filter_order_and_count_star_count_as_uses() {
        for src in [
            // ?o joins two triples.
            "SELECT ?s WHERE { ?s <urn:p> ?o . ?o <urn:q> <urn:x> }",
            // ?o used in a FILTER.
            "SELECT ?s WHERE { ?s <urn:p> ?o FILTER(?o > 3) }",
            // ?o used in ORDER BY.
            "SELECT ?s WHERE { ?s <urn:p> ?o } ORDER BY ?o",
            // COUNT(*) observes every binding.
            "SELECT (COUNT(*) AS ?n) WHERE { ?s <urn:p> ?o }",
        ] {
            let q = parse_query(src).unwrap();
            assert!(lint_query(&q, src).is_empty(), "false positive on {src}");
        }
    }

    #[test]
    fn projected_never_bound_fires() {
        let src = "SELECT ?s ?ghost WHERE { ?s <urn:p> ?o . ?o <urn:q> <urn:x> }";
        let q = parse_query(src).unwrap();
        let diags = lint_query(&q, src);
        assert!(codes(&diags).contains(&"S002"), "got {diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("?ghost")));
    }

    #[test]
    fn aggregate_input_checked_for_binding() {
        let src = "SELECT (SUM(?missing) AS ?total) WHERE { ?s <urn:p> ?o . ?o <urn:q> <urn:x> }";
        let q = parse_query(src).unwrap();
        let diags = lint_query(&q, src);
        assert!(codes(&diags).contains(&"S002"), "got {diags:?}");
    }

    #[test]
    fn always_false_filter_fires() {
        let src = "SELECT * WHERE { ?s <urn:p> ?o FILTER(1 > 2) }";
        let q = parse_query(src).unwrap();
        let diags = lint_query(&q, src);
        assert_eq!(codes(&diags), vec!["S003"]);
        assert_eq!(diags[0].severity, crosse_lint::Severity::Error);

        // Satisfiable and variable-dependent filters stay silent.
        for src in [
            "SELECT * WHERE { ?s <urn:p> ?o FILTER(2 > 1) }",
            "SELECT * WHERE { ?s <urn:p> ?o FILTER(?o > 2) }",
        ] {
            let q = parse_query(src).unwrap();
            assert!(lint_query(&q, src).is_empty(), "false positive on {src}");
        }
    }

    #[test]
    fn composite_constant_filters_fold() {
        let src = "SELECT * WHERE { ?s <urn:p> ?o FILTER(1 = 1 && 3 < 2) }";
        let q = parse_query(src).unwrap();
        assert_eq!(codes(&lint_query(&q, src)), vec!["S003"]);

        // OR with one satisfiable arm is fine.
        let src = "SELECT * WHERE { ?s <urn:p> ?o FILTER(1 = 2 || 2 = 2) }";
        let q = parse_query(src).unwrap();
        assert!(lint_query(&q, src).is_empty());
    }

    #[test]
    fn ask_and_construct_forms() {
        let src = "ASK WHERE { ?s <urn:p> ?o FILTER(1 > 2) }";
        let pq = parse_any(src).unwrap();
        assert_eq!(codes(&lint_parsed(&pq, src)), vec!["S003"]);

        let src = "CONSTRUCT { ?s <urn:made> ?ghost } WHERE { ?s <urn:p> ?o . ?o <urn:q> <urn:x> }";
        let pq = parse_any(src).unwrap();
        let diags = lint_parsed(&pq, src);
        assert_eq!(codes(&diags), vec!["S002"]);
    }
}
