//! Error types for the RDF / SPARQL engine.

use std::fmt;

/// Errors produced by the semantic-platform substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// SPARQL or Turtle lexical/syntax error.
    Parse { message: String, position: usize },
    /// Query evaluation error.
    Eval(String),
    /// Store-level error (unknown graph, unknown stored query, ...).
    Store(String),
    /// Durability / storage error (WAL append failure, corrupt snapshot on
    /// recovery, I/O). Carries a rendered message so the enum stays
    /// `Clone + Eq`; match on the variant, not the text.
    Storage(String),
    /// Evaluation stopped cooperatively: cancelled via
    /// [`crosse_exec::CancelToken`] or past its deadline (checked between
    /// BGP probe batches).
    Interrupted(crosse_exec::Interrupt),
}

impl Error {
    pub fn parse(message: impl Into<String>, position: usize) -> Self {
        Error::Parse { message: message.into(), position }
    }
    pub fn eval(message: impl Into<String>) -> Self {
        Error::Eval(message.into())
    }
    pub fn store(message: impl Into<String>) -> Self {
        Error::Store(message.into())
    }
    pub fn storage(message: impl Into<String>) -> Self {
        Error::Storage(message.into())
    }
}

impl From<crosse_wal::WalError> for Error {
    fn from(e: crosse_wal::WalError) -> Self {
        Error::Storage(e.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { message, position } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            Error::Eval(m) => write!(f, "evaluation error: {m}"),
            Error::Store(m) => write!(f, "store error: {m}"),
            Error::Storage(m) => write!(f, "storage error: {m}"),
            Error::Interrupted(i) => write!(f, "{i}"),
        }
    }
}

impl From<crosse_exec::Interrupt> for Error {
    fn from(i: crosse_exec::Interrupt) -> Self {
        Error::Interrupted(i)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(Error::parse("bad", 3).to_string().contains("byte 3"));
        assert!(Error::eval("x").to_string().contains("evaluation"));
        assert!(Error::store("x").to_string().contains("store"));
        assert!(Error::storage("x").to_string().contains("storage"));
        assert!(Error::Interrupted(crosse_exec::Interrupt::DeadlineExceeded)
            .to_string()
            .contains("deadline"));
    }
}
