//! Named stored SPARQL queries.
//!
//! Paper Example 4.5 enriches a WHERE clause via `dangerQuery`, "not a
//! property name occurring in stored triples, while it refers to a SPARQL
//! query which extracts from the contextual ontology the list of dangerous
//! elements". This registry holds such queries, validated at registration
//! time.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::sparql::ast::Query;
use crate::sparql::parser::parse_query;

/// A registry of named, pre-parsed SPARQL queries. Cheap to clone.
#[derive(Debug, Clone)]
pub struct StoredQueries {
    inner: Arc<RwLock<HashMap<String, Arc<StoredQuery>>>>,
}

impl Default for StoredQueries {
    fn default() -> Self {
        StoredQueries {
            inner: Arc::new(RwLock::new_labeled("rdf.stored_queries", HashMap::new())),
        }
    }
}

/// A registered query and its metadata.
#[derive(Debug)]
pub struct StoredQuery {
    pub name: String,
    pub sparql: String,
    pub query: Query,
    /// The variable whose bindings form the query's "result list". Defaults
    /// to the first projected variable.
    pub output_variable: String,
}

impl StoredQueries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a stored query. The query must project at
    /// least one variable explicitly (SELECT * is rejected: the consumer
    /// needs a deterministic output column).
    pub fn register(&self, name: &str, sparql: &str) -> Result<()> {
        let query = parse_query(sparql)?;
        let Some(first) = query.variables.first().cloned() else {
            return Err(Error::store(format!(
                "stored query `{name}` must project an explicit variable (not `*`)"
            )));
        };
        let sq = StoredQuery {
            name: name.to_string(),
            sparql: sparql.to_string(),
            query,
            output_variable: first,
        };
        self.inner.write().insert(name.to_string(), Arc::new(sq));
        Ok(())
    }

    pub fn get(&self, name: &str) -> Option<Arc<StoredQuery>> {
        self.inner.read().get(name).cloned()
    }

    pub fn contains(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    pub fn remove(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::store(format!("no stored query named `{name}`")))
    }

    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.read().keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DANGER_QUERY: &str =
        "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }";

    #[test]
    fn register_and_get() {
        let reg = StoredQueries::new();
        reg.register("dangerQuery", DANGER_QUERY).unwrap();
        let q = reg.get("dangerQuery").unwrap();
        assert_eq!(q.output_variable, "e");
        assert_eq!(q.name, "dangerQuery");
        assert!(reg.contains("dangerQuery"));
        assert!(!reg.contains("other"));
    }

    #[test]
    fn invalid_sparql_rejected() {
        let reg = StoredQueries::new();
        assert!(reg.register("bad", "SELECT WHERE {").is_err());
        assert!(!reg.contains("bad"));
    }

    #[test]
    fn select_star_rejected() {
        let reg = StoredQueries::new();
        assert!(reg.register("star", "SELECT * WHERE { ?s ?p ?o }").is_err());
    }

    #[test]
    fn replace_and_remove() {
        let reg = StoredQueries::new();
        reg.register("q", DANGER_QUERY).unwrap();
        reg.register("q", "SELECT ?x WHERE { ?x <isA> <Hazard> }").unwrap();
        assert_eq!(reg.get("q").unwrap().output_variable, "x");
        reg.remove("q").unwrap();
        assert!(reg.remove("q").is_err());
    }

    #[test]
    fn names_sorted() {
        let reg = StoredQueries::new();
        reg.register("b", DANGER_QUERY).unwrap();
        reg.register("a", DANGER_QUERY).unwrap();
        assert_eq!(reg.names(), vec!["a", "b"]);
    }

    #[test]
    fn clone_shares_registry() {
        let reg = StoredQueries::new();
        let reg2 = reg.clone();
        reg.register("q", DANGER_QUERY).unwrap();
        assert!(reg2.contains("q"));
    }
}
