//! Durability for the triple store: redo records and checkpoint
//! snapshots (channel [`crosse_wal::CHAN_RDF`] of the shared log).
//!
//! The log speaks **terms, never ids**: a redo record carries concrete
//! [`Term`]s, and replay re-interns them, so dictionary ids need not be
//! stable across recovery. The snapshot, by contrast, is id-based for
//! compactness — it serialises the dictionary (terms in id order) followed
//! by each graph's triples as `3×u32` ids, and restoring into a fresh
//! store re-interns the dictionary densely so the ids line up.

use std::sync::Arc;

use parking_lot::RwLock;

use crosse_wal::{Decoder, Encoder, WalStore, CHAN_RDF};

use crate::error::{Error, Result};
use crate::store::{Triple, TripleStore};
use crate::term::Term;

/// Where the store's redo records go. Mirrors the relational crate's
/// `RedoSink`; the indirection keeps the store testable without a
/// filesystem.
pub trait RdfRedoSink: Send + Sync + std::fmt::Debug {
    /// The append/checkpoint barrier. Mutators hold the read side across
    /// their whole log-then-apply critical section.
    fn barrier(&self) -> &RwLock<()>;

    /// Append one encoded [`RdfOp`] to the log buffer without forcing it
    /// to disk.
    fn log(&self, payload: &[u8]) -> Result<()>;

    /// Apply the sink's durability policy (fsync if due). Mutators call
    /// this **after** releasing the graph locks so no store lock is held
    /// across the (slow, blocking) fsync. An error here means the
    /// mutation is applied in memory but its durability is not yet
    /// guaranteed.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

/// [`RdfRedoSink`] over a shared [`WalStore`], tagging records `CHAN_RDF`.
pub struct WalRdfSink {
    wal: Arc<WalStore>,
}

impl WalRdfSink {
    pub fn new(wal: Arc<WalStore>) -> Self {
        WalRdfSink { wal }
    }
}

impl std::fmt::Debug for WalRdfSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalRdfSink").field("dir", &self.wal.dir()).finish()
    }
}

impl RdfRedoSink for WalRdfSink {
    fn barrier(&self) -> &RwLock<()> {
        self.wal.barrier()
    }

    fn log(&self, payload: &[u8]) -> Result<()> {
        self.wal.append_nosync(CHAN_RDF, payload).map(drop).map_err(Error::from)
    }

    fn flush(&self) -> Result<()> {
        self.wal.sync_policy().map_err(Error::from)
    }
}

const OP_INSERT_ALL: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_DROP_GRAPH: u8 = 3;
const OP_ENSURE_GRAPH: u8 = 4;

/// One loggable triple-store mutation, borrowing the caller's data.
#[derive(Debug)]
pub enum RdfOp<'a> {
    /// One batch of triples inserted into `graph`; replayed all-or-nothing
    /// (set semantics make replay idempotent).
    InsertAll { graph: &'a str, triples: &'a [Triple] },
    Remove { graph: &'a str, triple: &'a Triple },
    DropGraph { graph: &'a str },
    EnsureGraph { graph: &'a str },
}

/// Serialise an op to its log payload.
pub fn encode_rdf_op(op: &RdfOp<'_>) -> Vec<u8> {
    let mut e = Encoder::new();
    match op {
        RdfOp::InsertAll { graph, triples } => {
            e.u8(OP_INSERT_ALL);
            e.str(graph);
            e.u32(triples.len() as u32);
            for t in *triples {
                encode_triple(&mut e, t);
            }
        }
        RdfOp::Remove { graph, triple } => {
            e.u8(OP_REMOVE);
            e.str(graph);
            encode_triple(&mut e, triple);
        }
        RdfOp::DropGraph { graph } => {
            e.u8(OP_DROP_GRAPH);
            e.str(graph);
        }
        RdfOp::EnsureGraph { graph } => {
            e.u8(OP_ENSURE_GRAPH);
            e.str(graph);
        }
    }
    e.into_vec()
}

/// Decode one payload and apply it to `store` **without re-logging** —
/// the replay path (no sink is attached to a recovering store).
pub fn apply_rdf_op(store: &TripleStore, payload: &[u8]) -> Result<()> {
    let mut d = Decoder::new(payload);
    let tag = d.u8().map_err(Error::from)?;
    match tag {
        OP_INSERT_ALL => {
            let graph = d.str().map_err(Error::from)?;
            let n = d.u32().map_err(Error::from)?;
            let mut triples = Vec::with_capacity(n as usize);
            for _ in 0..n {
                triples.push(decode_triple(&mut d)?);
            }
            d.finish().map_err(Error::from)?;
            store.apply_insert(&graph, &triples);
        }
        OP_REMOVE => {
            let graph = d.str().map_err(Error::from)?;
            let triple = decode_triple(&mut d)?;
            d.finish().map_err(Error::from)?;
            store.apply_remove(&graph, &triple);
        }
        OP_DROP_GRAPH => {
            let graph = d.str().map_err(Error::from)?;
            d.finish().map_err(Error::from)?;
            store.apply_drop_graph(&graph);
        }
        OP_ENSURE_GRAPH => {
            let graph = d.str().map_err(Error::from)?;
            d.finish().map_err(Error::from)?;
            store.apply_ensure_graph(&graph);
        }
        other => {
            return Err(Error::storage(format!("unknown RDF redo op tag {other}")))
        }
    }
    Ok(())
}

// ---- term / triple codec --------------------------------------------------

const TERM_IRI: u8 = 0;
const TERM_LIT: u8 = 1;
const TERM_TYPED_LIT: u8 = 2;
const TERM_BLANK: u8 = 3;

fn encode_term(e: &mut Encoder, t: &Term) {
    match t {
        Term::Iri(i) => {
            e.u8(TERM_IRI);
            e.str(i);
        }
        Term::Literal { value, datatype: None } => {
            e.u8(TERM_LIT);
            e.str(value);
        }
        Term::Literal { value, datatype: Some(dt) } => {
            e.u8(TERM_TYPED_LIT);
            e.str(value);
            e.str(dt);
        }
        Term::Blank(b) => {
            e.u8(TERM_BLANK);
            e.str(b);
        }
    }
}

fn decode_term(d: &mut Decoder<'_>) -> Result<Term> {
    Ok(match d.u8().map_err(Error::from)? {
        TERM_IRI => Term::Iri(d.str().map_err(Error::from)?),
        TERM_LIT => Term::Literal { value: d.str().map_err(Error::from)?, datatype: None },
        TERM_TYPED_LIT => {
            let value = d.str().map_err(Error::from)?;
            let dt = d.str().map_err(Error::from)?;
            Term::Literal { value, datatype: Some(dt) }
        }
        TERM_BLANK => Term::Blank(d.str().map_err(Error::from)?),
        other => return Err(Error::storage(format!("unknown term tag {other}"))),
    })
}

fn encode_triple(e: &mut Encoder, t: &Triple) {
    encode_term(e, &t.subject);
    encode_term(e, &t.predicate);
    encode_term(e, &t.object);
}

fn decode_triple(d: &mut Decoder<'_>) -> Result<Triple> {
    Ok(Triple::new(decode_term(d)?, decode_term(d)?, decode_term(d)?))
}

// ---- snapshot --------------------------------------------------------------

/// One pinned graph: name plus its id-triples.
type GraphPin = (String, Vec<(u32, u32, u32)>);

/// A frozen copy of the whole store: dictionary terms in id order plus
/// each graph's id-triples. Produced by [`pin_store`] under the checkpoint
/// barrier; serialised off-thread by [`encode_store`].
#[derive(Debug)]
pub struct StorePin {
    terms: Vec<Term>,
    graphs: Vec<GraphPin>,
}

/// Freeze the store. Graphs are pinned first, the dictionary after — the
/// dictionary only grows, so every id referenced by a pinned graph
/// resolves. Under the barrier the two reads are one consistent cut
/// anyway; the ordering makes the pin safe even for barrier-less callers
/// (tests).
pub fn pin_store(store: &TripleStore) -> StorePin {
    let graphs = store
        .pin_graphs()
        .into_iter()
        .map(|(name, ts)| {
            (name, ts.into_iter().map(|(s, p, o)| (s.0, p.0, o.0)).collect())
        })
        .collect();
    let terms = store.dictionary().terms_snapshot();
    StorePin { terms, graphs }
}

/// Serialise a pinned store to one snapshot section body.
pub fn encode_store(pin: &StorePin) -> Vec<u8> {
    let mut e = Encoder::with_capacity(4096);
    e.u32(pin.terms.len() as u32);
    for t in &pin.terms {
        encode_term(&mut e, t);
    }
    e.u32(pin.graphs.len() as u32);
    for (name, triples) in &pin.graphs {
        e.str(name);
        e.u64(triples.len() as u64);
        for &(s, p, o) in triples {
            e.u32(s);
            e.u32(p);
            e.u32(o);
        }
    }
    e.into_vec()
}

/// Rebuild a store from an encoded snapshot section. The store must be
/// fresh (empty dictionary) so that re-interning the dictionary in order
/// reproduces the snapshot's dense ids.
pub fn decode_store(store: &TripleStore, bytes: &[u8]) -> Result<()> {
    if !store.dictionary().is_empty() || !store.graph_names().is_empty() {
        return Err(Error::storage(
            "snapshot must be restored into a fresh triple store",
        ));
    }
    let mut d = Decoder::new(bytes);
    let nterms = d.u32().map_err(Error::from)?;
    let dict = store.dictionary();
    for i in 0..nterms {
        let term = decode_term(&mut d)?;
        let id = dict.intern(&term);
        if id.0 != i {
            return Err(Error::storage(format!(
                "snapshot dictionary has duplicate term at id {i}"
            )));
        }
    }
    let ngraphs = d.u32().map_err(Error::from)?;
    for _ in 0..ngraphs {
        let name = d.str().map_err(Error::from)?;
        store.apply_ensure_graph(&name);
        let ntriples = d.u64().map_err(Error::from)?;
        let mut ids = Vec::with_capacity(ntriples.min(1 << 20) as usize);
        for _ in 0..ntriples {
            let s = d.u32().map_err(Error::from)?;
            let p = d.u32().map_err(Error::from)?;
            let o = d.u32().map_err(Error::from)?;
            if s >= nterms || p >= nterms || o >= nterms {
                return Err(Error::storage(format!(
                    "snapshot triple references unknown term id in graph `{name}`"
                )));
            }
            ids.push((
                crate::term::TermId(s),
                crate::term::TermId(p),
                crate::term::TermId(o),
            ));
        }
        store.apply_insert_ids(&name, ids);
    }
    d.finish().map_err(Error::from)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TriplePattern;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::lit(o))
    }

    fn seeded() -> TripleStore {
        let store = TripleStore::new();
        store.insert("u1", &t("Hg", "dangerLevel", "5"));
        store.insert("u1", &t("Pb", "dangerLevel", "4"));
        store.insert("u2", &t("Hg", "dangerLevel", "5"));
        store.insert(
            "u2",
            &Triple::new(
                Term::blank("b0"),
                Term::iri("p"),
                Term::typed_lit("3", "http://www.w3.org/2001/XMLSchema#integer"),
            ),
        );
        store.ensure_graph("empty");
        store
    }

    #[test]
    fn redo_ops_roundtrip_through_apply() {
        let src = seeded();
        let dst = TripleStore::new();
        // Rebuild dst from ops only.
        for graph in src.graph_names() {
            apply_rdf_op(&dst, &encode_rdf_op(&RdfOp::EnsureGraph { graph: &graph }))
                .unwrap();
            let triples = src.graph_triples(&graph);
            apply_rdf_op(
                &dst,
                &encode_rdf_op(&RdfOp::InsertAll { graph: &graph, triples: &triples }),
            )
            .unwrap();
        }
        assert_eq!(dst.len(), src.len());
        assert!(dst.has_graph("empty"));
        assert!(dst.contains("u1", &t("Hg", "dangerLevel", "5")));

        apply_rdf_op(
            &dst,
            &encode_rdf_op(&RdfOp::Remove { graph: "u1", triple: &t("Pb", "dangerLevel", "4") }),
        )
        .unwrap();
        assert!(!dst.contains("u1", &t("Pb", "dangerLevel", "4")));
        apply_rdf_op(&dst, &encode_rdf_op(&RdfOp::DropGraph { graph: "u2" })).unwrap();
        assert!(!dst.has_graph("u2"));
    }

    #[test]
    fn snapshot_roundtrip_preserves_graphs_and_term_kinds() {
        let src = seeded();
        let bytes = encode_store(&pin_store(&src));
        let dst = TripleStore::new();
        decode_store(&dst, &bytes).unwrap();
        assert_eq!(dst.len(), src.len());
        assert!(dst.has_graph("empty"));
        // Term kinds survive: the typed literal matches only as itself.
        let found = dst.match_pattern(
            &["u2"],
            &TriplePattern {
                subject: None,
                predicate: Some(Term::iri("p")),
                object: None,
            },
        );
        assert_eq!(found.len(), 1);
        assert_eq!(
            found[0].object,
            Term::typed_lit("3", "http://www.w3.org/2001/XMLSchema#integer")
        );
        assert!(matches!(found[0].subject, Term::Blank(_)));
    }

    #[test]
    fn snapshot_into_dirty_store_is_rejected() {
        let src = seeded();
        let bytes = encode_store(&pin_store(&src));
        let dst = TripleStore::new();
        dst.insert("g", &t("a", "p", "c"));
        let err = decode_store(&dst, &bytes).unwrap_err();
        assert!(matches!(err, Error::Storage(_)), "{err}");
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        let src = seeded();
        let snap = encode_store(&pin_store(&src));
        for cut in [1usize, 5, snap.len() - 2] {
            let dst = TripleStore::new();
            let err = decode_store(&dst, &snap[..cut]).unwrap_err();
            assert!(matches!(err, Error::Storage(_)), "{err}");
        }
        let op = encode_rdf_op(&RdfOp::Remove { graph: "g", triple: &t("a", "b", "c") });
        let dst = TripleStore::new();
        for cut in [1usize, 3, op.len() - 1] {
            let err = apply_rdf_op(&dst, &op[..cut]).unwrap_err();
            assert!(matches!(err, Error::Storage(_)), "{err}");
        }
        assert!(apply_rdf_op(&dst, &[77]).is_err());
    }

    #[test]
    fn snapshot_with_out_of_range_id_is_typed_error() {
        let mut e = Encoder::new();
        e.u32(1); // one term
        e.u8(0);
        e.str("a");
        e.u32(1); // one graph
        e.str("g");
        e.u64(1);
        e.u32(0);
        e.u32(9); // unknown id
        e.u32(0);
        let dst = TripleStore::new();
        let err = decode_store(&dst, e.as_slice()).unwrap_err();
        assert!(err.to_string().contains("unknown term id"), "{err}");
    }
}
