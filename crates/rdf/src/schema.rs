//! The CroSSE RDF vocabulary (paper Fig. 4).
//!
//! The figure defines an `smg:` namespace with classes `smg:User`,
//! `smg:Resource`, `smg:Property`, `smg:Statement`, `smg:Reference` and the
//! provenance properties that attach reified statements to the users who
//! asserted (`userStatement`) or adopted (`userBelief`) them, plus
//! bibliographic references (`stmReference` with `refTitle` / `refAuthor` /
//! `refLink` / `fileReference`).

use crate::term::Term;

/// The `smg:` namespace IRI.
pub const SMG_NS: &str = "http://smartground.eu/crosse#";
/// RDF namespace.
pub const RDF_NS: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
/// RDFS namespace.
pub const RDFS_NS: &str = "http://www.w3.org/2000/01/rdf-schema#";
/// XSD namespace.
pub const XSD_NS: &str = "http://www.w3.org/2001/XMLSchema#";

fn smg(local: &str) -> Term {
    Term::iri(format!("{SMG_NS}{local}"))
}

fn rdf(local: &str) -> Term {
    Term::iri(format!("{RDF_NS}{local}"))
}

fn rdfs(local: &str) -> Term {
    Term::iri(format!("{RDFS_NS}{local}"))
}

// ---- classes ----------------------------------------------------------

/// `smg:User` — a registered platform user.
pub fn user_class() -> Term {
    smg("User")
}
/// `smg:Resource` — a concept that can appear as subject/object.
pub fn resource_class() -> Term {
    smg("Resource")
}
/// `smg:Property` — a user-declared property.
pub fn property_class() -> Term {
    smg("Property")
}
/// `smg:Statement` — a reified user statement.
pub fn statement_class() -> Term {
    smg("Statement")
}
/// `smg:Reference` — a bibliographic/file reference for a statement.
pub fn reference_class() -> Term {
    smg("Reference")
}

// ---- provenance properties ---------------------------------------------

/// `smg:userStatement` — user asserted this statement.
pub fn user_statement() -> Term {
    smg("userStatement")
}
/// `smg:userBelief` — user adopted ("accepted as own") this statement.
pub fn user_belief() -> Term {
    smg("userBelief")
}
/// `smg:userResource` — user introduced this resource.
pub fn user_resource() -> Term {
    smg("userResource")
}
/// `smg:userProperty` — user introduced this property.
pub fn user_property() -> Term {
    smg("userProperty")
}

// ---- reification properties (rdf:subject / predicate / object) ----------

pub fn rdf_type() -> Term {
    rdf("type")
}
pub fn rdf_subject() -> Term {
    rdf("subject")
}
pub fn rdf_predicate() -> Term {
    rdf("predicate")
}
pub fn rdf_object() -> Term {
    rdf("object")
}

// ---- RDFS vocabulary -----------------------------------------------------

pub fn rdfs_subclass_of() -> Term {
    rdfs("subClassOf")
}
pub fn rdfs_subproperty_of() -> Term {
    rdfs("subPropertyOf")
}
pub fn rdfs_domain() -> Term {
    rdfs("domain")
}
pub fn rdfs_range() -> Term {
    rdfs("range")
}
pub fn rdfs_label() -> Term {
    rdfs("label")
}

// ---- reference properties -------------------------------------------------

pub fn stm_reference() -> Term {
    smg("stmReference")
}
pub fn ref_title() -> Term {
    smg("refTitle")
}
pub fn ref_author() -> Term {
    smg("refAuthor")
}
pub fn ref_link() -> Term {
    smg("refLink")
}
pub fn file_reference() -> Term {
    smg("fileReference")
}

/// IRI of a user node from a user name.
pub fn user_iri(username: &str) -> Term {
    smg(&format!("user/{username}"))
}

/// IRI of a reified statement node.
pub fn statement_iri(id: u64) -> Term {
    smg(&format!("stmt/{id}"))
}

/// IRI of a reference node.
pub fn reference_iri(id: u64) -> Term {
    smg(&format!("ref/{id}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_namespaced() {
        assert_eq!(user_class(), Term::iri("http://smartground.eu/crosse#User"));
        assert!(matches!(rdf_type(), Term::Iri(i) if i.ends_with("#type")));
        assert!(matches!(rdfs_subclass_of(), Term::Iri(i) if i.ends_with("subClassOf")));
    }

    #[test]
    fn node_iris_are_distinct() {
        assert_ne!(user_iri("alice"), user_iri("bob"));
        assert_ne!(statement_iri(1), statement_iri(2));
        assert_ne!(statement_iri(1), reference_iri(1));
    }

    #[test]
    fn local_names_round_trip() {
        assert_eq!(user_class().local_name(), "User");
        assert_eq!(user_belief().local_name(), "userBelief");
    }
}
