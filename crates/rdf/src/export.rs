//! Graph serialisation: N-Triples and Graphviz DOT.
//!
//! The paper's semantic platform offers "a graph-based visualization tool
//! which supports knowledge insertion in a more user friendly way"
//! (Sec. III-A). [`to_dot`] renders a user's knowledge the way that tool
//! displays it — concepts as nodes, properties as labelled edges —
//! and [`to_ntriples`] provides a lossless interchange dump that
//! [`crate::turtle::parse_turtle`] reads back.

use std::collections::BTreeSet;

use crate::store::Triple;
use crate::term::Term;

fn escape_literal(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Render one term in N-Triples syntax.
pub fn term_to_ntriples(term: &Term) -> String {
    match term {
        Term::Iri(i) => format!("<{i}>"),
        Term::Literal { value, datatype: None } => {
            format!("\"{}\"", escape_literal(value))
        }
        Term::Literal { value, datatype: Some(dt) } => {
            format!("\"{}\"^^<{dt}>", escape_literal(value))
        }
        Term::Blank(b) => format!("_:{b}"),
    }
}

/// Serialise triples as N-Triples (one statement per line, sorted for
/// determinism).
pub fn to_ntriples(triples: &[Triple]) -> String {
    let mut lines: BTreeSet<String> = BTreeSet::new();
    for t in triples {
        lines.insert(format!(
            "{} {} {} .",
            term_to_ntriples(&t.subject),
            term_to_ntriples(&t.predicate),
            term_to_ntriples(&t.object)
        ));
    }
    let mut out = String::new();
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn node_label(term: &Term) -> String {
    match term {
        Term::Iri(_) => term.local_name().to_string(),
        Term::Literal { value, .. } => format!("\"{value}\""),
        Term::Blank(b) => format!("_:{b}"),
    }
}

/// Render triples as a Graphviz DOT digraph. Literal objects become box
/// nodes, IRIs ellipses; predicates label the edges by local name.
pub fn to_dot(graph_name: &str, triples: &[Triple]) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", dot_escape(graph_name)));
    out.push_str("  rankdir=LR;\n");
    // Stable node ids: index in first-appearance order.
    let mut nodes: Vec<(Term, bool)> = Vec::new(); // (term, is_literal)
    let id_of = |term: &Term, nodes: &mut Vec<(Term, bool)>| -> usize {
        if let Some(i) = nodes.iter().position(|(t, _)| t == term) {
            i
        } else {
            nodes.push((term.clone(), term.is_literal()));
            nodes.len() - 1
        }
    };
    let mut edges = Vec::new();
    for t in triples {
        let s = id_of(&t.subject, &mut nodes);
        let o = id_of(&t.object, &mut nodes);
        edges.push((s, o, t.predicate.local_name().to_string()));
    }
    for (i, (term, is_lit)) in nodes.iter().enumerate() {
        let shape = if *is_lit { "box" } else { "ellipse" };
        out.push_str(&format!(
            "  n{i} [label=\"{}\", shape={shape}];\n",
            dot_escape(&node_label(term))
        ));
    }
    for (s, o, label) in edges {
        out.push_str(&format!("  n{s} -> n{o} [label=\"{}\"];\n", dot_escape(&label)));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle::parse_turtle;

    fn sample() -> Vec<Triple> {
        vec![
            Triple::new(Term::iri("Hg"), Term::iri("dangerLevel"), Term::lit("5")),
            Triple::new(
                Term::iri("Hg"),
                Term::iri("isA"),
                Term::iri("http://smg.eu/onto#HazardousWaste"),
            ),
        ]
    }

    #[test]
    fn ntriples_round_trips_through_turtle_parser() {
        let nt = to_ntriples(&sample());
        let parsed = parse_turtle(&nt).unwrap();
        let mut original = sample();
        original.sort();
        let mut reparsed = parsed;
        reparsed.sort();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn ntriples_is_sorted_and_deterministic() {
        let a = to_ntriples(&sample());
        let mut reversed = sample();
        reversed.reverse();
        let b = to_ntriples(&reversed);
        assert_eq!(a, b);
    }

    #[test]
    fn ntriples_escapes_quotes_and_newlines() {
        let t = vec![Triple::new(
            Term::iri("n"),
            Term::iri("note"),
            Term::lit("say \"hi\"\nthere"),
        )];
        let nt = to_ntriples(&t);
        assert!(nt.contains("\\\"hi\\\""), "{nt}");
        assert!(nt.contains("\\n"), "{nt}");
        assert_eq!(parse_turtle(&nt).unwrap()[0].object.lexical_form(), "say \"hi\"\nthere");
    }

    #[test]
    fn typed_literals_serialise() {
        let t = vec![Triple::new(
            Term::iri("Hg"),
            Term::iri("mass"),
            Term::typed_lit("200.59", "http://www.w3.org/2001/XMLSchema#decimal"),
        )];
        let nt = to_ntriples(&t);
        assert!(nt.contains("^^<http://www.w3.org/2001/XMLSchema#decimal>"), "{nt}");
    }

    #[test]
    fn dot_renders_nodes_and_edges() {
        let dot = to_dot("director", &sample());
        assert!(dot.starts_with("digraph \"director\""));
        assert!(dot.contains("label=\"Hg\""));
        assert!(dot.contains("shape=box"), "literal node is a box");
        assert!(dot.contains("label=\"HazardousWaste\""), "IRI shown by local name");
        assert!(dot.contains("-> "));
        assert!(dot.contains("label=\"dangerLevel\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_shares_nodes_across_triples() {
        let dot = to_dot("g", &sample());
        // Hg appears once even though it is subject of two triples.
        assert_eq!(dot.matches("label=\"Hg\"").count(), 1);
    }
}
