// srclint: allow(R002): char reads are at byte offsets the byte-level match just validated
//! A Turtle-lite loader.
//!
//! Supports the Turtle features needed to write ontologies by hand in tests
//! and examples: `@prefix` declarations, IRIs in angle brackets, prefixed
//! names, the `a` keyword, string / numeric literals, predicate lists with
//! `;`, object lists with `,`, and `#` comments. No blank-node syntax, no
//! collections.

use std::collections::HashMap;

use crate::error::{Error, Result};
use crate::store::Triple;
use crate::term::Term;

/// Parse a Turtle-lite document into triples.
pub fn parse_turtle(src: &str) -> Result<Vec<Triple>> {
    let mut prefixes: HashMap<String, String> = HashMap::new();
    prefixes.insert("rdf".into(), crate::schema::RDF_NS.into());
    prefixes.insert("rdfs".into(), crate::schema::RDFS_NS.into());
    prefixes.insert("xsd".into(), crate::schema::XSD_NS.into());
    prefixes.insert("smg".into(), crate::schema::SMG_NS.into());

    let mut out = Vec::new();
    let toks = tokenize(src)?;
    let mut i = 0;

    while i < toks.len() {
        // @prefix name: <iri> .
        if toks[i] == TurtleTok::AtPrefix {
            let TurtleTok::PrefixedName(p, local) = &toks[i + 1] else {
                return Err(Error::parse("expected `name:` after @prefix", 0));
            };
            if !local.is_empty() {
                return Err(Error::parse("prefix declaration must end with `:`", 0));
            }
            let TurtleTok::Iri(iri) = &toks[i + 2] else {
                return Err(Error::parse("expected IRI in @prefix", 0));
            };
            if toks.get(i + 3) != Some(&TurtleTok::Dot) {
                return Err(Error::parse("expected `.` after @prefix", 0));
            }
            prefixes.insert(p.clone(), iri.clone());
            i += 4;
            continue;
        }

        // subject predicate object (',' object)* (';' predicate object...)* '.'
        let subject = term_at(&toks, &mut i, &prefixes)?;
        loop {
            let predicate = term_at(&toks, &mut i, &prefixes)?;
            loop {
                let object = term_at(&toks, &mut i, &prefixes)?;
                out.push(Triple::new(subject.clone(), predicate.clone(), object));
                if toks.get(i) == Some(&TurtleTok::Comma) {
                    i += 1;
                } else {
                    break;
                }
            }
            if toks.get(i) == Some(&TurtleTok::Semicolon) {
                i += 1;
                if toks.get(i) == Some(&TurtleTok::Dot) {
                    break;
                }
            } else {
                break;
            }
        }
        if toks.get(i) != Some(&TurtleTok::Dot) {
            return Err(Error::parse("expected `.` at end of statement", 0));
        }
        i += 1;
    }
    Ok(out)
}

#[derive(Debug, Clone, PartialEq)]
enum TurtleTok {
    AtPrefix,
    Iri(String),
    PrefixedName(String, String),
    Literal(String),
    Num(String),
    A,
    Dot,
    Comma,
    Semicolon,
    DtMarker,
}

fn tokenize(src: &str) -> Result<Vec<TurtleTok>> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i];
        match c {
            _ if c.is_ascii_whitespace() => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'.' => {
                out.push(TurtleTok::Dot);
                i += 1;
            }
            b',' => {
                out.push(TurtleTok::Comma);
                i += 1;
            }
            b';' => {
                out.push(TurtleTok::Semicolon);
                i += 1;
            }
            b'^' => {
                if b.get(i + 1) == Some(&b'^') {
                    out.push(TurtleTok::DtMarker);
                    i += 2;
                } else {
                    return Err(Error::parse("unexpected `^`", i));
                }
            }
            b'@' => {
                if src[i..].starts_with("@prefix") {
                    out.push(TurtleTok::AtPrefix);
                    i += "@prefix".len();
                } else {
                    return Err(Error::parse("unknown @directive", i));
                }
            }
            b'<' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'>' {
                    j += 1;
                }
                if j == b.len() {
                    return Err(Error::parse("unterminated IRI", i));
                }
                out.push(TurtleTok::Iri(src[start..j].to_string()));
                i = j + 1;
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match b.get(i + 1) {
                                Some(b'"') => s.push('"'),
                                Some(b'\\') => s.push('\\'),
                                Some(b'n') => s.push('\n'),
                                _ => return Err(Error::parse("bad escape", i)),
                            }
                            i += 2;
                        }
                        Some(_) => {
                            let ch = src[i..].chars().next().expect("in bounds");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                        None => return Err(Error::parse("unterminated literal", i)),
                    }
                }
                out.push(TurtleTok::Literal(s));
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'.') {
                    if b[i] == b'.'
                        && !b.get(i + 1).map(|d| d.is_ascii_digit()).unwrap_or(false)
                    {
                        break;
                    }
                    i += 1;
                }
                out.push(TurtleTok::Num(src[start..i].to_string()));
            }
            _ if c.is_ascii_alphabetic() || c == b'_' || c == b':' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'-')
                {
                    i += 1;
                }
                let word = &src[start..i];
                if b.get(i) == Some(&b':') {
                    i += 1;
                    let ls = i;
                    while i < b.len()
                        && (b[i].is_ascii_alphanumeric()
                            || b[i] == b'_'
                            || b[i] == b'-'
                            || b[i] == b'/')
                    {
                        i += 1;
                    }
                    out.push(TurtleTok::PrefixedName(
                        word.to_string(),
                        src[ls..i].to_string(),
                    ));
                } else if word == "a" {
                    out.push(TurtleTok::A);
                } else {
                    return Err(Error::parse(
                        format!("bare word `{word}` is not valid Turtle"),
                        start,
                    ));
                }
            }
            other => {
                return Err(Error::parse(
                    format!("unexpected character `{}`", other as char),
                    i,
                ))
            }
        }
    }
    Ok(out)
}

fn term_at(
    toks: &[TurtleTok],
    i: &mut usize,
    prefixes: &HashMap<String, String>,
) -> Result<Term> {
    let t = toks
        .get(*i)
        .ok_or_else(|| Error::parse("unexpected end of input", 0))?
        .clone();
    *i += 1;
    match t {
        TurtleTok::Iri(iri) => Ok(Term::iri(iri)),
        TurtleTok::A => Ok(crate::schema::rdf_type()),
        TurtleTok::Num(n) => Ok(Term::lit(n)),
        TurtleTok::Literal(s) => {
            if toks.get(*i) == Some(&TurtleTok::DtMarker) {
                *i += 1;
                let dt = term_at(toks, i, prefixes)?;
                let Term::Iri(dt) = dt else {
                    return Err(Error::parse("datatype must be an IRI", 0));
                };
                Ok(Term::typed_lit(s, dt))
            } else {
                Ok(Term::lit(s))
            }
        }
        TurtleTok::PrefixedName(p, local) => {
            let base = prefixes
                .get(&p)
                .ok_or_else(|| Error::parse(format!("unknown prefix `{p}:`"), 0))?;
            Ok(Term::iri(format!("{base}{local}")))
        }
        other => Err(Error::parse(format!("expected a term, found {other:?}"), 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_triples() {
        let ts = parse_turtle(
            "<Hg> <dangerLevel> \"5\" .\n<Hg> <isA> <HazardousWaste> .",
        )
        .unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].object, Term::lit("5"));
        assert_eq!(ts[1].object, Term::iri("HazardousWaste"));
    }

    #[test]
    fn prefixes_and_a() {
        let ts = parse_turtle(
            "@prefix ex: <http://ex.org/> .\nex:Hg a ex:HeavyMetal .",
        )
        .unwrap();
        assert_eq!(ts[0].subject, Term::iri("http://ex.org/Hg"));
        assert_eq!(ts[0].predicate, crate::schema::rdf_type());
    }

    #[test]
    fn builtin_prefixes_available() {
        let ts = parse_turtle("<A> rdfs:subClassOf <B> .").unwrap();
        assert_eq!(ts[0].predicate, crate::schema::rdfs_subclass_of());
    }

    #[test]
    fn predicate_and_object_lists() {
        let ts = parse_turtle(
            "<Hg> <dangerLevel> \"5\" ; <occursWith> <As> , <Sb> .",
        )
        .unwrap();
        assert_eq!(ts.len(), 3);
        assert!(ts.iter().all(|t| t.subject == Term::iri("Hg")));
    }

    #[test]
    fn numeric_and_typed_literals() {
        let ts = parse_turtle(
            "<Hg> <level> 5 . <Hg> <mass> \"200.59\"^^xsd:decimal .",
        )
        .unwrap();
        assert_eq!(ts[0].object, Term::lit("5"));
        assert!(matches!(
            &ts[1].object,
            Term::Literal { datatype: Some(dt), .. } if dt.ends_with("decimal")
        ));
    }

    #[test]
    fn comments_ignored() {
        let ts = parse_turtle("# header\n<a> <b> <c> . # trailing\n").unwrap();
        assert_eq!(ts.len(), 1);
    }

    #[test]
    fn errors() {
        assert!(parse_turtle("<a> <b> .").is_err()); // missing object
        assert!(parse_turtle("<a> <b> <c>").is_err()); // missing dot
        assert!(parse_turtle("nope:x <b> <c> .").is_err()); // unknown prefix
        assert!(parse_turtle("<unterminated").is_err());
        assert!(parse_turtle("bare <b> <c> .").is_err());
    }

    #[test]
    fn escaped_strings() {
        let ts = parse_turtle("<a> <b> \"say \\\"hi\\\"\\n\" .").unwrap();
        assert_eq!(ts[0].object, Term::lit("say \"hi\"\n"));
    }
}
