//! RDFS forward-chaining reasoner.
//!
//! CroSSE's ontological knowledge "may represent identity or hierarchy
//! information" (paper Sec. I-A). The reasoner materialises the standard
//! RDFS entailments that matter for such hierarchies:
//!
//! * `rdfs:subClassOf` transitivity (rdfs11)
//! * type inheritance through subclassing (rdfs9)
//! * `rdfs:subPropertyOf` transitivity (rdfs5)
//! * property inheritance: `<s p o>` and `p rdfs:subPropertyOf q` entail
//!   `<s q o>` (rdfs7)
//! * `rdfs:domain` / `rdfs:range` typing (rdfs2, rdfs3)
//!
//! Inferred triples are written into a separate graph so user assertions
//! stay distinguishable from entailments (the SESQL layer queries the
//! union).
//!
//! The closure is computed **id-natively and semi-naively**: the five
//! schema terms are interned once up front, all source triples are pulled
//! as interned `(s, p, o)` id triples, and a worklist drives derivation —
//! each fact is popped exactly once, indexed into incrementally-maintained
//! join indexes (super/sub class & property maps, per-class instance
//! lists, per-predicate extensions), and joined only against what is
//! already indexed. Every rule is written in both join orders, so no round
//! ever re-derives from the full fact set and no `Term` is cloned on the
//! hot path.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::schema;
use crate::store::{IdTriple, TripleStore};
use crate::term::{Term, TermId};

/// Compute the RDFS closure of the union of `source_graphs` and write any
/// *new* triples into `target_graph`. Returns the number of inferred
/// triples added.
pub fn materialize_rdfs(
    store: &TripleStore,
    source_graphs: &[&str],
    target_graph: &str,
) -> usize {
    let dict = store.dictionary();
    // Intern the schema vocabulary exactly once. (Interning is safe: it
    // adds terms to the dictionary without asserting triples.)
    let sub_class = dict.intern(&schema::rdfs_subclass_of());
    let sub_prop = dict.intern(&schema::rdfs_subproperty_of());
    let rdf_type = dict.intern(&schema::rdf_type());
    let domain = dict.intern(&schema::rdfs_domain());
    let range = dict.intern(&schema::rdfs_range());

    // Source facts as interned triples (deduplicated across graphs).
    let mut source: Vec<IdTriple> = Vec::new();
    store.match_id_pattern(source_graphs, (None, None, None), &mut source);

    // Derivation only recombines ids that already exist, so a literal-flag
    // snapshot taken now covers every id the loop will ever see.
    let literal = dict.literal_flags();
    let is_literal =
        |id: TermId| literal.get(id.0 as usize).copied().unwrap_or(false);

    let mut all: HashSet<IdTriple> = source.iter().copied().collect();
    let original = all.clone();
    let mut queue: VecDeque<IdTriple> = source.into_iter().collect();

    // Incremental join indexes over the processed prefix of `all`.
    let mut supers_c: HashMap<TermId, Vec<TermId>> = HashMap::new(); // class → superclasses
    let mut subs_c: HashMap<TermId, Vec<TermId>> = HashMap::new(); // class → subclasses
    let mut supers_p: HashMap<TermId, Vec<TermId>> = HashMap::new(); // prop → superprops
    let mut subs_p: HashMap<TermId, Vec<TermId>> = HashMap::new(); // prop → subprops
    let mut dom: HashMap<TermId, Vec<TermId>> = HashMap::new(); // prop → domain classes
    let mut rng: HashMap<TermId, Vec<TermId>> = HashMap::new(); // prop → range classes
    let mut instances: HashMap<TermId, Vec<TermId>> = HashMap::new(); // class → members
    let mut ext: HashMap<TermId, Vec<(TermId, TermId)>> = HashMap::new(); // prop → (s, o)

    while let Some((s, p, o)) = queue.pop_front() {
        // Index the fact first, so rules below can join it with itself.
        ext.entry(p).or_default().push((s, o));
        if p == sub_class {
            supers_c.entry(s).or_default().push(o);
            subs_c.entry(o).or_default().push(s);
        } else if p == sub_prop {
            supers_p.entry(s).or_default().push(o);
            subs_p.entry(o).or_default().push(s);
        } else if p == rdf_type {
            instances.entry(o).or_default().push(s);
        } else if p == domain {
            dom.entry(s).or_default().push(o);
        } else if p == range {
            rng.entry(s).or_default().push(o);
        }

        let mut derive = |t: IdTriple| {
            if all.insert(t) {
                queue.push_back(t);
            }
        };

        if p == sub_class {
            // rdfs11, (s ⊑ o) joined both ways with the indexed edges;
            // self-loops (A ⊑ A) are never derived.
            for &c in supers_c.get(&o).map(Vec::as_slice).unwrap_or(&[]) {
                if c != s {
                    derive((s, sub_class, c));
                }
            }
            for &x in subs_c.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                if x != o {
                    derive((x, sub_class, o));
                }
            }
            // rdfs9, schema side: members of the subclass gain the type.
            for &x in instances.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                derive((x, rdf_type, o));
            }
        } else if p == sub_prop {
            // rdfs5, both join orders.
            for &q in supers_p.get(&o).map(Vec::as_slice).unwrap_or(&[]) {
                if q != s {
                    derive((s, sub_prop, q));
                }
            }
            for &x in subs_p.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                if x != o {
                    derive((x, sub_prop, o));
                }
            }
            // rdfs7, schema side: the subproperty's extension lifts.
            for &(s2, o2) in ext.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                derive((s2, o, o2));
            }
        } else if p == rdf_type {
            // rdfs9, data side.
            for &d in supers_c.get(&o).map(Vec::as_slice).unwrap_or(&[]) {
                derive((s, rdf_type, d));
            }
        } else if p == domain {
            // rdfs2, schema side: retype existing subjects of the property.
            for &(s2, _) in ext.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                if !is_literal(s2) {
                    derive((s2, rdf_type, o));
                }
            }
        } else if p == range {
            // rdfs3, schema side.
            for &(_, o2) in ext.get(&s).map(Vec::as_slice).unwrap_or(&[]) {
                if !is_literal(o2) {
                    derive((o2, rdf_type, o));
                }
            }
        }

        // Data-side rules that apply to *every* fact.
        // rdfs7: (s p o), (p ⊑ q) ⊢ (s q o).
        for &q in supers_p.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
            derive((s, q, o));
        }
        // rdfs2 / rdfs3: domain & range typing.
        if !is_literal(s) {
            for &c in dom.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
                derive((s, rdf_type, c));
            }
        }
        if !is_literal(o) {
            for &c in rng.get(&p).map(Vec::as_slice).unwrap_or(&[]) {
                derive((o, rdf_type, c));
            }
        }
    }

    store.insert_ids(
        target_graph,
        all.into_iter().filter(|t| !original.contains(t)),
    )
}

/// All superclasses of `class` (transitive), not including itself, looked
/// up in the (already materialised or raw) graphs. Id-native: the walk
/// only materialises terms for its final answer.
pub fn superclasses(store: &TripleStore, graphs: &[&str], class: &Term) -> Vec<Term> {
    let dict = store.dictionary();
    let (Some(start), Some(sub_class)) =
        (dict.id_of(class), dict.id_of(&schema::rdfs_subclass_of()))
    else {
        return Vec::new();
    };
    let mut out: Vec<TermId> = Vec::new();
    let mut seen: HashSet<TermId> = HashSet::new();
    let mut frontier = vec![start];
    let mut matches = Vec::new();
    while let Some(c) = frontier.pop() {
        matches.clear();
        store.match_id_pattern(graphs, (Some(c), Some(sub_class), None), &mut matches);
        for &(_, _, sup) in &matches {
            if sup != start && seen.insert(sup) {
                out.push(sup);
                frontier.push(sup);
            }
        }
    }
    let reader = dict.reader();
    out.into_iter().map(|id| reader.term(id).clone()).collect()
}

/// All instances of `class`, including through subclasses (query-time
/// alternative to materialisation). Id-native walk, terms materialised
/// once at the end.
pub fn instances_of(store: &TripleStore, graphs: &[&str], class: &Term) -> Vec<Term> {
    let dict = store.dictionary();
    let Some(start) = dict.id_of(class) else {
        return Vec::new();
    };
    let rdf_type = dict.id_of(&schema::rdf_type());
    let sub_class = dict.id_of(&schema::rdfs_subclass_of());

    // classes = {class} ∪ subclasses*
    let mut classes = vec![start];
    let mut seen: HashSet<TermId> = std::iter::once(start).collect();
    let mut matches = Vec::new();
    if let Some(sub_class) = sub_class {
        let mut frontier = vec![start];
        while let Some(c) = frontier.pop() {
            matches.clear();
            store.match_id_pattern(graphs, (None, Some(sub_class), Some(c)), &mut matches);
            for &(sub, _, _) in &matches {
                if seen.insert(sub) {
                    classes.push(sub);
                    frontier.push(sub);
                }
            }
        }
    }
    let Some(rdf_type) = rdf_type else {
        return Vec::new();
    };
    let mut out: Vec<TermId> = Vec::new();
    let mut out_seen: HashSet<TermId> = HashSet::new();
    for c in classes {
        matches.clear();
        store.match_id_pattern(graphs, (None, Some(rdf_type), Some(c)), &mut matches);
        for &(inst, _, _) in &matches {
            if out_seen.insert(inst) {
                out.push(inst);
            }
        }
    }
    let reader = dict.reader();
    out.into_iter().map(|id| reader.term(id).clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Triple;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    fn setup() -> TripleStore {
        let store = TripleStore::new();
        let g = "kb";
        let sc = schema::rdfs_subclass_of();
        let ty = schema::rdf_type();
        store.insert(g, &Triple::new(iri("Metal"), sc.clone(), iri("Element")));
        store.insert(g, &Triple::new(iri("HeavyMetal"), sc.clone(), iri("Metal")));
        store.insert(g, &Triple::new(iri("Hg"), ty.clone(), iri("HeavyMetal")));
        store
    }

    #[test]
    fn subclass_transitivity() {
        let store = setup();
        let n = materialize_rdfs(&store, &["kb"], "inf");
        assert!(n >= 1);
        assert!(store.contains(
            "inf",
            &Triple::new(iri("HeavyMetal"), schema::rdfs_subclass_of(), iri("Element"))
        ));
    }

    #[test]
    fn type_inheritance() {
        let store = setup();
        materialize_rdfs(&store, &["kb"], "inf");
        let ty = schema::rdf_type();
        assert!(store.contains("inf", &Triple::new(iri("Hg"), ty.clone(), iri("Metal"))));
        assert!(store.contains("inf", &Triple::new(iri("Hg"), ty, iri("Element"))));
    }

    #[test]
    fn subproperty_inheritance() {
        let store = TripleStore::new();
        let sp = schema::rdfs_subproperty_of();
        store.insert("kb", &Triple::new(iri("oreAssemblage"), sp, iri("relatedTo")));
        store.insert(
            "kb",
            &Triple::new(iri("Hg"), iri("oreAssemblage"), iri("As")),
        );
        materialize_rdfs(&store, &["kb"], "inf");
        assert!(store.contains("inf", &Triple::new(iri("Hg"), iri("relatedTo"), iri("As"))));
    }

    #[test]
    fn domain_and_range_typing() {
        let store = TripleStore::new();
        store.insert(
            "kb",
            &Triple::new(iri("analysedBy"), schema::rdfs_domain(), iri("Landfill")),
        );
        store.insert(
            "kb",
            &Triple::new(iri("analysedBy"), schema::rdfs_range(), iri("Lab")),
        );
        store.insert("kb", &Triple::new(iri("BasseDiStura"), iri("analysedBy"), iri("ArpaLab")));
        materialize_rdfs(&store, &["kb"], "inf");
        let ty = schema::rdf_type();
        assert!(store.contains(
            "inf",
            &Triple::new(iri("BasseDiStura"), ty.clone(), iri("Landfill"))
        ));
        assert!(store.contains("inf", &Triple::new(iri("ArpaLab"), ty, iri("Lab"))));
    }

    #[test]
    fn idempotent_second_run() {
        let store = setup();
        let n1 = materialize_rdfs(&store, &["kb", "inf"], "inf");
        assert!(n1 > 0);
        let n2 = materialize_rdfs(&store, &["kb", "inf"], "inf");
        assert_eq!(n2, 0, "closure reached, nothing new");
    }

    #[test]
    fn cycle_terminates() {
        let store = TripleStore::new();
        let sc = schema::rdfs_subclass_of();
        store.insert("kb", &Triple::new(iri("A"), sc.clone(), iri("B")));
        store.insert("kb", &Triple::new(iri("B"), sc.clone(), iri("A")));
        // Must not loop forever.
        materialize_rdfs(&store, &["kb"], "inf");
    }

    #[test]
    fn chain_closure_has_exact_size() {
        // A subclass chain C0 ⊑ C1 ⊑ … ⊑ C(n-1) with k instances of C0:
        // closure adds n(n-1)/2 − (n−1) subclass pairs and k·(n−1) types.
        let n = 12usize;
        let k = 7usize;
        let store = TripleStore::new();
        let sc = schema::rdfs_subclass_of();
        let ty = schema::rdf_type();
        for i in 0..n - 1 {
            store.insert(
                "kb",
                &Triple::new(iri(&format!("C{i}")), sc.clone(), iri(&format!("C{}", i + 1))),
            );
        }
        for j in 0..k {
            store.insert("kb", &Triple::new(iri(&format!("x{j}")), ty.clone(), iri("C0")));
        }
        let added = materialize_rdfs(&store, &["kb"], "inf");
        let expected_subclass = n * (n - 1) / 2 - (n - 1);
        let expected_types = k * (n - 1);
        assert_eq!(added, expected_subclass + expected_types);
        // Spot check the farthest derivation.
        assert!(store.contains(
            "inf",
            &Triple::new(iri("x0"), ty, iri(&format!("C{}", n - 1)))
        ));
    }

    #[test]
    fn superclasses_query() {
        let store = setup();
        let sup = superclasses(&store, &["kb"], &iri("HeavyMetal"));
        assert_eq!(sup.len(), 2);
        assert!(sup.contains(&iri("Metal")));
        assert!(sup.contains(&iri("Element")));
    }

    #[test]
    fn instances_of_walks_subclasses() {
        let store = setup();
        let inst = instances_of(&store, &["kb"], &iri("Element"));
        assert_eq!(inst, vec![iri("Hg")]);
        let inst = instances_of(&store, &["kb"], &iri("HeavyMetal"));
        assert_eq!(inst, vec![iri("Hg")]);
    }
}
