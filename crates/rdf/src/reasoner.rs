//! RDFS forward-chaining reasoner.
//!
//! CroSSE's ontological knowledge "may represent identity or hierarchy
//! information" (paper Sec. I-A). The reasoner materialises the standard
//! RDFS entailments that matter for such hierarchies:
//!
//! * `rdfs:subClassOf` transitivity (rdfs11)
//! * type inheritance through subclassing (rdfs9)
//! * `rdfs:subPropertyOf` transitivity (rdfs5)
//! * property inheritance: `<s p o>` and `p rdfs:subPropertyOf q` entail
//!   `<s q o>` (rdfs7)
//! * `rdfs:domain` / `rdfs:range` typing (rdfs2, rdfs3)
//!
//! Inferred triples are written into a separate graph so user assertions
//! stay distinguishable from entailments (the SESQL layer queries the
//! union).

use std::collections::HashSet;

use crate::schema;
use crate::store::{Triple, TriplePattern, TripleStore};
use crate::term::Term;

/// Compute the RDFS closure of the union of `source_graphs` and write any
/// *new* triples into `target_graph`. Returns the number of inferred
/// triples added.
///
/// Semi-naive evaluation: each round derives only from the previous
/// round's *delta*, joining through predicate-keyed indexes, so cost is
/// proportional to derived facts rather than to |closure|² per round.
pub fn materialize_rdfs(
    store: &TripleStore,
    source_graphs: &[&str],
    target_graph: &str,
) -> usize {
    use std::collections::HashMap;

    let sub_class = schema::rdfs_subclass_of();
    let sub_prop = schema::rdfs_subproperty_of();
    let rdf_type = schema::rdf_type();
    let domain = schema::rdfs_domain();
    let range = schema::rdfs_range();

    let mut all: HashSet<Triple> = HashSet::new();
    for g in source_graphs {
        for t in store.graph_triples(g) {
            all.insert(t);
        }
    }
    let original = all.clone();

    // Schema indexes, rebuilt whenever a round derives new schema triples
    // (rare: only subClassOf/subPropertyOf transitivity feeds them).
    //   superclasses: C  -> its direct superclasses
    //   superprops:   p  -> its direct superproperties
    //   dom/rng:      p  -> asserted classes
    let build_schema = |all: &HashSet<Triple>| {
        let mut superclasses: HashMap<Term, Vec<Term>> = HashMap::new();
        let mut superprops: HashMap<Term, Vec<Term>> = HashMap::new();
        let mut dom: HashMap<Term, Vec<Term>> = HashMap::new();
        let mut rng: HashMap<Term, Vec<Term>> = HashMap::new();
        for t in all {
            if t.predicate == sub_class {
                superclasses.entry(t.subject.clone()).or_default().push(t.object.clone());
            } else if t.predicate == sub_prop {
                superprops.entry(t.subject.clone()).or_default().push(t.object.clone());
            } else if t.predicate == domain {
                dom.entry(t.subject.clone()).or_default().push(t.object.clone());
            } else if t.predicate == range {
                rng.entry(t.subject.clone()).or_default().push(t.object.clone());
            }
        }
        (superclasses, superprops, dom, rng)
    };

    let (mut superclasses, mut superprops, mut dom, mut rng) = build_schema(&all);
    let mut delta: Vec<Triple> = all.iter().cloned().collect();

    while !delta.is_empty() {
        let mut fresh: Vec<Triple> = Vec::new();
        let derive = |t: Triple, fresh: &mut Vec<Triple>| {
            if !all.contains(&t) && !fresh.contains(&t) {
                fresh.push(t);
            }
        };

        for t in &delta {
            // rdfs11: (A ⊑ B), (B ⊑ C) ⊢ (A ⊑ C) — extend through the
            // *current* superclass index.
            if t.predicate == sub_class {
                if let Some(ups) = superclasses.get(&t.object) {
                    for c in ups {
                        if *c != t.subject {
                            derive(
                                Triple::new(t.subject.clone(), sub_class.clone(), c.clone()),
                                &mut fresh,
                            );
                        }
                    }
                }
            }
            // rdfs5: subPropertyOf transitivity.
            if t.predicate == sub_prop {
                if let Some(ups) = superprops.get(&t.object) {
                    for p in ups {
                        if *p != t.subject {
                            derive(
                                Triple::new(t.subject.clone(), sub_prop.clone(), p.clone()),
                                &mut fresh,
                            );
                        }
                    }
                }
            }
            // rdfs9: (x type C), (C ⊑ D) ⊢ (x type D).
            if t.predicate == rdf_type {
                if let Some(ups) = superclasses.get(&t.object) {
                    for c in ups {
                        derive(
                            Triple::new(t.subject.clone(), rdf_type.clone(), c.clone()),
                            &mut fresh,
                        );
                    }
                }
            }
            // rdfs7: (s p o), (p ⊑ q) ⊢ (s q o).
            if let Some(ups) = superprops.get(&t.predicate) {
                for q in ups {
                    derive(
                        Triple::new(t.subject.clone(), q.clone(), t.object.clone()),
                        &mut fresh,
                    );
                }
            }
            // rdfs2 / rdfs3: domain & range typing.
            if let Some(classes) = dom.get(&t.predicate) {
                if !t.subject.is_literal() {
                    for c in classes {
                        derive(
                            Triple::new(t.subject.clone(), rdf_type.clone(), c.clone()),
                            &mut fresh,
                        );
                    }
                }
            }
            if let Some(classes) = rng.get(&t.predicate) {
                if !t.object.is_literal() {
                    for c in classes {
                        derive(
                            Triple::new(t.object.clone(), rdf_type.clone(), c.clone()),
                            &mut fresh,
                        );
                    }
                }
            }
        }

        let schema_grew = fresh.iter().any(|t| {
            t.predicate == sub_class
                || t.predicate == sub_prop
                || t.predicate == domain
                || t.predicate == range
        });
        for t in &fresh {
            all.insert(t.clone());
        }
        if schema_grew {
            // New schema edges can unlock derivations from *old* facts
            // (e.g. a longer subclass chain): rebuild indexes and re-seed
            // the delta with the full set once.
            let rebuilt = build_schema(&all);
            superclasses = rebuilt.0;
            superprops = rebuilt.1;
            dom = rebuilt.2;
            rng = rebuilt.3;
            delta = all.iter().cloned().collect();
        } else {
            delta = fresh;
        }
    }

    let inferred: Vec<Triple> = all.difference(&original).cloned().collect();
    store.insert_all(target_graph, inferred.iter())
}

/// All superclasses of `class` (transitive), not including itself, looked
/// up in the (already materialised or raw) graphs.
pub fn superclasses(store: &TripleStore, graphs: &[&str], class: &Term) -> Vec<Term> {
    let mut out = Vec::new();
    let mut frontier = vec![class.clone()];
    let sub_class = schema::rdfs_subclass_of();
    while let Some(c) = frontier.pop() {
        let found = store.match_pattern(
            graphs,
            &TriplePattern {
                subject: Some(c),
                predicate: Some(sub_class.clone()),
                object: None,
            },
        );
        for t in found {
            if !out.contains(&t.object) && t.object != *class {
                out.push(t.object.clone());
                frontier.push(t.object);
            }
        }
    }
    out
}

/// All instances of `class`, including through subclasses (query-time
/// alternative to materialisation).
pub fn instances_of(store: &TripleStore, graphs: &[&str], class: &Term) -> Vec<Term> {
    let rdf_type = schema::rdf_type();
    let sub_class = schema::rdfs_subclass_of();
    // classes = {class} ∪ subclasses*
    let mut classes = vec![class.clone()];
    let mut frontier = vec![class.clone()];
    while let Some(c) = frontier.pop() {
        let subs = store.match_pattern(
            graphs,
            &TriplePattern {
                subject: None,
                predicate: Some(sub_class.clone()),
                object: Some(c),
            },
        );
        for t in subs {
            if !classes.contains(&t.subject) {
                classes.push(t.subject.clone());
                frontier.push(t.subject);
            }
        }
    }
    let mut out = Vec::new();
    for c in classes {
        let found = store.match_pattern(
            graphs,
            &TriplePattern {
                subject: None,
                predicate: Some(rdf_type.clone()),
                object: Some(c),
            },
        );
        for t in found {
            if !out.contains(&t.subject) {
                out.push(t.subject);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }

    fn setup() -> TripleStore {
        let store = TripleStore::new();
        let g = "kb";
        let sc = schema::rdfs_subclass_of();
        let ty = schema::rdf_type();
        store.insert(g, &Triple::new(iri("Metal"), sc.clone(), iri("Element")));
        store.insert(g, &Triple::new(iri("HeavyMetal"), sc.clone(), iri("Metal")));
        store.insert(g, &Triple::new(iri("Hg"), ty.clone(), iri("HeavyMetal")));
        store
    }

    #[test]
    fn subclass_transitivity() {
        let store = setup();
        let n = materialize_rdfs(&store, &["kb"], "inf");
        assert!(n >= 1);
        assert!(store.contains(
            "inf",
            &Triple::new(iri("HeavyMetal"), schema::rdfs_subclass_of(), iri("Element"))
        ));
    }

    #[test]
    fn type_inheritance() {
        let store = setup();
        materialize_rdfs(&store, &["kb"], "inf");
        let ty = schema::rdf_type();
        assert!(store.contains("inf", &Triple::new(iri("Hg"), ty.clone(), iri("Metal"))));
        assert!(store.contains("inf", &Triple::new(iri("Hg"), ty, iri("Element"))));
    }

    #[test]
    fn subproperty_inheritance() {
        let store = TripleStore::new();
        let sp = schema::rdfs_subproperty_of();
        store.insert("kb", &Triple::new(iri("oreAssemblage"), sp, iri("relatedTo")));
        store.insert(
            "kb",
            &Triple::new(iri("Hg"), iri("oreAssemblage"), iri("As")),
        );
        materialize_rdfs(&store, &["kb"], "inf");
        assert!(store.contains("inf", &Triple::new(iri("Hg"), iri("relatedTo"), iri("As"))));
    }

    #[test]
    fn domain_and_range_typing() {
        let store = TripleStore::new();
        store.insert(
            "kb",
            &Triple::new(iri("analysedBy"), schema::rdfs_domain(), iri("Landfill")),
        );
        store.insert(
            "kb",
            &Triple::new(iri("analysedBy"), schema::rdfs_range(), iri("Lab")),
        );
        store.insert("kb", &Triple::new(iri("BasseDiStura"), iri("analysedBy"), iri("ArpaLab")));
        materialize_rdfs(&store, &["kb"], "inf");
        let ty = schema::rdf_type();
        assert!(store.contains(
            "inf",
            &Triple::new(iri("BasseDiStura"), ty.clone(), iri("Landfill"))
        ));
        assert!(store.contains("inf", &Triple::new(iri("ArpaLab"), ty, iri("Lab"))));
    }

    #[test]
    fn idempotent_second_run() {
        let store = setup();
        let n1 = materialize_rdfs(&store, &["kb", "inf"], "inf");
        assert!(n1 > 0);
        let n2 = materialize_rdfs(&store, &["kb", "inf"], "inf");
        assert_eq!(n2, 0, "closure reached, nothing new");
    }

    #[test]
    fn cycle_terminates() {
        let store = TripleStore::new();
        let sc = schema::rdfs_subclass_of();
        store.insert("kb", &Triple::new(iri("A"), sc.clone(), iri("B")));
        store.insert("kb", &Triple::new(iri("B"), sc.clone(), iri("A")));
        // Must not loop forever.
        materialize_rdfs(&store, &["kb"], "inf");
    }

    #[test]
    fn chain_closure_has_exact_size() {
        // A subclass chain C0 ⊑ C1 ⊑ … ⊑ C(n-1) with k instances of C0:
        // closure adds n(n-1)/2 − (n−1) subclass pairs and k·(n−1) types.
        let n = 12usize;
        let k = 7usize;
        let store = TripleStore::new();
        let sc = schema::rdfs_subclass_of();
        let ty = schema::rdf_type();
        for i in 0..n - 1 {
            store.insert(
                "kb",
                &Triple::new(iri(&format!("C{i}")), sc.clone(), iri(&format!("C{}", i + 1))),
            );
        }
        for j in 0..k {
            store.insert("kb", &Triple::new(iri(&format!("x{j}")), ty.clone(), iri("C0")));
        }
        let added = materialize_rdfs(&store, &["kb"], "inf");
        let expected_subclass = n * (n - 1) / 2 - (n - 1);
        let expected_types = k * (n - 1);
        assert_eq!(added, expected_subclass + expected_types);
        // Spot check the farthest derivation.
        assert!(store.contains(
            "inf",
            &Triple::new(iri("x0"), ty, iri(&format!("C{}", n - 1)))
        ));
    }

    #[test]
    fn superclasses_query() {
        let store = setup();
        let sup = superclasses(&store, &["kb"], &iri("HeavyMetal"));
        assert_eq!(sup.len(), 2);
        assert!(sup.contains(&iri("Metal")));
        assert!(sup.contains(&iri("Element")));
    }

    #[test]
    fn instances_of_walks_subclasses() {
        let store = setup();
        let inst = instances_of(&store, &["kb"], &iri("Element"));
        assert_eq!(inst, vec![iri("Hg")]);
        let inst = instances_of(&store, &["kb"], &iri("HeavyMetal"));
        assert_eq!(inst, vec![iri("Hg")]);
    }
}
