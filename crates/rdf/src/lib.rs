//! # crosse-rdf
//!
//! The "semantic platform" substrate of CroSSE (*Contextually-Enriched
//! Querying of Integrated Data Sources*, ICDE 2018): an indexed RDF triple
//! store with named graphs, a SPARQL subset, RDFS inference, and the
//! provenance machinery of the paper's Fig. 4 (reified statements,
//! `userStatement` / `userBelief` edges, references).
//!
//! The paper builds this layer on Apache Jena; here it is implemented from
//! scratch:
//!
//! * [`store::TripleStore`] — SPO/POS/OSP-indexed named graphs over an
//!   interning dictionary.
//! * [`sparql`] — parser + evaluator for SELECT/ASK/CONSTRUCT with BGPs,
//!   FILTER, OPTIONAL, UNION, MINUS, VALUES, DISTINCT, ORDER BY,
//!   LIMIT/OFFSET, aggregates (`COUNT`/`SUM`/`MIN`/`MAX`/`AVG`/`SAMPLE`
//!   with GROUP BY + HAVING), and property paths (`p+`, `p*`, sequences
//!   `p1/p2`, alternatives `p1|p2`, inverse `^p`).
//! * [`reasoner`] — RDFS forward chaining (subclass/subproperty closure,
//!   type inheritance, domain/range typing).
//! * [`provenance::KnowledgeBase`] — per-user personal graphs, public
//!   statement browsing, belief import.
//! * [`stored::StoredQueries`] — the named SPARQL queries that SESQL's
//!   `REPLACECONSTANT` / `REPLACEVARIABLE` enrichments may reference
//!   (paper Example 4.5).
//!
//! ```
//! use crosse_rdf::provenance::KnowledgeBase;
//! use crosse_rdf::store::Triple;
//! use crosse_rdf::term::Term;
//!
//! let kb = KnowledgeBase::new();
//! kb.register_user("director");
//! kb.assert_statement(
//!     "director",
//!     &Triple::new(Term::iri("Hg"), Term::iri("dangerLevel"), Term::lit("5")),
//! ).unwrap();
//! let sols = kb.query_as("director", "SELECT ?o WHERE { <Hg> <dangerLevel> ?o }").unwrap();
//! assert_eq!(sols.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod error;
pub mod export;
pub mod persist;
pub mod provenance;
pub mod reasoner;
pub mod schema;
pub mod sparql;
pub mod store;
pub mod stored;
pub mod term;
pub mod turtle;

pub use error::{Error, Result};
pub use provenance::{KnowledgeBase, StatementId};
pub use sparql::eval::{QueryOutcome, Solutions};
pub use store::{Triple, TriplePattern, TripleStore};
pub use term::{Dictionary, Term, TermId};
