//! The triple store: named graphs with SPO/POS/OSP indexes.
//!
//! The store holds one graph per name (CroSSE gives each user a personal
//! graph plus a shared/common graph) over a single shared term dictionary.
//! Each graph keeps the classic three orderings so any triple-pattern shape
//! resolves through a range scan:
//!
//! * `(s ? ?)`, `(s p ?)`, `(s p o)` → SPO
//! * `(? p ?)`, `(? p o)`           → POS
//! * `(? ? o)`, `(s ? o)`           → OSP
//! * `(? ? ?)`                      → SPO full scan

use std::collections::BTreeSet;
use std::ops::Bound;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::persist::{encode_rdf_op, RdfOp, RdfRedoSink};
use crate::term::{Dictionary, Term, TermId};

/// Take the sink's barrier in read mode for one log-then-apply critical
/// section (no-op when no sink is attached). Must be acquired **before**
/// the graphs lock — the checkpointer takes the write side and then reads
/// the store, so acquiring in the other order deadlocks.
fn sink_guard(
    sink: &Option<Arc<dyn RdfRedoSink>>,
) -> Option<parking_lot::RwLockReadGuard<'_, ()>> {
    sink.as_ref().map(|s| s.barrier().read())
}

/// Apply the sink's durability policy (fsync if due). Called **after** the
/// mutator's critical section so no graph lock is held across the fsync.
fn flush_sink(sink: &Option<Arc<dyn RdfRedoSink>>) -> Result<()> {
    match sink {
        Some(s) => s.flush(),
        None => Ok(()),
    }
}

/// A concrete triple of terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple { subject, predicate, object }
    }
}

impl std::fmt::Display for Triple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// An interned triple.
pub(crate) type IdTriple = (TermId, TermId, TermId);

/// Pattern over interned ids; `None` is a wildcard.
pub(crate) type IdPattern = (Option<TermId>, Option<TermId>, Option<TermId>);

#[derive(Debug, Default)]
struct GraphData {
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl GraphData {
    fn insert(&mut self, (s, p, o): IdTriple) -> bool {
        let fresh = self.spo.insert((s, p, o));
        if fresh {
            self.pos.insert((p, o, s));
            self.osp.insert((o, s, p));
        }
        fresh
    }

    fn remove(&mut self, (s, p, o): IdTriple) -> bool {
        let removed = self.spo.remove(&(s, p, o));
        if removed {
            self.pos.remove(&(p, o, s));
            self.osp.remove(&(o, s, p));
        }
        removed
    }

    fn len(&self) -> usize {
        self.spo.len()
    }

    fn contains(&self, t: IdTriple) -> bool {
        self.spo.contains(&t)
    }

    /// Match a pattern; pushes results (in SPO component order) into `out`.
    fn matching(&self, (s, p, o): IdPattern, out: &mut Vec<IdTriple>) {
        fn range<F: Fn((TermId, TermId, TermId)) -> IdTriple>(
            set: &BTreeSet<(TermId, TermId, TermId)>,
            first: TermId,
            second: Option<TermId>,
            reorder: F,
            out: &mut Vec<IdTriple>,
        ) {
            let lo;
            let hi;
            match second {
                None => {
                    lo = (first, TermId(0), TermId(0));
                    hi = (TermId(first.0.wrapping_add(1)), TermId(0), TermId(0));
                }
                Some(snd) => {
                    lo = (first, snd, TermId(0));
                    hi = (first, TermId(snd.0.wrapping_add(1)), TermId(0));
                }
            }
            for &t in set.range((Bound::Included(lo), Bound::Excluded(hi))) {
                out.push(reorder(t));
            }
        }
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains((s, p, o)) {
                    out.push((s, p, o));
                }
            }
            (Some(s), p, None) => range(&self.spo, s, p, |t| t, out),
            (Some(s), None, Some(o)) => {
                range(&self.osp, o, Some(s), |(o, s, p)| (s, p, o), out)
            }
            (None, Some(p), o) => range(&self.pos, p, o, |(p, o, s)| (s, p, o), out),
            (None, None, Some(o)) => range(&self.osp, o, None, |(o, s, p)| (s, p, o), out),
            (None, None, None) => out.extend(self.spo.iter().copied()),
        }
    }

    /// Number of triples matching a pattern (same index selection as
    /// [`Self::matching`]), without materialising them, walking at most
    /// `cap` entries — the evaluator's cardinality estimator only needs
    /// relative sizes, so anything ≥ `cap` reports as `cap`.
    fn count(&self, (s, p, o): IdPattern, cap: usize) -> usize {
        fn count_range(
            set: &BTreeSet<(TermId, TermId, TermId)>,
            first: TermId,
            second: Option<TermId>,
            cap: usize,
        ) -> usize {
            let (lo, hi) = match second {
                None => (
                    (first, TermId(0), TermId(0)),
                    (TermId(first.0.wrapping_add(1)), TermId(0), TermId(0)),
                ),
                Some(snd) => (
                    (first, snd, TermId(0)),
                    (first, TermId(snd.0.wrapping_add(1)), TermId(0)),
                ),
            };
            set.range((Bound::Included(lo), Bound::Excluded(hi)))
                .take(cap)
                .count()
        }
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => usize::from(self.contains((s, p, o))),
            (Some(s), p, None) => count_range(&self.spo, s, p, cap),
            (Some(s), None, Some(o)) => count_range(&self.osp, o, Some(s), cap),
            (None, Some(p), o) => count_range(&self.pos, p, o, cap),
            (None, None, Some(o)) => count_range(&self.osp, o, None, cap),
            (None, None, None) => self.len().min(cap),
        }
    }
}

/// A probe handle over pre-resolved graphs (see [`TripleStore::with_prober`]).
pub(crate) struct Prober<'a> {
    graphs: Vec<&'a GraphData>,
}

impl Prober<'_> {
    /// Match a pattern into `out` (appending), deduplicating across graphs
    /// in place when more than one graph is probed.
    pub(crate) fn probe(&self, pat: IdPattern, out: &mut Vec<IdTriple>) {
        let before = out.len();
        for g in &self.graphs {
            g.matching(pat, out);
        }
        if self.graphs.len() > 1 {
            dedup_tail(out, before);
        }
    }
}

/// Sort and deduplicate `out[before..]` in place (no side allocation) —
/// the cross-graph union step shared by every multi-graph probe.
fn dedup_tail(out: &mut Vec<IdTriple>, before: usize) {
    if out.len() <= before + 1 {
        return;
    }
    out[before..].sort_unstable();
    let mut w = before + 1;
    for r in (before + 1)..out.len() {
        if out[r] != out[w - 1] {
            out[w] = out[r];
            w += 1;
        }
    }
    out.truncate(w);
}

/// A pattern of concrete terms with wildcards.
#[derive(Debug, Clone, Default)]
pub struct TriplePattern {
    pub subject: Option<Term>,
    pub predicate: Option<Term>,
    pub object: Option<Term>,
}

/// The multi-graph triple store. Cheap to clone (shared interior).
#[derive(Debug, Clone)]
pub struct TripleStore {
    dict: Dictionary,
    graphs: Arc<RwLock<std::collections::BTreeMap<String, GraphData>>>,
    /// Mutation counter: bumped by every state-changing operation, so
    /// query-result caches (e.g. the SESQL engine's SPARQL-leg cache) can
    /// validate entries without diffing graphs.
    version: Arc<std::sync::atomic::AtomicU64>,
    /// Redo sink when the store is durable; shared across clones.
    sink: Arc<RwLock<Option<Arc<dyn RdfRedoSink>>>>,
    /// First WAL append failure. Mutators whose signatures cannot carry a
    /// `Result` (e.g. [`TripleStore::insert`] returning `bool`) refuse the
    /// write and park the error here; [`TripleStore::storage_check`]
    /// surfaces it.
    storage_err: Arc<RwLock<Option<Error>>>,
}

impl Default for TripleStore {
    fn default() -> Self {
        TripleStore {
            dict: Dictionary::default(),
            graphs: Arc::new(RwLock::new_labeled(
                "rdf.graphs",
                std::collections::BTreeMap::new(),
            )),
            version: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            sink: Arc::new(RwLock::new_labeled("rdf.sink", None)),
            storage_err: Arc::new(RwLock::new_labeled("rdf.storage_err", None)),
        }
    }
}

impl TripleStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Current mutation version. Any change to any graph increases it.
    pub fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump_version(&self) {
        self.version.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }

    fn sink(&self) -> Option<Arc<dyn RdfRedoSink>> {
        self.sink.read().clone()
    }

    /// Attach a redo sink: all future mutations log through it. Called
    /// once, right after recovery has replayed the log into this store.
    pub fn attach_sink(&self, sink: Arc<dyn RdfRedoSink>) {
        *self.sink.write() = Some(sink);
    }

    /// Whether this store logs to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.sink.read().is_some()
    }

    fn note_storage_err(&self, e: Error) {
        self.storage_err.write().get_or_insert(e);
    }

    /// Surface the first WAL append failure, if any. Mutators returning
    /// `bool`/`usize` cannot propagate one directly: they refuse the write
    /// and park the error here. Engines call this after mutation batches.
    pub fn storage_check(&self) -> Result<()> {
        match self.storage_err.read().clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Create a graph if absent (inserting into a missing graph also
    /// creates it; this is for explicitly registering empty graphs).
    pub fn ensure_graph(&self, name: &str) {
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let mut graphs = self.graphs.write();
            if graphs.contains_key(name) {
                return;
            }
            if let Some(s) = &sink {
                if let Err(e) =
                    s.log(&encode_rdf_op(&RdfOp::EnsureGraph { graph: name }))
                {
                    self.note_storage_err(e);
                    return;
                }
            }
            graphs.entry(name.to_string()).or_default();
        }
        if let Err(e) = flush_sink(&sink) {
            self.note_storage_err(e);
        }
    }

    pub fn graph_names(&self) -> Vec<String> {
        self.graphs.read().keys().cloned().collect()
    }

    pub fn has_graph(&self, name: &str) -> bool {
        self.graphs.read().contains_key(name)
    }

    pub fn drop_graph(&self, name: &str) -> Result<()> {
        let sink = self.sink();
        {
            let _barrier = sink_guard(&sink);
            let mut graphs = self.graphs.write();
            if !graphs.contains_key(name) {
                return Err(Error::store(format!("graph `{name}` does not exist")));
            }
            if let Some(s) = &sink {
                s.log(&encode_rdf_op(&RdfOp::DropGraph { graph: name }))?;
            }
            graphs.remove(name);
            drop(graphs);
            self.bump_version();
        }
        flush_sink(&sink)
    }

    /// Insert a triple into a graph; returns false if it was already there
    /// (or if the write-ahead append failed — see
    /// [`TripleStore::storage_check`]).
    pub fn insert(&self, graph: &str, triple: &Triple) -> bool {
        let sink = self.sink();
        let fresh = {
            let _barrier = sink_guard(&sink);
            let t = (
                self.dict.intern(&triple.subject),
                self.dict.intern(&triple.predicate),
                self.dict.intern(&triple.object),
            );
            self.bump_version();
            let mut graphs = self.graphs.write();
            if let Some(s) = &sink {
                let op =
                    RdfOp::InsertAll { graph, triples: std::slice::from_ref(triple) };
                if let Err(e) = s.log(&encode_rdf_op(&op)) {
                    self.note_storage_err(e);
                    return false;
                }
            }
            graphs.entry(graph.to_string()).or_default().insert(t)
        };
        if let Err(e) = flush_sink(&sink) {
            self.note_storage_err(e);
        }
        fresh
    }

    /// Insert many triples; returns how many were new. One redo record
    /// covers the whole batch, so recovery replays it all-or-nothing.
    pub fn insert_all<'t>(
        &self,
        graph: &str,
        triples: impl IntoIterator<Item = &'t Triple>,
    ) -> usize {
        let sink = self.sink();
        let fresh = {
            let _barrier = sink_guard(&sink);
            self.bump_version();
            let mut graphs = self.graphs.write();
            if let Some(s) = &sink {
                let batch: Vec<Triple> = triples.into_iter().cloned().collect();
                if !batch.is_empty() {
                    let op = RdfOp::InsertAll { graph, triples: &batch };
                    if let Err(e) = s.log(&encode_rdf_op(&op)) {
                        self.note_storage_err(e);
                        return 0;
                    }
                }
                let g = graphs.entry(graph.to_string()).or_default();
                batch
                    .iter()
                    .filter(|triple| {
                        g.insert((
                            self.dict.intern(&triple.subject),
                            self.dict.intern(&triple.predicate),
                            self.dict.intern(&triple.object),
                        ))
                    })
                    .count()
            } else {
                let g = graphs.entry(graph.to_string()).or_default();
                let mut fresh = 0;
                for triple in triples {
                    let t = (
                        self.dict.intern(&triple.subject),
                        self.dict.intern(&triple.predicate),
                        self.dict.intern(&triple.object),
                    );
                    if g.insert(t) {
                        fresh += 1;
                    }
                }
                fresh
            }
        };
        if let Err(e) = flush_sink(&sink) {
            self.note_storage_err(e);
        }
        fresh
    }

    /// Remove a triple; returns true if present.
    pub fn remove(&self, graph: &str, triple: &Triple) -> bool {
        let sink = self.sink();
        let removed = {
            let _barrier = sink_guard(&sink);
            let (Some(s), Some(p), Some(o)) = (
                self.dict.id_of(&triple.subject),
                self.dict.id_of(&triple.predicate),
                self.dict.id_of(&triple.object),
            ) else {
                return false;
            };
            self.bump_version();
            let mut graphs = self.graphs.write();
            let Some(g) = graphs.get_mut(graph) else {
                return false;
            };
            if !g.contains((s, p, o)) {
                return false;
            }
            if let Some(sk) = &sink {
                let op = RdfOp::Remove { graph, triple };
                if let Err(e) = sk.log(&encode_rdf_op(&op)) {
                    self.note_storage_err(e);
                    return false;
                }
            }
            g.remove((s, p, o))
        };
        if let Err(e) = flush_sink(&sink) {
            self.note_storage_err(e);
        }
        removed
    }

    pub fn contains(&self, graph: &str, triple: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&triple.subject),
            self.dict.id_of(&triple.predicate),
            self.dict.id_of(&triple.object),
        ) else {
            return false;
        };
        self.graphs
            .read()
            .get(graph)
            .map(|g| g.contains((s, p, o)))
            .unwrap_or(false)
    }

    /// Triple count of one graph.
    pub fn graph_len(&self, graph: &str) -> usize {
        self.graphs.read().get(graph).map(|g| g.len()).unwrap_or(0)
    }

    /// Total triples across all graphs.
    pub fn len(&self) -> usize {
        self.graphs.read().values().map(|g| g.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn to_id_pattern(&self, pattern: &TriplePattern) -> Option<IdPattern> {
        let conv = |t: &Option<Term>| -> Option<Option<TermId>> {
            match t {
                None => Some(None),
                // A constant term that was never interned matches nothing.
                Some(term) => self.dict.id_of(term).map(Some),
            }
        };
        Some((
            conv(&pattern.subject)?,
            conv(&pattern.predicate)?,
            conv(&pattern.object)?,
        ))
    }

    /// Match a pattern against the union of `graphs` (deduplicated).
    pub fn match_pattern(&self, graphs: &[&str], pattern: &TriplePattern) -> Vec<Triple> {
        let mut ids = Vec::new();
        self.match_pattern_ids(graphs, pattern, &mut ids);
        ids.into_iter()
            .map(|(s, p, o)| {
                Triple::new(self.dict.term_of(s), self.dict.term_of(p), self.dict.term_of(o))
            })
            .collect()
    }

    pub(crate) fn match_pattern_ids(
        &self,
        graphs: &[&str],
        pattern: &TriplePattern,
        out: &mut Vec<IdTriple>,
    ) {
        let Some(pat) = self.to_id_pattern(pattern) else {
            return;
        };
        self.match_id_pattern(graphs, pat, out);
    }

    pub(crate) fn match_id_pattern(
        &self,
        graphs: &[&str],
        pat: IdPattern,
        out: &mut Vec<IdTriple>,
    ) {
        let store = self.graphs.read();
        let before = out.len();
        for name in graphs {
            if let Some(g) = store.get(*name) {
                g.matching(pat, out);
            }
        }
        if graphs.len() > 1 {
            // Deduplicate across graphs (a triple may be asserted by
            // several users).
            dedup_tail(out, before);
        }
    }

    /// Run `f` with a [`Prober`] that has resolved `graphs` once: batch
    /// probe loops pay the store lock and the graph-name lookups a single
    /// time instead of once per probe. The store's graph map is read-locked
    /// for the duration of `f` — do not mutate the store inside.
    pub(crate) fn with_prober<R>(
        &self,
        graphs: &[&str],
        f: impl FnOnce(&Prober<'_>) -> R,
    ) -> R {
        let guard = self.graphs.read();
        let resolved: Vec<&GraphData> =
            graphs.iter().filter_map(|name| guard.get(*name)).collect();
        f(&Prober { graphs: resolved })
    }

    /// Number of triples matching an id pattern across `graphs`, walking
    /// at most `cap` index entries per graph. Triples shared between
    /// graphs are counted once per graph — the evaluator uses this as a
    /// relative cardinality estimate, not an exact union size.
    pub(crate) fn count_id_pattern(
        &self,
        graphs: &[&str],
        pat: IdPattern,
        cap: usize,
    ) -> usize {
        let store = self.graphs.read();
        graphs
            .iter()
            .filter_map(|name| store.get(*name))
            .map(|g| g.count(pat, cap))
            .sum()
    }

    /// Insert already-interned triples (ids must come from this store's
    /// dictionary); returns how many were new. The reasoner writes its
    /// closure through this, skipping re-interning entirely. When a sink
    /// is attached the ids are resolved back to terms for the redo record
    /// (the log speaks terms, never ids — ids are not stable across
    /// recovery).
    pub(crate) fn insert_ids(
        &self,
        graph: &str,
        triples: impl IntoIterator<Item = IdTriple>,
    ) -> usize {
        let sink = self.sink();
        let fresh = {
            let _barrier = sink_guard(&sink);
            self.bump_version();
            let mut graphs = self.graphs.write();
            if let Some(sk) = &sink {
                let batch: Vec<IdTriple> = triples.into_iter().collect();
                if !batch.is_empty() {
                    let reader = self.dict.reader();
                    let terms: Vec<Triple> = batch
                        .iter()
                        .map(|&(s, p, o)| {
                            Triple::new(
                                reader.term(s).clone(),
                                reader.term(p).clone(),
                                reader.term(o).clone(),
                            )
                        })
                        .collect();
                    drop(reader);
                    let op = RdfOp::InsertAll { graph, triples: &terms };
                    if let Err(e) = sk.log(&encode_rdf_op(&op)) {
                        self.note_storage_err(e);
                        return 0;
                    }
                }
                let g = graphs.entry(graph.to_string()).or_default();
                batch.into_iter().filter(|&t| g.insert(t)).count()
            } else {
                let g = graphs.entry(graph.to_string()).or_default();
                triples.into_iter().filter(|&t| g.insert(t)).count()
            }
        };
        if let Err(e) = flush_sink(&sink) {
            self.note_storage_err(e);
        }
        fresh
    }

    // ---- replay / snapshot plumbing (no logging) --------------------------

    /// Insert triples without logging — the redo-replay path.
    pub(crate) fn apply_insert(&self, graph: &str, triples: &[Triple]) {
        self.bump_version();
        let mut graphs = self.graphs.write();
        let g = graphs.entry(graph.to_string()).or_default();
        for triple in triples {
            g.insert((
                self.dict.intern(&triple.subject),
                self.dict.intern(&triple.predicate),
                self.dict.intern(&triple.object),
            ));
        }
    }

    /// Remove a triple without logging (replay path).
    pub(crate) fn apply_remove(&self, graph: &str, triple: &Triple) {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&triple.subject),
            self.dict.id_of(&triple.predicate),
            self.dict.id_of(&triple.object),
        ) else {
            return;
        };
        self.bump_version();
        if let Some(g) = self.graphs.write().get_mut(graph) {
            g.remove((s, p, o));
        }
    }

    /// Drop a graph without logging (replay path); missing graph is a no-op.
    pub(crate) fn apply_drop_graph(&self, graph: &str) {
        self.bump_version();
        self.graphs.write().remove(graph);
    }

    /// Create an empty graph without logging (replay path).
    pub(crate) fn apply_ensure_graph(&self, graph: &str) {
        self.graphs.write().entry(graph.to_string()).or_default();
    }

    /// Insert already-interned triples without logging (snapshot-restore
    /// path; ids must come from this store's dictionary).
    pub(crate) fn apply_insert_ids(
        &self,
        graph: &str,
        triples: impl IntoIterator<Item = IdTriple>,
    ) {
        self.bump_version();
        let mut graphs = self.graphs.write();
        let g = graphs.entry(graph.to_string()).or_default();
        for t in triples {
            g.insert(t);
        }
    }

    /// Pin every graph's id-triples (SPO order) for a checkpoint. Runs
    /// under the checkpoint barrier, so the copy is a consistent cut; the
    /// cost is one memcpy-ish walk of the indexes, no term cloning.
    pub(crate) fn pin_graphs(&self) -> Vec<(String, Vec<IdTriple>)> {
        self.graphs
            .read()
            .iter()
            .map(|(name, g)| (name.clone(), g.spo.iter().copied().collect()))
            .collect()
    }

    /// Dump a whole graph as concrete triples (sorted by id order).
    pub fn graph_triples(&self, graph: &str) -> Vec<Triple> {
        self.match_pattern(&[graph], &TriplePattern::default())
    }

    /// Distinct predicate terms across `graphs` (walks the POS index, so
    /// cost is proportional to the number of distinct (p, o) prefixes, not
    /// to the full triple count for typical ontologies).
    pub fn distinct_predicates(&self, graphs: &[&str]) -> Vec<Term> {
        let store = self.graphs.read();
        let mut ids: Vec<TermId> = Vec::new();
        for name in graphs {
            if let Some(g) = store.get(*name) {
                for &(p, _, _) in &g.pos {
                    if ids.last() != Some(&p) && !ids.contains(&p) {
                        ids.push(p);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(|id| self.dict.term_of(id)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::lit(o))
    }

    fn store_with_data() -> TripleStore {
        let store = TripleStore::new();
        store.insert("u1", &t("Hg", "dangerLevel", "5"));
        store.insert("u1", &t("Pb", "dangerLevel", "4"));
        store.insert("u1", &t("Hg", "isA", "element"));
        store.insert("u2", &t("Hg", "dangerLevel", "5"));
        store.insert("u2", &t("As", "dangerLevel", "5"));
        store
    }

    #[test]
    fn insert_dedupes() {
        let store = TripleStore::new();
        assert!(store.insert("g", &t("a", "b", "c")));
        assert!(!store.insert("g", &t("a", "b", "c")));
        assert_eq!(store.graph_len("g"), 1);
    }

    #[test]
    fn all_pattern_shapes() {
        let store = store_with_data();
        let g = ["u1"];
        let m = |s: Option<&str>, p: Option<&str>, o: Option<&str>| {
            store
                .match_pattern(
                    &g,
                    &TriplePattern {
                        subject: s.map(Term::iri),
                        predicate: p.map(Term::iri),
                        object: o.map(Term::lit),
                    },
                )
                .len()
        };
        assert_eq!(m(None, None, None), 3);
        assert_eq!(m(Some("Hg"), None, None), 2);
        assert_eq!(m(Some("Hg"), Some("dangerLevel"), None), 1);
        assert_eq!(m(Some("Hg"), Some("dangerLevel"), Some("5")), 1);
        assert_eq!(m(None, Some("dangerLevel"), None), 2);
        assert_eq!(m(None, Some("dangerLevel"), Some("5")), 1);
        assert_eq!(m(None, None, Some("5")), 1);
        assert_eq!(m(Some("Hg"), None, Some("5")), 1);
        assert_eq!(m(Some("Hg"), Some("isA"), Some("nope")), 0);
    }

    #[test]
    fn union_across_graphs_dedupes() {
        let store = store_with_data();
        let found = store.match_pattern(
            &["u1", "u2"],
            &TriplePattern {
                subject: None,
                predicate: Some(Term::iri("dangerLevel")),
                object: None,
            },
        );
        // Hg/5 appears in both graphs but must be reported once.
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn unknown_constant_matches_nothing() {
        let store = store_with_data();
        let found = store.match_pattern(
            &["u1"],
            &TriplePattern {
                subject: Some(Term::iri("NeverSeen")),
                predicate: None,
                object: None,
            },
        );
        assert!(found.is_empty());
    }

    #[test]
    fn missing_graph_is_empty() {
        let store = store_with_data();
        assert_eq!(store.graph_len("nope"), 0);
        assert!(store.match_pattern(&["nope"], &TriplePattern::default()).is_empty());
    }

    #[test]
    fn remove_works() {
        let store = store_with_data();
        assert!(store.remove("u1", &t("Hg", "isA", "element")));
        assert!(!store.remove("u1", &t("Hg", "isA", "element")));
        assert_eq!(store.graph_len("u1"), 2);
        // Other indexes updated too: object lookup no longer finds it.
        let found = store.match_pattern(
            &["u1"],
            &TriplePattern {
                subject: None,
                predicate: None,
                object: Some(Term::lit("element")),
            },
        );
        assert!(found.is_empty());
    }

    #[test]
    fn drop_graph() {
        let store = store_with_data();
        store.drop_graph("u2").unwrap();
        assert!(!store.has_graph("u2"));
        assert!(store.drop_graph("u2").is_err());
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn contains_and_counts() {
        let store = store_with_data();
        assert!(store.contains("u1", &t("Hg", "dangerLevel", "5")));
        assert!(!store.contains("u2", &t("Pb", "dangerLevel", "4")));
        assert_eq!(store.len(), 5);
        assert!(!store.is_empty());
    }

    #[test]
    fn literal_vs_iri_objects_are_distinct() {
        let store = TripleStore::new();
        store.insert(
            "g",
            &Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("x")),
        );
        let found = store.match_pattern(
            &["g"],
            &TriplePattern {
                subject: None,
                predicate: None,
                object: Some(Term::lit("x")),
            },
        );
        assert!(found.is_empty(), "literal \"x\" must not match IRI <x>");
    }

    #[test]
    fn graph_triples_dump() {
        let store = store_with_data();
        let all = store.graph_triples("u1");
        assert_eq!(all.len(), 3);
        assert!(all.iter().all(|tr| tr.predicate.is_iri()));
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let store = TripleStore::new();
        let v0 = store.version();
        let t = Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b"));
        store.insert("g", &t);
        let v1 = store.version();
        assert!(v1 > v0);
        let t2 = Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("c"));
        store.insert_all("g", std::iter::once(&t2));
        let v2 = store.version();
        assert!(v2 > v1);
        store.remove("g", &t);
        let v3 = store.version();
        assert!(v3 > v2);
        store.drop_graph("g").unwrap();
        assert!(store.version() > v3);
    }

    #[test]
    fn clones_share_the_version_counter() {
        let store = TripleStore::new();
        let clone = store.clone();
        let v0 = clone.version();
        store.insert("g", &Triple::new(Term::iri("a"), Term::iri("p"), Term::iri("b")));
        assert!(clone.version() > v0, "caches on clones must observe mutations");
    }
}
