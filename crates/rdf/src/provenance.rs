//! Per-user knowledge bases with statement provenance (paper Fig. 4).
//!
//! Every user statement is stored twice, mirroring the CroSSE design:
//!
//! 1. as a **direct triple** in the asserting user's personal graph — this
//!    is what SESQL queries against as the user's context;
//! 2. as a **reified statement** in the shared metadata graph, typed
//!    `smg:Statement` with `rdf:subject` / `rdf:predicate` / `rdf:object`,
//!    connected to its author by `smg:userStatement`.
//!
//! Statements are public: any user can browse them and *accept* one as
//! their own, which records an `smg:userBelief` edge and copies the direct
//! triple into the accepting user's personal graph ("It is the personal
//! knowledge base that will constitute the context in which a user's query
//! will be evaluated", Sec. III-A).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::schema;
use crate::store::{Triple, TriplePattern, TripleStore};
use crate::term::Term;

/// Identifier of a reified statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatementId(pub u64);

/// Name of the shared metadata graph.
pub const META_GRAPH: &str = "crosse:meta";
/// Name of the shared/common ontology graph visible to all users.
pub const COMMON_GRAPH: &str = "crosse:common";
/// Graph holding RDFS-inferred triples over the common ontology.
pub const INFERRED_GRAPH: &str = "crosse:inferred";

/// Personal graph name for a user.
pub fn user_graph(user: &str) -> String {
    format!("crosse:user:{user}")
}

/// A public statement listing entry.
#[derive(Debug, Clone, PartialEq)]
pub struct StatementInfo {
    pub id: StatementId,
    pub author: String,
    pub triple: Triple,
    /// Users who accepted this statement as their own belief.
    pub believers: Vec<String>,
}

/// The CroSSE knowledge base: a triple store plus provenance management.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    store: TripleStore,
    next_statement: Arc<AtomicU64>,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeBase {
    pub fn new() -> Self {
        let store = TripleStore::new();
        store.ensure_graph(META_GRAPH);
        store.ensure_graph(COMMON_GRAPH);
        KnowledgeBase { store, next_statement: Arc::new(AtomicU64::new(0)) }
    }

    /// Access the underlying store (the SESQL layer evaluates SPARQL on it).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }

    /// Wrap a recovered [`TripleStore`] as a knowledge base. The statement
    /// counter is not persisted separately — it is rebuilt by scanning the
    /// metadata graph for reified statement nodes and continuing after the
    /// highest id, so recovered knowledge bases never re-mint a used id.
    pub fn from_store(store: TripleStore) -> Self {
        store.ensure_graph(META_GRAPH);
        store.ensure_graph(COMMON_GRAPH);
        let next = store
            .match_pattern(
                &[META_GRAPH],
                &TriplePattern {
                    subject: None,
                    predicate: Some(schema::rdf_type()),
                    object: Some(schema::statement_class()),
                },
            )
            .iter()
            .filter_map(|t| parse_statement_node(&t.subject))
            .map(|id| id.0 + 1)
            .max()
            .unwrap_or(0);
        KnowledgeBase { store, next_statement: Arc::new(AtomicU64::new(next)) }
    }

    /// Register a user; idempotent.
    pub fn register_user(&self, user: &str) {
        self.store.ensure_graph(&user_graph(user));
        self.store.insert(
            META_GRAPH,
            &Triple::new(schema::user_iri(user), schema::rdf_type(), schema::user_class()),
        );
    }

    pub fn is_registered(&self, user: &str) -> bool {
        self.store.contains(
            META_GRAPH,
            &Triple::new(schema::user_iri(user), schema::rdf_type(), schema::user_class()),
        )
    }

    /// All registered user names (local names of `smg:User` instances).
    pub fn users(&self) -> Vec<String> {
        self.store
            .match_pattern(
                &[META_GRAPH],
                &TriplePattern {
                    subject: None,
                    predicate: Some(schema::rdf_type()),
                    object: Some(schema::user_class()),
                },
            )
            .into_iter()
            .map(|t| {
                t.subject
                    .local_name()
                    .to_string()
            })
            .collect()
    }

    fn require_user(&self, user: &str) -> Result<()> {
        if self.is_registered(user) {
            Ok(())
        } else {
            Err(Error::store(format!("user `{user}` is not registered")))
        }
    }

    /// Assert a statement: direct triple in the user's graph + reified
    /// statement with provenance in the metadata graph.
    pub fn assert_statement(&self, user: &str, triple: &Triple) -> Result<StatementId> {
        self.require_user(user)?;
        // If this user already asserted the identical triple, return the
        // existing statement instead of minting a duplicate.
        if let Some(existing) = self.find_statement(triple) {
            let stmt_node = schema::statement_iri(existing.0);
            let already_author = self.store.contains(
                META_GRAPH,
                &Triple::new(schema::user_iri(user), schema::user_statement(), stmt_node),
            );
            if already_author {
                return Ok(existing);
            }
            // Statement exists from another author: record this user as an
            // additional asserter and copy the direct triple.
            self.store.insert(
                META_GRAPH,
                &Triple::new(
                    schema::user_iri(user),
                    schema::user_statement(),
                    schema::statement_iri(existing.0),
                ),
            );
            self.store.insert(&user_graph(user), triple);
            return Ok(existing);
        }

        let id = StatementId(self.next_statement.fetch_add(1, Ordering::Relaxed));
        let node = schema::statement_iri(id.0);
        // The whole reification cluster goes in as one batch: one redo
        // record instead of five, so a recovered log never holds a
        // half-reified statement and group commit amortises the writes.
        let meta = [
            Triple::new(node.clone(), schema::rdf_type(), schema::statement_class()),
            Triple::new(node.clone(), schema::rdf_subject(), triple.subject.clone()),
            Triple::new(node.clone(), schema::rdf_predicate(), triple.predicate.clone()),
            Triple::new(node.clone(), schema::rdf_object(), triple.object.clone()),
            Triple::new(schema::user_iri(user), schema::user_statement(), node),
        ];
        self.store.insert_all(META_GRAPH, &meta);
        self.store.insert(&user_graph(user), triple);
        Ok(id)
    }

    /// Find a reified statement matching the triple exactly.
    pub fn find_statement(&self, triple: &Triple) -> Option<StatementId> {
        // statements with matching rdf:subject
        let with_subject = self.store.match_pattern(
            &[META_GRAPH],
            &TriplePattern {
                subject: None,
                predicate: Some(schema::rdf_subject()),
                object: Some(triple.subject.clone()),
            },
        );
        for t in with_subject {
            let node = t.subject;
            let p_ok = self.store.contains(
                META_GRAPH,
                &Triple::new(node.clone(), schema::rdf_predicate(), triple.predicate.clone()),
            );
            let o_ok = self.store.contains(
                META_GRAPH,
                &Triple::new(node.clone(), schema::rdf_object(), triple.object.clone()),
            );
            if p_ok && o_ok {
                return parse_statement_node(&node);
            }
        }
        None
    }

    /// Reconstruct the triple of a statement.
    pub fn statement_triple(&self, id: StatementId) -> Result<Triple> {
        let node = schema::statement_iri(id.0);
        let get = |pred: Term| -> Result<Term> {
            self.store
                .match_pattern(
                    &[META_GRAPH],
                    &TriplePattern {
                        subject: Some(node.clone()),
                        predicate: Some(pred),
                        object: None,
                    },
                )
                .pop()
                .map(|t| t.object)
                .ok_or_else(|| Error::store(format!("statement {} not found", id.0)))
        };
        Ok(Triple::new(
            get(schema::rdf_subject())?,
            get(schema::rdf_predicate())?,
            get(schema::rdf_object())?,
        ))
    }

    /// Accept another user's statement as one's own belief: records the
    /// `userBelief` edge and copies the direct triple into the accepting
    /// user's personal graph.
    pub fn accept_statement(&self, user: &str, id: StatementId) -> Result<()> {
        self.require_user(user)?;
        let triple = self.statement_triple(id)?;
        self.store.insert(
            META_GRAPH,
            &Triple::new(
                schema::user_iri(user),
                schema::user_belief(),
                schema::statement_iri(id.0),
            ),
        );
        self.store.insert(&user_graph(user), &triple);
        Ok(())
    }

    /// Retract a user's belief/assertion: removes the direct triple from
    /// the personal graph and the user's provenance edge. The reified
    /// statement stays (other users may still believe it).
    pub fn retract(&self, user: &str, id: StatementId) -> Result<()> {
        self.require_user(user)?;
        let triple = self.statement_triple(id)?;
        self.store.remove(&user_graph(user), &triple);
        let node = schema::statement_iri(id.0);
        self.store.remove(
            META_GRAPH,
            &Triple::new(schema::user_iri(user), schema::user_statement(), node.clone()),
        );
        self.store.remove(
            META_GRAPH,
            &Triple::new(schema::user_iri(user), schema::user_belief(), node),
        );
        Ok(())
    }

    /// Public statement browser: all reified statements with authorship and
    /// believer lists (crowdsourced annotation scenario, Sec. III-A).
    pub fn public_statements(&self) -> Vec<StatementInfo> {
        let nodes = self.store.match_pattern(
            &[META_GRAPH],
            &TriplePattern {
                subject: None,
                predicate: Some(schema::rdf_type()),
                object: Some(schema::statement_class()),
            },
        );
        let mut out = Vec::new();
        for n in nodes {
            let Some(id) = parse_statement_node(&n.subject) else { continue };
            let Ok(triple) = self.statement_triple(id) else { continue };
            let author = self
                .edge_users(schema::user_statement(), &n.subject)
                .into_iter()
                .next()
                .unwrap_or_default();
            let believers = self.edge_users(schema::user_belief(), &n.subject);
            out.push(StatementInfo { id, author, triple, believers });
        }
        out.sort_by_key(|s| s.id);
        out
    }

    fn edge_users(&self, predicate: Term, node: &Term) -> Vec<String> {
        let mut users: Vec<String> = self
            .store
            .match_pattern(
                &[META_GRAPH],
                &TriplePattern {
                    subject: None,
                    predicate: Some(predicate),
                    object: Some(node.clone()),
                },
            )
            .into_iter()
            .map(|t| t.subject.local_name().to_string())
            .collect();
        users.sort();
        users
    }

    /// Statements authored by a user.
    pub fn statements_by(&self, user: &str) -> Vec<StatementId> {
        let mut ids: Vec<StatementId> = self
            .store
            .match_pattern(
                &[META_GRAPH],
                &TriplePattern {
                    subject: Some(schema::user_iri(user)),
                    predicate: Some(schema::user_statement()),
                    object: None,
                },
            )
            .into_iter()
            .filter_map(|t| parse_statement_node(&t.object))
            .collect();
        ids.sort();
        ids
    }

    /// Statements a user accepted from others.
    pub fn beliefs_of(&self, user: &str) -> Vec<StatementId> {
        let mut ids: Vec<StatementId> = self
            .store
            .match_pattern(
                &[META_GRAPH],
                &TriplePattern {
                    subject: Some(schema::user_iri(user)),
                    predicate: Some(schema::user_belief()),
                    object: None,
                },
            )
            .into_iter()
            .filter_map(|t| parse_statement_node(&t.object))
            .collect();
        ids.sort();
        ids
    }

    /// Attach a bibliographic reference to a statement (Fig. 4's
    /// `smg:Reference` with title / author / link).
    pub fn attach_reference(
        &self,
        id: StatementId,
        title: &str,
        author: &str,
        link: &str,
    ) -> Result<()> {
        // Reference nodes reuse the statement id — one reference per call
        // is enough for the reproduction; multiple calls add more triples
        // onto the same node.
        self.statement_triple(id)?; // existence check
        let node = schema::reference_iri(id.0);
        let stmt = schema::statement_iri(id.0);
        self.store.insert(
            META_GRAPH,
            &Triple::new(node.clone(), schema::rdf_type(), schema::reference_class()),
        );
        self.store.insert(META_GRAPH, &Triple::new(stmt, schema::stm_reference(), node.clone()));
        self.store
            .insert(META_GRAPH, &Triple::new(node.clone(), schema::ref_title(), Term::lit(title)));
        self.store
            .insert(META_GRAPH, &Triple::new(node.clone(), schema::ref_author(), Term::lit(author)));
        self.store.insert(META_GRAPH, &Triple::new(node, schema::ref_link(), Term::lit(link)));
        Ok(())
    }

    /// Load shared ontology triples into the common graph.
    pub fn load_common(&self, triples: &[Triple]) -> usize {
        self.store.insert_all(COMMON_GRAPH, triples.iter())
    }

    /// Run RDFS materialisation over common + a user's graph into the
    /// shared inferred graph.
    pub fn materialize_inferences(&self) -> usize {
        crate::reasoner::materialize_rdfs(
            &self.store,
            &[COMMON_GRAPH],
            INFERRED_GRAPH,
        )
    }

    /// The graphs forming a user's query context: personal graph (own +
    /// accepted statements), the common ontology, and inferences.
    pub fn context_graphs(&self, user: &str) -> Vec<String> {
        vec![
            user_graph(user),
            COMMON_GRAPH.to_string(),
            INFERRED_GRAPH.to_string(),
        ]
    }

    /// Evaluate a SPARQL query in a user's context.
    pub fn query_as(
        &self,
        user: &str,
        sparql: &str,
    ) -> Result<crate::sparql::eval::Solutions> {
        self.require_user(user)?;
        let graphs = self.context_graphs(user);
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        crate::sparql::eval::query(&self.store, &refs, sparql)
    }

    /// Number of direct triples in a user's personal graph.
    pub fn personal_size(&self, user: &str) -> usize {
        self.store.graph_len(&user_graph(user))
    }
}

fn parse_statement_node(node: &Term) -> Option<StatementId> {
    let Term::Iri(iri) = node else { return None };
    let local = iri.rsplit('/').next()?;
    local.parse().ok().map(StatementId)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn kb() -> KnowledgeBase {
        let kb = KnowledgeBase::new();
        kb.register_user("alice");
        kb.register_user("bob");
        kb
    }

    #[test]
    fn register_and_list_users() {
        let kb = kb();
        let mut users = kb.users();
        users.sort();
        assert_eq!(users, vec!["alice", "bob"]);
        assert!(kb.is_registered("alice"));
        assert!(!kb.is_registered("carol"));
    }

    #[test]
    fn unregistered_user_cannot_assert() {
        let kb = kb();
        assert!(kb.assert_statement("carol", &t("a", "b", "c")).is_err());
    }

    #[test]
    fn assert_creates_direct_and_reified() {
        let kb = kb();
        let id = kb.assert_statement("alice", &t("Hg", "isA", "HazardousWaste")).unwrap();
        // direct triple in alice's graph
        assert_eq!(kb.personal_size("alice"), 1);
        // reified statement reconstructable
        assert_eq!(kb.statement_triple(id).unwrap(), t("Hg", "isA", "HazardousWaste"));
        // provenance
        assert_eq!(kb.statements_by("alice"), vec![id]);
        assert!(kb.statements_by("bob").is_empty());
    }

    #[test]
    fn duplicate_assert_returns_same_id() {
        let kb = kb();
        let a = kb.assert_statement("alice", &t("x", "p", "y")).unwrap();
        let b = kb.assert_statement("alice", &t("x", "p", "y")).unwrap();
        assert_eq!(a, b);
        assert_eq!(kb.public_statements().len(), 1);
    }

    #[test]
    fn same_triple_from_two_users_shares_statement() {
        let kb = kb();
        let a = kb.assert_statement("alice", &t("x", "p", "y")).unwrap();
        let b = kb.assert_statement("bob", &t("x", "p", "y")).unwrap();
        assert_eq!(a, b);
        assert_eq!(kb.statements_by("bob"), vec![b]);
        assert_eq!(kb.personal_size("bob"), 1);
    }

    #[test]
    fn accept_copies_triple_and_records_belief() {
        let kb = kb();
        let id = kb.assert_statement("alice", &t("Hg", "dangerLevel", "5")).unwrap();
        assert_eq!(kb.personal_size("bob"), 0);
        kb.accept_statement("bob", id).unwrap();
        assert_eq!(kb.personal_size("bob"), 1);
        assert_eq!(kb.beliefs_of("bob"), vec![id]);
        // Bob's context now answers queries over the accepted triple.
        let sols = kb
            .query_as("bob", "SELECT ?o WHERE { <Hg> <dangerLevel> ?o }")
            .unwrap();
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn contexts_are_isolated() {
        let kb = kb();
        kb.assert_statement("alice", &t("Hg", "dangerLevel", "5")).unwrap();
        let sols = kb
            .query_as("bob", "SELECT ?o WHERE { <Hg> <dangerLevel> ?o }")
            .unwrap();
        assert!(sols.is_empty(), "bob has not accepted alice's statement");
    }

    #[test]
    fn conflicting_statements_coexist() {
        // "no centralized control on the correctness and/or consistency of
        // the crowdsourced knowledge" (Sec. III-A).
        let kb = kb();
        kb.assert_statement("alice", &t("Hg", "dangerLevel", "5")).unwrap();
        kb.assert_statement("bob", &t("Hg", "dangerLevel", "1")).unwrap();
        let a = kb.query_as("alice", "SELECT ?o WHERE { <Hg> <dangerLevel> ?o }").unwrap();
        let b = kb.query_as("bob", "SELECT ?o WHERE { <Hg> <dangerLevel> ?o }").unwrap();
        assert_eq!(a.rows[0][0].as_ref().unwrap().lexical_form(), "5");
        assert_eq!(b.rows[0][0].as_ref().unwrap().lexical_form(), "1");
    }

    #[test]
    fn retract_removes_direct_but_keeps_statement_for_believers() {
        let kb = kb();
        let id = kb.assert_statement("alice", &t("x", "p", "y")).unwrap();
        kb.accept_statement("bob", id).unwrap();
        kb.retract("alice", id).unwrap();
        assert_eq!(kb.personal_size("alice"), 0);
        // Bob still believes it.
        assert_eq!(kb.personal_size("bob"), 1);
        assert_eq!(kb.statement_triple(id).unwrap(), t("x", "p", "y"));
    }

    #[test]
    fn public_statement_listing() {
        let kb = kb();
        let id1 = kb.assert_statement("alice", &t("Hg", "isA", "Hazard")).unwrap();
        let id2 = kb.assert_statement("bob", &t("Pb", "isA", "Hazard")).unwrap();
        kb.accept_statement("bob", id1).unwrap();
        let stmts = kb.public_statements();
        assert_eq!(stmts.len(), 2);
        let s1 = stmts.iter().find(|s| s.id == id1).unwrap();
        assert_eq!(s1.author, "alice");
        assert_eq!(s1.believers, vec!["bob"]);
        let s2 = stmts.iter().find(|s| s.id == id2).unwrap();
        assert_eq!(s2.author, "bob");
        assert!(s2.believers.is_empty());
    }

    #[test]
    fn references_attach() {
        let kb = kb();
        let id = kb.assert_statement("alice", &t("Hg", "isA", "Hazard")).unwrap();
        kb.attach_reference(id, "WHO guidelines", "WHO", "http://who.int").unwrap();
        let refs = kb.store().match_pattern(
            &[META_GRAPH],
            &TriplePattern {
                subject: Some(schema::statement_iri(id.0)),
                predicate: Some(schema::stm_reference()),
                object: None,
            },
        );
        assert_eq!(refs.len(), 1);
        assert!(kb.attach_reference(StatementId(999), "x", "y", "z").is_err());
    }

    #[test]
    fn from_store_resumes_statement_ids_after_the_highest() {
        let kb = kb();
        let a = kb.assert_statement("alice", &t("x", "p", "y")).unwrap();
        let b = kb.assert_statement("alice", &t("x", "p", "z")).unwrap();
        assert!(b > a);
        // Simulate recovery: rebuild the KB from the store alone.
        let recovered = KnowledgeBase::from_store(kb.store().clone());
        let c = recovered.assert_statement("alice", &t("x", "p", "w")).unwrap();
        assert!(c > b, "recovered counter must not re-mint {b:?}");
        assert_eq!(recovered.statement_triple(a).unwrap(), t("x", "p", "y"));
        assert_eq!(recovered.public_statements().len(), 3);
    }

    #[test]
    fn common_graph_visible_to_all() {
        let kb = kb();
        kb.load_common(&[t("Torino", "inCountry", "Italy")]);
        let a = kb.query_as("alice", "SELECT ?c WHERE { <Torino> <inCountry> ?c }").unwrap();
        let b = kb.query_as("bob", "SELECT ?c WHERE { <Torino> <inCountry> ?c }").unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn inference_over_common() {
        let kb = kb();
        kb.load_common(&[
            Triple::new(Term::iri("HeavyMetal"), schema::rdfs_subclass_of(), Term::iri("Hazard")),
            Triple::new(Term::iri("Hg"), schema::rdf_type(), Term::iri("HeavyMetal")),
        ]);
        let n = kb.materialize_inferences();
        assert!(n >= 1);
        let sols = kb
            .query_as("alice", "SELECT ?x WHERE { ?x rdf:type <Hazard> }")
            .unwrap();
        assert_eq!(sols.len(), 1);
    }
}
