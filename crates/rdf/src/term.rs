//! RDF terms and the interning dictionary.
//!
//! Terms are interned into dense `u32` ids so triples are three machine
//! words and index lookups compare integers. This mirrors how production
//! triple stores (and Jena's TDB, the paper's backend) organise their node
//! tables.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI, stored without angle brackets.
    Iri(String),
    /// A literal with an optional datatype IRI.
    Literal { value: String, datatype: Option<String> },
    /// A blank node with a local label.
    Blank(String),
}

impl Term {
    pub fn iri(v: impl Into<String>) -> Term {
        Term::Iri(v.into())
    }

    pub fn lit(v: impl Into<String>) -> Term {
        Term::Literal { value: v.into(), datatype: None }
    }

    pub fn typed_lit(v: impl Into<String>, datatype: impl Into<String>) -> Term {
        Term::Literal { value: v.into(), datatype: Some(datatype.into()) }
    }

    pub fn blank(v: impl Into<String>) -> Term {
        Term::Blank(v.into())
    }

    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal { .. })
    }

    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// The lexical form: literal value, IRI text, or blank label.
    ///
    /// The SESQL JoinManager compares relational values against RDF terms
    /// through this form, and for IRIs falls back to the *local name* (the
    /// part after the last `#` or `/`) — see
    /// [`Term::matches_lexical`].
    pub fn lexical_form(&self) -> &str {
        match self {
            Term::Iri(i) => i,
            Term::Literal { value, .. } => value,
            Term::Blank(b) => b,
        }
    }

    /// Local name of an IRI (text after the last `#` or `/`); the full text
    /// for other terms.
    pub fn local_name(&self) -> &str {
        match self {
            Term::Iri(i) => i.rsplit(['#', '/']).next().unwrap_or(i),
            other => other.lexical_form(),
        }
    }

    /// Whether a plain string (e.g. a relational value) denotes this term:
    /// exact lexical match, or — for IRIs — local-name match. This is the
    /// resource-mapping rule CroSSE's XML mapping file encodes (Fig. 6).
    pub fn matches_lexical(&self, s: &str) -> bool {
        self.lexical_form() == s || (self.is_iri() && self.local_name() == s)
    }

    /// Numeric interpretation of a literal, if it parses.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Term::Literal { value, .. } => value.trim().parse().ok(),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => write!(f, "<{i}>"),
            Term::Literal { value, datatype: None } => {
                write!(f, "\"{}\"", value.replace('"', "\\\""))
            }
            Term::Literal { value, datatype: Some(dt) } => {
                write!(f, "\"{}\"^^<{dt}>", value.replace('"', "\\\""))
            }
            Term::Blank(b) => write!(f, "_:{b}"),
        }
    }
}

/// Dense term identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

/// Bidirectional Term ↔ TermId dictionary. Cheap to clone (shared).
#[derive(Debug, Clone)]
pub struct Dictionary {
    inner: Arc<RwLock<DictInner>>,
}

impl Default for Dictionary {
    fn default() -> Self {
        Dictionary {
            inner: Arc::new(RwLock::new_labeled("rdf.dict", DictInner::default())),
        }
    }
}

#[derive(Debug, Default)]
struct DictInner {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id (existing or fresh).
    pub fn intern(&self, term: &Term) -> TermId {
        {
            let inner = self.inner.read();
            if let Some(&id) = inner.ids.get(term) {
                return id;
            }
        }
        let mut inner = self.inner.write();
        if let Some(&id) = inner.ids.get(term) {
            return id;
        }
        let id = TermId(inner.terms.len() as u32);
        inner.terms.push(term.clone());
        inner.ids.insert(term.clone(), id);
        id
    }

    /// Look up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.inner.read().ids.get(term).copied()
    }

    /// Resolve an id back to its term.
    pub fn term_of(&self, id: TermId) -> Term {
        self.inner.read().terms[id.0 as usize].clone()
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.inner.read().terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A read guard over the dictionary for batch resolution: one lock
    /// acquisition serves any number of `term(id)` borrows, and nothing is
    /// cloned until the caller decides to. Do not intern while holding a
    /// reader (the write would deadlock against the read guard).
    pub fn reader(&self) -> DictReader<'_> {
        DictReader { guard: self.inner.read() }
    }

    /// All interned terms in id order (index = id). Checkpoint pinning
    /// uses this to serialise the dictionary; pinned *after* the graphs
    /// (under the same barrier) so every id in any pinned graph resolves.
    pub fn terms_snapshot(&self) -> Vec<Term> {
        self.inner.read().terms.clone()
    }

    /// Literal-kind flag per id (index = id). Covers every term interned
    /// at call time; used by the reasoner to test literalness without
    /// locking per triple.
    pub fn literal_flags(&self) -> Vec<bool> {
        self.inner.read().terms.iter().map(Term::is_literal).collect()
    }

    /// All interned IRI terms a plain string denotes under the resource-
    /// mapping rule (exact text or local-name match; see
    /// [`Term::matches_lexical`]). Lets query generators push a lexical
    /// constant into a SPARQL pattern as concrete IRIs instead of
    /// fetching everything and filtering client-side.
    pub fn iris_matching_lexical(&self, name: &str) -> Vec<Term> {
        self.inner
            .read()
            .terms
            .iter()
            .filter(|t| t.is_iri() && t.matches_lexical(name))
            .cloned()
            .collect()
    }
}

/// Borrowed view of the dictionary (see [`Dictionary::reader`]).
pub struct DictReader<'a> {
    guard: parking_lot::RwLockReadGuard<'a, DictInner>,
}

impl DictReader<'_> {
    /// Resolve an id to its term without cloning.
    pub fn term(&self, id: TermId) -> &Term {
        &self.guard.terms[id.0 as usize]
    }

    /// Look up an already-interned term.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.guard.ids.get(term).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let d = Dictionary::new();
        let a = d.intern(&Term::iri("http://smg.eu/Mercury"));
        let b = d.intern(&Term::iri("http://smg.eu/Mercury"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.term_of(a), Term::iri("http://smg.eu/Mercury"));
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let d = Dictionary::new();
        let a = d.intern(&Term::lit("Mercury"));
        let b = d.intern(&Term::iri("Mercury"));
        assert_ne!(a, b, "literal and IRI with same text are different terms");
    }

    #[test]
    fn local_name_extraction() {
        assert_eq!(Term::iri("http://smg.eu/onto#Mercury").local_name(), "Mercury");
        assert_eq!(Term::iri("http://smg.eu/onto/Lead").local_name(), "Lead");
        assert_eq!(Term::iri("Mercury").local_name(), "Mercury");
        assert_eq!(Term::lit("plain").local_name(), "plain");
    }

    #[test]
    fn matches_lexical_rules() {
        let t = Term::iri("http://smg.eu/onto#Mercury");
        assert!(t.matches_lexical("Mercury"));
        assert!(t.matches_lexical("http://smg.eu/onto#Mercury"));
        assert!(!t.matches_lexical("Lead"));
        let l = Term::lit("Mercury");
        assert!(l.matches_lexical("Mercury"));
        assert!(!l.matches_lexical("mercury"), "literal match is case-sensitive");
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(Term::lit("3.5").as_f64(), Some(3.5));
        assert_eq!(Term::lit(" 42 ").as_f64(), Some(42.0));
        assert_eq!(Term::lit("abc").as_f64(), None);
        assert_eq!(Term::iri("3").as_f64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("x").to_string(), "<x>");
        assert_eq!(Term::lit("a\"b").to_string(), "\"a\\\"b\"");
        assert_eq!(
            Term::typed_lit("3", "http://www.w3.org/2001/XMLSchema#integer").to_string(),
            "\"3\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
    }

    #[test]
    fn dictionary_shared_across_clones() {
        let d = Dictionary::new();
        let d2 = d.clone();
        let id = d.intern(&Term::lit("x"));
        assert_eq!(d2.id_of(&Term::lit("x")), Some(id));
    }
}
