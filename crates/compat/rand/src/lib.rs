//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace crate
//! shadows crates.io `rand` with the subset the generators use:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer / float ranges.
//!
//! The generator is SplitMix64 — not the real StdRng stream, but all
//! callers only rely on determinism (same seed → same sequence), never on
//! matching upstream rand's output.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable subset: only `seed_from_u64` is needed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain reference constants).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Range types `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// The `Rng` extension trait: the used subset.
pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        Rng::gen_range(self, 0.0..1.0) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
