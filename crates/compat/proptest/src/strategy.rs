//! Value-generation strategies: the `Strategy` trait and the combinators
//! the test-suite uses.

use std::fmt::Debug;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A generator of values. Unlike real proptest there is no value tree /
/// shrinking: `generate` directly yields a sample.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy (what `prop_oneof!` unions over).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map(f)` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed strategies (backs `prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: Debug> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---- ranges -----------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---- any::<T>() -------------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

pub struct Any<A>(std::marker::PhantomData<A>);

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

// ---- tuples -----------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---- regex-subset string strategies ----------------------------------------

/// `&str` strategies generate strings matching a small regex subset:
/// literal characters, character classes `[a-z0-9 ]` (ranges + singletons),
/// and `{n}` / `{m,n}` quantifiers. This covers every pattern the test
/// suite uses.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let n = if min == max {
                *min
            } else {
                *min + rng.below((*max - *min + 1) as u64) as usize
            };
            for _ in 0..n {
                match atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        let total: u32 =
                            ranges.iter().map(|(lo, hi)| *hi as u32 - *lo as u32 + 1).sum();
                        let mut pick = rng.below(total as u64) as u32;
                        for (lo, hi) in ranges {
                            let size = *hi as u32 - *lo as u32 + 1;
                            if pick < size {
                                out.push(char::from_u32(*lo as u32 + pick).unwrap());
                                break;
                            }
                            pick -= size;
                        }
                    }
                }
            }
        }
        out
    }
}

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

/// Parse the supported regex subset into (atom, min, max) repetitions.
fn parse_pattern(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated character class in `{pattern}`");
                i += 1; // consume ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated {") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, min, max));
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(pattern: &'static str, seed: u32) -> String {
        let mut rng = TestRng::for_case("strategy_test", seed);
        Strategy::generate(&pattern, &mut rng)
    }

    #[test]
    fn class_with_quantifier() {
        for s in (0..50).map(|i| sample("[a-z]{1,6}", i)) {
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn mixed_literals_and_classes() {
        for s in (0..50).map(|i| sample("[a-z]{1,3} = [0-9]{1,2}", i)) {
            let (l, r) = s.split_once(" = ").expect("literal separator present");
            assert!(l.chars().all(|c| c.is_ascii_lowercase()));
            assert!(r.chars().all(|c| c.is_ascii_digit()));
        }
    }

    #[test]
    fn class_with_symbols() {
        for s in (0..80).map(|i| sample("[a-zA-Z0-9 =<>,.']{0,60}", i)) {
            assert!(s.len() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " =<>,.'".contains(c)));
        }
    }

    #[test]
    fn oneof_and_map() {
        let strat = crate::prop_oneof![
            Just(0i64),
            (10i64..20).prop_map(|x| x * 2),
        ];
        let mut rng = TestRng::for_case("oneof", 0);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v == 0 || (20..40).contains(&v), "{v}");
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let strat = crate::collection::vec(0u8..4, 2..6);
        let mut rng = TestRng::for_case("vec", 0);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()), "{v:?}");
            assert!(v.iter().all(|&x| x < 4));
        }
    }
}
