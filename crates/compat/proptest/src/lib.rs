//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace crate
//! shadows crates.io `proptest` with the subset its test-suite callers
//! use: the `proptest!` macro, `Strategy` with `prop_map` / `boxed`,
//! `Just`, `any::<T>()`, range and tuple strategies, regex-subset string
//! strategies, `prop::collection::vec`, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: generation is deterministic (seeded by
//! the test name, so failures reproduce across runs) and there is no
//! shrinking — the failing case's inputs are printed as-is.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            assert!(self.size.start < self.size.end, "empty vec size range");
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    /// `prop::collection::vec(...)` paths resolve through this alias.
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = format!("{:?}", ($(&$arg,)+));
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name), case, config.cases, e, inputs,
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: left == right\n  left:  {:?}\n  right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left:  {:?}\n  right: {:?}",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}
