//! Config, RNG, and error types backing the `proptest!` macro.

use std::fmt;

/// Per-suite configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property: carries the assertion message.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic SplitMix64 generator, seeded from the test name and the
/// case index so every run of the suite replays the same inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h ^ ((case as u64) << 32) ^ 0x9E37_79B9_7F4A_7C15 }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("t", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("t", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
