//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace crate
//! shadows crates.io `criterion` with the subset of its API the CroSSE
//! benches use: `criterion_group!` / `criterion_main!`, benchmark groups
//! with `sample_size` / `warm_up_time` / `measurement_time` / `throughput`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Measurement model: after a wall-clock warm-up, it runs `sample_size`
//! samples, each a batch of iterations sized so a sample lasts roughly
//! `measurement_time / sample_size`, and reports the min / median / max
//! per-iteration time. Like real criterion, running the bench binary
//! without `--bench` (as `cargo test` does) executes every benchmark body
//! once in "test mode" and skips measurement entirely.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Top-level driver handed to each `criterion_group!` function.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { filter: None, test_mode: true }
    }
}

impl Criterion {
    /// Parse the CLI arguments cargo passes to bench binaries:
    /// `--bench` selects measurement mode, `--test` forces test mode, any
    /// bare argument is a substring filter on benchmark ids.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        let mut saw_bench = false;
        let mut saw_test = false;
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => saw_bench = true,
                "--test" => saw_test = true,
                // Options (with value) the real criterion accepts; ignore.
                "--save-baseline" | "--baseline" | "--load-baseline"
                | "--measurement-time" | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self.test_mode = saw_test || !saw_bench;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id.to_string()).run_one(None, f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().map(|f| id.contains(f)).unwrap_or(true)
    }
}

/// Criterion-style composite benchmark id.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: None, parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

/// Accepted by `bench_function`: a plain name or a composite id.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: Some(self.to_string()), parameter: None }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { function: Some(self), parameter: None }
    }
}

/// Throughput annotation — accepted and ignored (the stub reports time only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id().render();
        self.run_one(Some(&id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.render();
        self.run_one(Some(&id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: Option<&str>, mut f: F) {
        let full_id = match id {
            Some(id) => format!("{}/{}", self.name, id),
            None => self.name.clone(),
        };
        if !self.criterion.matches(&full_id) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some(report) => println!("{full_id:<55} {report}"),
            None => println!("{full_id:<55} (no iter call)"),
        }
    }
}

/// Runs the measured closure.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    report: Option<String>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.report = Some("ok (test mode)".to_string());
            return;
        }

        // Warm-up: run until the warm-up clock expires, estimating the
        // per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            std::hint::black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters.max(1) as f64;

        // Each sample runs a batch sized to fill its share of the
        // measurement budget (at least one iteration).
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)).round() as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        let lo = samples[0];
        let med = samples[samples.len() / 2];
        let hi = samples[samples.len() - 1];
        let mut s = String::new();
        let _ = write!(
            s,
            "time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(med),
            fmt_time(hi)
        );
        self.report = Some(s);
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.2} ns", secs * 1e9)
    }
}

/// Re-export point kept for API compatibility (`criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", "p").render(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(3).render(), "3");
        assert_eq!("plain".into_benchmark_id().render(), "plain");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut count = 0;
        group.bench_function("one", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("keep".into()), test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut count = 0;
        group.bench_function("keep_this", |b| b.iter(|| count += 1));
        group.bench_function("drop_this", |b| b.iter(|| count += 10));
        group.finish();
        assert_eq!(count, 1);
    }
}
