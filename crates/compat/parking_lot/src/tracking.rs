//! Debug-gated lock instrumentation: acquisition-order deadlock
//! detection, held-across-blocking hazards, and per-site hold/contention
//! counters.
//!
//! The engine cannot take crates.io analysis dependencies (no loom, no
//! TSan wrappers), so the compat shim carries the analysis itself. Every
//! lock registers a static *site label* (`Mutex::new_labeled("catalog.rows")`);
//! sites are **classes**, lockdep-style — all per-table row locks share
//! the `"table.rows"` site, so the order graph stays small and the report
//! names code locations, not addresses. Ordering between two locks of the
//! *same* site is deliberately not tracked.
//!
//! Three analyses run at acquisition time when tracking is on:
//!
//! 1. **Lock-order cycles.** A thread-local held-lock stack feeds a global
//!    acquisition-order graph (edge `A → B` = "held A while acquiring B",
//!    recorded once with the held-stack that produced it). Before an edge
//!    is added, a path `B ⇝ A` is searched; if one exists the cycle is
//!    reported as a [`LockOrderViolation`] naming both sites and both
//!    acquisition stacks. Read/write kinds ride on every edge and a cycle
//!    only fires when each step can actually block the next
//!    (read-read steps cannot), which keeps shared-read patterns from
//!    producing false alarms.
//! 2. **Blocking regions.** Code that is about to block outside the lock
//!    system (fsync, file IO) brackets itself with [`blocking_region`];
//!    entering a region while holding any lock — or acquiring one inside
//!    it — is reported, except for sites the region explicitly expects
//!    (the WAL's own appender/barrier, which hold across group-commit
//!    fsync by design).
//! 3. **Counters.** Per-site acquisitions, contended acquisitions (the
//!    uncontended `try` path failed first), and total/max hold times,
//!    surfaced as [`LockSiteStats`] via `Database::lock_stats` and the CLI
//!    `\lock-stats` meta-command.
//!
//! ## Gating
//!
//! The whole module is compiled out of release builds (`debug_assertions`
//! off ⇒ the public API is a set of empty inlinable stubs, locks carry no
//! label field, guards have no `Drop` impl — bench-neutral by
//! construction). In debug builds it is additionally off at runtime
//! unless `CROSSE_LOCK_TRACK` is set in the environment (read once) or
//! [`set_enabled`]`(true)` is called; when off, the per-acquisition cost
//! is one relaxed atomic load.
//!
//! Violations are recorded in a global list ([`violations`] /
//! [`take_violations`]) and printed to stderr once per site pair, so a
//! tracked test run (`cargo xtask stress`) surfaces inversions even when
//! no assertion looks for them.

use std::fmt;

/// Whether an acquisition (or a hold) is shared or exclusive. `Mutex`
/// operations are always [`LockKind::Write`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    Read,
    Write,
}

/// A lock-order inversion: acquiring `acquiring` while holding `held`
/// closes a cycle against the already-recorded path
/// `acquiring ⇝ … ⇝ held`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockOrderViolation {
    /// Site already held by this thread when the cycle closed.
    pub held: &'static str,
    /// Site whose acquisition closed the cycle.
    pub acquiring: &'static str,
    /// The pre-existing conflicting path, `acquiring → … → held`.
    pub cycle: Vec<&'static str>,
    /// Held-lock stack recorded when the first edge of `cycle` was
    /// registered — the other ordering's acquisition stack.
    pub prior_stack: Vec<&'static str>,
    /// Held-lock stack of the acquisition that closed the cycle.
    pub current_stack: Vec<&'static str>,
}

impl fmt::Display for LockOrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order violation: acquiring `{}` while holding `{}`, but the \
             order {} was already established (prior stack: [{}]; current stack: [{}])",
            self.acquiring,
            self.held,
            self.cycle.join(" -> "),
            self.prior_stack.join(", "),
            self.current_stack.join(", "),
        )
    }
}

/// One recorded hazard: a lock-order cycle or a lock held across (or
/// taken inside) a declared blocking region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    Order(LockOrderViolation),
    /// `locks` were held on entry to (or acquired inside) blocking region
    /// `region` without being in its expected set.
    HeldAcrossBlocking { region: &'static str, locks: Vec<&'static str> },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Order(v) => v.fmt(f),
            Violation::HeldAcrossBlocking { region, locks } => write!(
                f,
                "blocking-region violation: [{}] held across blocking region `{region}`",
                locks.join(", ")
            ),
        }
    }
}

/// Point-in-time counters for one lock site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSiteStats {
    pub site: &'static str,
    /// Completed `lock()`/`read()`/`write()` calls.
    pub acquisitions: u64,
    /// Acquisitions whose uncontended `try` path failed first.
    pub contended: u64,
    pub total_hold_ns: u64,
    pub max_hold_ns: u64,
}

#[cfg(debug_assertions)]
mod imp {
    use super::*;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    const UNSET: u8 = 0;
    const OFF: u8 = 1;
    const ON: u8 = 2;

    static ENABLED: AtomicU8 = AtomicU8::new(UNSET);
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    struct Edge {
        held_kind: LockKind,
        acq_kind: LockKind,
        /// Held-lock stack when this edge was first recorded.
        stack: Vec<&'static str>,
    }

    #[derive(Default)]
    struct Global {
        /// `edges[a][b]` = "held `a` while acquiring `b`".
        edges: HashMap<&'static str, HashMap<&'static str, Edge>>,
        violations: Vec<Violation>,
        /// Dedup: one report per (held, acquiring) pair / (region, lock).
        reported: HashSet<(&'static str, &'static str)>,
        stats: HashMap<&'static str, Counters>,
    }

    #[derive(Default)]
    struct Counters {
        acquisitions: u64,
        contended: u64,
        total_hold_ns: u64,
        max_hold_ns: u64,
    }

    fn global() -> &'static Mutex<Global> {
        static G: OnceLock<Mutex<Global>> = OnceLock::new();
        G.get_or_init(|| Mutex::new(Global::default()))
    }

    fn with_global<R>(f: impl FnOnce(&mut Global) -> R) -> R {
        let mut g = global().lock().unwrap_or_else(|e| e.into_inner());
        f(&mut g)
    }

    struct HeldEntry {
        label: &'static str,
        kind: LockKind,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
        static REGIONS: RefCell<Vec<(&'static str, &'static [&'static str])>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Is tracking active? First call consults `CROSSE_LOCK_TRACK`.
    pub fn enabled() -> bool {
        match ENABLED.load(Ordering::Relaxed) {
            ON => true,
            OFF => false,
            _ => {
                let on = std::env::var("CROSSE_LOCK_TRACK")
                    .map(|v| !v.is_empty() && v != "0")
                    .unwrap_or(false);
                ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
                on
            }
        }
    }

    /// Programmatically switch tracking on/off (overrides the env gate).
    pub fn set_enabled(on: bool) {
        ENABLED.store(if on { ON } else { OFF }, Ordering::Relaxed);
    }

    /// An active tracked hold; returned by `after_acquire`, consumed by
    /// the guard's `Drop`.
    pub struct Hold {
        label: &'static str,
        token: u64,
        start: Instant,
    }

    /// Can an acquisition of kind `acq` be blocked by a hold of kind
    /// `held` on the same lock? (Shared readers never block each other.)
    fn conflicts(acq: LockKind, held: LockKind) -> bool {
        acq == LockKind::Write || held == LockKind::Write
    }

    /// DFS for a deadlock-feasible path `from ⇝ to` in the order graph.
    /// `first_acq` is the acquisition kind of the edge that will close the
    /// cycle (`to → from`), `closing_held` the kind `to` is held with.
    /// Every consecutive step must be able to block (`conflicts`).
    /// Returns the path labels `[from, …, to]` and the first edge's
    /// recorded stack.
    fn find_cycle(
        g: &Global,
        from: &'static str,
        to: &'static str,
        first_acq: LockKind,
        closing_held: LockKind,
    ) -> Option<(Vec<&'static str>, Vec<&'static str>)> {
        struct Search<'a> {
            g: &'a Global,
            to: &'static str,
            closing_held: LockKind,
            visited: HashSet<&'static str>,
        }
        impl Search<'_> {
            fn walk(
                &mut self,
                node: &'static str,
                prev_acq: LockKind,
                path: &mut Vec<&'static str>,
            ) -> bool {
                let Some(out) = self.g.edges.get(node) else { return false };
                for (next, edge) in out {
                    if !conflicts(prev_acq, edge.held_kind) {
                        continue;
                    }
                    if *next == self.to {
                        if conflicts(edge.acq_kind, self.closing_held) {
                            path.push(next);
                            return true;
                        }
                        continue;
                    }
                    if self.visited.insert(next) {
                        path.push(next);
                        if self.walk(next, edge.acq_kind, path) {
                            return true;
                        }
                        path.pop();
                    }
                }
                false
            }
        }
        let mut s = Search { g, to, closing_held, visited: HashSet::new() };
        s.visited.insert(from);
        let mut path = vec![from];
        if s.walk(from, first_acq, &mut path) {
            let first_stack = path
                .get(1)
                .and_then(|x| g.edges.get(from).and_then(|m| m.get(x)))
                .map(|e| e.stack.clone())
                .unwrap_or_default();
            Some((path, first_stack))
        } else {
            None
        }
    }

    /// Called before a (possibly blocking) acquisition: blocking-region
    /// check, cycle detection, edge registration. Runs *before* the real
    /// lock call so a true deadlock is still reported before the hang.
    pub(crate) fn before_acquire(label: &'static str, kind: LockKind) {
        let in_region: Option<&'static str> = REGIONS.with(|r| {
            r.borrow()
                .iter()
                .find(|(_, allowed)| !allowed.contains(&label))
                .map(|(name, _)| *name)
        });
        let held: Vec<(&'static str, LockKind)> =
            HELD.with(|h| h.borrow().iter().map(|e| (e.label, e.kind)).collect());
        if in_region.is_none() && held.is_empty() {
            return;
        }
        with_global(|g| {
            if let Some(region) = in_region {
                if g.reported.insert((region, label)) {
                    let v = Violation::HeldAcrossBlocking { region, locks: vec![label] };
                    eprintln!("crosse-lock-track: lock acquired inside blocking region: {v}");
                    g.violations.push(v);
                }
            }
            let current_stack: Vec<&'static str> = held.iter().map(|(l, _)| *l).collect();
            for &(h, hk) in &held {
                if h == label {
                    continue; // same-site nesting is not ordered (sites are classes)
                }
                let known = g.edges.get(h).is_some_and(|m| m.contains_key(label));
                if !known {
                    if let Some((cycle, prior_stack)) = find_cycle(g, label, h, kind, hk) {
                        if g.reported.insert((h, label)) {
                            let v = LockOrderViolation {
                                held: h,
                                acquiring: label,
                                cycle,
                                prior_stack,
                                current_stack: current_stack.clone(),
                            };
                            eprintln!("crosse-lock-track: {v}");
                            g.violations.push(Violation::Order(v));
                        }
                    }
                    g.edges.entry(h).or_default().insert(
                        label,
                        Edge { held_kind: hk, acq_kind: kind, stack: current_stack.clone() },
                    );
                }
            }
        });
    }

    /// Called after the lock is held: records the hold on the thread-local
    /// stack and bumps the site counters.
    pub(crate) fn after_acquire(
        label: &'static str,
        kind: LockKind,
        contended: bool,
    ) -> Hold {
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        HELD.with(|h| h.borrow_mut().push(HeldEntry { label, kind, token }));
        with_global(|g| {
            let c = g.stats.entry(label).or_default();
            c.acquisitions += 1;
            c.contended += u64::from(contended);
        });
        Hold { label, token, start: Instant::now() }
    }

    /// Called from the guard's `Drop`.
    pub(crate) fn release(hold: Hold) {
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(i) = h.iter().rposition(|e| e.token == hold.token) {
                h.remove(i);
            }
        });
        let ns = u64::try_from(hold.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        with_global(|g| {
            let c = g.stats.entry(hold.label).or_default();
            c.total_hold_ns += ns;
            c.max_hold_ns = c.max_hold_ns.max(ns);
        });
    }

    /// RAII marker for a region that blocks outside the lock system.
    pub struct BlockingRegionGuard {
        active: bool,
    }

    impl Drop for BlockingRegionGuard {
        fn drop(&mut self) {
            if self.active {
                REGIONS.with(|r| {
                    r.borrow_mut().pop();
                });
            }
        }
    }

    /// Declare a blocking region (fsync, file IO, …): any lock held on
    /// entry — or acquired before the guard drops — is reported.
    pub fn blocking_region(name: &'static str) -> BlockingRegionGuard {
        blocking_region_allowing(name, &[])
    }

    /// [`blocking_region`], except sites in `expected` are tolerated —
    /// for locks that hold across the block *by design* (the WAL's own
    /// appender during group-commit fsync).
    pub fn blocking_region_allowing(
        name: &'static str,
        expected: &'static [&'static str],
    ) -> BlockingRegionGuard {
        if !enabled() {
            return BlockingRegionGuard { active: false };
        }
        let mut offending: Vec<&'static str> = Vec::new();
        HELD.with(|h| {
            for e in h.borrow().iter() {
                if !expected.contains(&e.label) && !offending.contains(&e.label) {
                    offending.push(e.label);
                }
            }
        });
        if !offending.is_empty() {
            with_global(|g| {
                if g.reported.insert((name, offending[0])) {
                    let v = Violation::HeldAcrossBlocking { region: name, locks: offending };
                    eprintln!("crosse-lock-track: {v}");
                    g.violations.push(v);
                }
            });
        }
        REGIONS.with(|r| r.borrow_mut().push((name, expected)));
        BlockingRegionGuard { active: true }
    }

    /// Snapshot the recorded violations (does not drain — safe to call
    /// from concurrently-running tests that filter by their own sites).
    pub fn violations() -> Vec<Violation> {
        with_global(|g| g.violations.clone())
    }

    /// Drain the recorded violations. The per-pair dedup memory is kept,
    /// so an already-reported pair is not re-recorded.
    pub fn take_violations() -> Vec<Violation> {
        with_global(|g| std::mem::take(&mut g.violations))
    }

    /// Per-site counters, sorted by site label.
    pub fn stats() -> Vec<LockSiteStats> {
        let mut out = with_global(|g| {
            g.stats
                .iter()
                .map(|(site, c)| LockSiteStats {
                    site,
                    acquisitions: c.acquisitions,
                    contended: c.contended,
                    total_hold_ns: c.total_hold_ns,
                    max_hold_ns: c.max_hold_ns,
                })
                .collect::<Vec<_>>()
        });
        out.sort_by_key(|s| s.site);
        out
    }

    /// Clear the order graph, violations, dedup memory and counters.
    /// Call with no locks held (held entries themselves are per-thread
    /// and unaffected).
    pub fn reset() {
        with_global(|g| {
            g.edges.clear();
            g.violations.clear();
            g.reported.clear();
            g.stats.clear();
        });
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    //! Release builds: the entire tracking layer compiles to nothing.
    use super::*;

    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Zero-sized stand-in so `BlockingRegionGuard` exists in release.
    pub struct BlockingRegionGuard;

    #[inline(always)]
    pub fn blocking_region(_name: &'static str) -> BlockingRegionGuard {
        BlockingRegionGuard
    }

    #[inline(always)]
    pub fn blocking_region_allowing(
        _name: &'static str,
        _expected: &'static [&'static str],
    ) -> BlockingRegionGuard {
        BlockingRegionGuard
    }

    #[inline(always)]
    pub fn violations() -> Vec<Violation> {
        Vec::new()
    }

    #[inline(always)]
    pub fn take_violations() -> Vec<Violation> {
        Vec::new()
    }

    #[inline(always)]
    pub fn stats() -> Vec<LockSiteStats> {
        Vec::new()
    }

    #[inline(always)]
    pub fn reset() {}
}

pub use imp::{
    blocking_region, blocking_region_allowing, enabled, reset, set_enabled, stats,
    take_violations, violations, BlockingRegionGuard,
};

#[cfg(debug_assertions)]
pub(crate) use imp::{after_acquire, before_acquire, release, Hold};

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;
    use crate::{Mutex, RwLock};

    /// Serialises tests that toggle the global enable switch.
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        static MU: std::sync::Mutex<()> = std::sync::Mutex::new(());
        MU.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn two_lock_inversion_is_reported_with_both_sites() {
        let _g = guard();
        set_enabled(true);
        reset();
        let a = Mutex::new_labeled("trk.test.a", 0u32);
        let b = Mutex::new_labeled("trk.test.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        {
            let _gb = b.lock();
            let _ga = a.lock(); // closes the cycle
        }
        let vs = violations();
        set_enabled(false);
        let v = vs
            .iter()
            .find_map(|v| match v {
                Violation::Order(o) if o.acquiring == "trk.test.a" => Some(o),
                _ => None,
            })
            .expect("inversion must be reported");
        assert_eq!(v.held, "trk.test.b");
        assert_eq!(v.cycle, vec!["trk.test.a", "trk.test.b"]);
        assert_eq!(v.prior_stack, vec!["trk.test.a"]);
        assert_eq!(v.current_stack, vec!["trk.test.b"]);
    }

    #[test]
    fn read_read_cycles_do_not_fire() {
        let _g = guard();
        set_enabled(true);
        reset();
        let a = RwLock::new_labeled("trk.rr.a", ());
        let b = RwLock::new_labeled("trk.rr.b", ());
        {
            let _ga = a.read();
            let _gb = b.read();
        }
        {
            let _gb = b.read();
            let _ga = a.read(); // shared readers cannot deadlock
        }
        let vs = violations();
        set_enabled(false);
        assert!(
            !vs.iter().any(|v| matches!(v, Violation::Order(o) if o.acquiring.starts_with("trk.rr"))),
            "read-read inversion must not be flagged: {vs:?}"
        );
    }

    #[test]
    fn read_write_cycles_do_fire() {
        let _g = guard();
        set_enabled(true);
        reset();
        let a = RwLock::new_labeled("trk.rw.a", ());
        let b = RwLock::new_labeled("trk.rw.b", ());
        {
            let _ga = a.read();
            let _gb = b.write();
        }
        {
            let _gb = b.read();
            let _ga = a.write();
        }
        let vs = violations();
        set_enabled(false);
        assert!(
            vs.iter().any(|v| matches!(v, Violation::Order(o) if o.acquiring == "trk.rw.a")),
            "read/write inversion must be flagged: {vs:?}"
        );
    }

    #[test]
    fn blocking_region_flags_held_locks_but_not_expected_ones() {
        let _g = guard();
        set_enabled(true);
        reset();
        let m = Mutex::new_labeled("trk.blk.held", 1u8);
        {
            let _gm = m.lock();
            let _r = blocking_region_allowing("trk.blk.io", &["trk.blk.expected"]);
        }
        let expected = Mutex::new_labeled("trk.blk.expected", 1u8);
        {
            let _ge = expected.lock();
            let _r = blocking_region_allowing("trk.blk.io2", &["trk.blk.expected"]);
        }
        let vs = violations();
        set_enabled(false);
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::HeldAcrossBlocking { region: "trk.blk.io", locks } if locks.contains(&"trk.blk.held")
        )));
        assert!(!vs.iter().any(
            |v| matches!(v, Violation::HeldAcrossBlocking { region: "trk.blk.io2", .. })
        ));
    }

    #[test]
    fn lock_inside_blocking_region_is_flagged() {
        let _g = guard();
        set_enabled(true);
        reset();
        let m = Mutex::new_labeled("trk.inside.lock", ());
        {
            let _r = blocking_region("trk.inside.io");
            let _gm = m.lock();
        }
        let vs = violations();
        set_enabled(false);
        assert!(vs.iter().any(|v| matches!(
            v,
            Violation::HeldAcrossBlocking { region: "trk.inside.io", locks } if locks.contains(&"trk.inside.lock")
        )));
    }

    #[test]
    fn stats_count_acquisitions_and_hold_time() {
        let _g = guard();
        set_enabled(true);
        reset();
        let m = Mutex::new_labeled("trk.stats.m", 0u64);
        for _ in 0..5 {
            *m.lock() += 1;
        }
        let s = stats();
        set_enabled(false);
        let site = s.iter().find(|s| s.site == "trk.stats.m").expect("site present");
        assert_eq!(site.acquisitions, 5);
        assert!(site.max_hold_ns <= site.total_hold_ns);
    }

    #[test]
    fn contention_is_counted() {
        let _g = guard();
        set_enabled(true);
        reset();
        let m = std::sync::Arc::new(Mutex::new_labeled("trk.contend.m", ()));
        let m2 = m.clone();
        let held = m.lock();
        let t = std::thread::spawn(move || {
            let _g = m2.lock(); // blocks until the main thread releases
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(held);
        t.join().unwrap();
        let s = stats();
        set_enabled(false);
        let site = s.iter().find(|s| s.site == "trk.contend.m").expect("site present");
        assert_eq!(site.acquisitions, 2);
        assert!(site.contended >= 1, "the blocked acquisition must count as contended");
    }

    #[test]
    fn disabled_tracking_records_nothing() {
        let _g = guard();
        set_enabled(false);
        reset();
        let a = Mutex::new_labeled("trk.off.a", ());
        let b = Mutex::new_labeled("trk.off.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        assert!(violations().is_empty());
        assert!(stats().is_empty());
    }

    #[test]
    fn take_violations_drains_but_keeps_dedup() {
        let _g = guard();
        set_enabled(true);
        reset();
        let a = Mutex::new_labeled("trk.take.a", ());
        let b = Mutex::new_labeled("trk.take.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        let first = take_violations();
        assert!(!first.is_empty());
        {
            let _gb = b.lock();
            let _ga = a.lock(); // same pair again: deduped
        }
        let second = take_violations();
        set_enabled(false);
        assert!(second.is_empty(), "already-reported pair must not re-record");
    }

    #[test]
    fn three_lock_cycle_is_found_transitively() {
        let _g = guard();
        set_enabled(true);
        reset();
        let a = Mutex::new_labeled("trk.tri.a", ());
        let b = Mutex::new_labeled("trk.tri.b", ());
        let c = Mutex::new_labeled("trk.tri.c", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a -> b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b -> c
        }
        {
            let _gc = c.lock();
            let _ga = a.lock(); // closes a -> b -> c -> a
        }
        let vs = violations();
        set_enabled(false);
        let v = vs
            .iter()
            .find_map(|v| match v {
                Violation::Order(o) if o.acquiring == "trk.tri.a" => Some(o),
                _ => None,
            })
            .expect("transitive cycle must be reported");
        assert_eq!(v.cycle, vec!["trk.tri.a", "trk.tri.b", "trk.tri.c"]);
        assert_eq!(v.held, "trk.tri.c");
    }
}
