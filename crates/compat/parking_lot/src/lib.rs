//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace crate
//! shadows the crates.io `parking_lot` with the subset of its API the
//! CroSSE codebase uses (`RwLock`, `Mutex`), implemented over `std::sync`
//! primitives. Poisoning is swallowed — like real parking_lot, a panicked
//! holder does not poison the lock for later users.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, LockResult};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// `parking_lot::RwLock`-shaped wrapper over `std::sync::RwLock`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner().map_err(|e| {
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut().map_err(|e| {
            // get_mut's error type carries the same &mut T.
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// `parking_lot::Mutex`-shaped wrapper over `std::sync::Mutex`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner().map_err(|e| {
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut().map_err(|e| {
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn panicked_writer_does_not_poison() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 0, "lock stays usable after a panicked holder");
    }
}
