//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace crate
//! shadows the crates.io `parking_lot` with the subset of its API the
//! CroSSE codebase uses (`RwLock`, `Mutex`), implemented over `std::sync`
//! primitives. Poisoning is swallowed — like real parking_lot, a panicked
//! holder does not poison the lock for later users.
//!
//! Beyond API compatibility, the shim is CroSSE's **concurrency analysis
//! layer**: every lock can register a static site label
//! ([`Mutex::new_labeled`] / [`RwLock::new_labeled`]) feeding the
//! debug-gated lock-order deadlock detector, blocking-region hazard
//! checks and per-site hold/contention counters in [`tracking`]. In
//! release builds the instrumentation compiles out entirely: locks carry
//! no label, guards have no `Drop` impl, and every lock call is a direct
//! delegation to `std::sync` — bench-neutral by construction.

#![forbid(unsafe_code)]

pub mod tracking;

use std::fmt;
use std::sync::{self, LockResult};

#[cfg(debug_assertions)]
use tracking::LockKind;

/// Site label used by locks constructed without one ([`Mutex::new`] /
/// `Default`). The srclint R004 rule pushes engine crates towards
/// `new_labeled`, so `?unlabeled` appearing in `\lock-stats` output means
/// a construction site slipped through.
pub const UNLABELED: &str = "?unlabeled";

fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

// ---- guards ---------------------------------------------------------------
//
// Hand-rolled guard wrappers (instead of re-exporting the `std::sync`
// guards) so lock releases can feed the tracking layer in debug builds.
// Without `debug_assertions` the wrappers are plain newtypes with no
// `Drop` impl.

macro_rules! guard_type {
    ($name:ident, $inner:ident, $(#[$doc:meta])*) => {
        $(#[$doc])*
        pub struct $name<'a, T: ?Sized> {
            #[cfg(debug_assertions)]
            hold: Option<tracking::Hold>,
            inner: sync::$inner<'a, T>,
        }

        impl<T: ?Sized> std::ops::Deref for $name<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.inner
            }
        }

        impl<T: ?Sized + fmt::Debug> fmt::Debug for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }

        impl<T: ?Sized + fmt::Display> fmt::Display for $name<'_, T> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.inner.fmt(f)
            }
        }

        #[cfg(debug_assertions)]
        impl<T: ?Sized> Drop for $name<'_, T> {
            fn drop(&mut self) {
                if let Some(hold) = self.hold.take() {
                    tracking::release(hold);
                }
            }
        }
    };
}

guard_type!(MutexGuard, MutexGuard, #[doc = "RAII guard of [`Mutex::lock`]."]);
guard_type!(RwLockReadGuard, RwLockReadGuard, #[doc = "RAII guard of [`RwLock::read`]."]);
guard_type!(RwLockWriteGuard, RwLockWriteGuard, #[doc = "RAII guard of [`RwLock::write`]."]);

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Wrap a raw `std::sync` guard (no tracked hold).
macro_rules! untracked {
    ($name:ident, $inner:expr) => {
        $name {
            #[cfg(debug_assertions)]
            hold: None,
            inner: $inner,
        }
    };
}

// ---- RwLock ---------------------------------------------------------------

/// `parking_lot::RwLock`-shaped wrapper over `std::sync::RwLock`, with an
/// optional tracking site label (see [`tracking`]).
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    label: &'static str,
    inner: sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock::new_labeled(UNLABELED, value)
    }

    /// A lock registered under the static site label `label` — the name
    /// the deadlock detector, `\lock-stats` and violation reports use.
    /// Labels are site *classes*: every per-table rows lock shares one
    /// `"table.rows"` label.
    pub fn new_labeled(label: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = label;
        RwLock {
            #[cfg(debug_assertions)]
            label,
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner().map_err(|e| {
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        if tracking::enabled() {
            tracking::before_acquire(self.label, LockKind::Read);
            let (inner, contended) = match self.inner.try_read() {
                Ok(g) => (g, false),
                Err(sync::TryLockError::Poisoned(p)) => (p.into_inner(), false),
                Err(sync::TryLockError::WouldBlock) => (unpoison(self.inner.read()), true),
            };
            let hold = tracking::after_acquire(self.label, LockKind::Read, contended);
            return RwLockReadGuard { hold: Some(hold), inner };
        }
        untracked!(RwLockReadGuard, unpoison(self.inner.read()))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        if tracking::enabled() {
            tracking::before_acquire(self.label, LockKind::Write);
            let (inner, contended) = match self.inner.try_write() {
                Ok(g) => (g, false),
                Err(sync::TryLockError::Poisoned(p)) => (p.into_inner(), false),
                Err(sync::TryLockError::WouldBlock) => (unpoison(self.inner.write()), true),
            };
            let hold = tracking::after_acquire(self.label, LockKind::Write, contended);
            return RwLockWriteGuard { hold: Some(hold), inner };
        }
        untracked!(RwLockWriteGuard, unpoison(self.inner.write()))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }?;
        #[cfg(debug_assertions)]
        if tracking::enabled() {
            let hold = tracking::after_acquire(self.label, LockKind::Read, false);
            return Some(RwLockReadGuard { hold: Some(hold), inner });
        }
        Some(untracked!(RwLockReadGuard, inner))
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }?;
        #[cfg(debug_assertions)]
        if tracking::enabled() {
            let hold = tracking::after_acquire(self.label, LockKind::Write, false);
            return Some(RwLockWriteGuard { hold: Some(hold), inner });
        }
        Some(untracked!(RwLockWriteGuard, inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut().map_err(|e| {
            // get_mut's error type carries the same &mut T.
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

// ---- Mutex ----------------------------------------------------------------

/// `parking_lot::Mutex`-shaped wrapper over `std::sync::Mutex`, with an
/// optional tracking site label (see [`tracking`]).
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    label: &'static str,
    inner: sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex::new_labeled(UNLABELED, value)
    }

    /// A lock registered under the static site label `label`; see
    /// [`RwLock::new_labeled`].
    pub fn new_labeled(label: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = label;
        Mutex {
            #[cfg(debug_assertions)]
            label,
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        unpoison(self.inner.into_inner().map_err(|e| {
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        if tracking::enabled() {
            tracking::before_acquire(self.label, LockKind::Write);
            let (inner, contended) = match self.inner.try_lock() {
                Ok(g) => (g, false),
                Err(sync::TryLockError::Poisoned(p)) => (p.into_inner(), false),
                Err(sync::TryLockError::WouldBlock) => (unpoison(self.inner.lock()), true),
            };
            let hold = tracking::after_acquire(self.label, LockKind::Write, contended);
            return MutexGuard { hold: Some(hold), inner };
        }
        untracked!(MutexGuard, unpoison(self.inner.lock()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }?;
        #[cfg(debug_assertions)]
        if tracking::enabled() {
            let hold = tracking::after_acquire(self.label, LockKind::Write, false);
            return Some(MutexGuard { hold: Some(hold), inner });
        }
        Some(untracked!(MutexGuard, inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.inner.get_mut().map_err(|e| {
            sync::PoisonError::new(e.into_inner())
        }))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn labeled_roundtrip() {
        let l = RwLock::new_labeled("test.rw", 7u8);
        assert_eq!(*l.read(), 7);
        let m = Mutex::new_labeled("test.mu", 7u8);
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn try_paths_still_work() {
        let l = RwLock::new(0u8);
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_some());
        let m = Mutex::new(0u8);
        assert!(m.try_lock().is_some());
        let held = m.lock();
        assert!(m.try_lock().is_none());
        drop(held);
    }

    #[test]
    fn panicked_writer_does_not_poison() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*l.read(), 0, "lock stays usable after a panicked holder");
    }
}
