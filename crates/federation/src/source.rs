//! Data sources behind the integration layer.
//!
//! The SmartGround platform "integrates existing information from national
//! and international databanks" over `postgres_fdw` (paper Sec. I-A). We
//! model each databank as a [`DataSource`]; remote ones add a configurable
//! latency/transfer cost so federation experiments (E5) can sweep network
//! conditions without a network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crosse_relational::{Database, Result, RowSet, Schema};

/// A queryable source of tables.
pub trait DataSource: Send + Sync {
    /// Stable source name (used to prefix imported foreign tables).
    fn name(&self) -> &str;

    /// Names of the tables this source exposes.
    fn table_names(&self) -> Vec<String>;

    /// Schema of one table.
    fn table_schema(&self, table: &str) -> Result<Schema>;

    /// Fetch the full content of a table (the paper's integration layer is
    /// read-only: "mediated query systems enable a uniform data access
    /// solution by providing a single point for read-only query").
    fn fetch_table(&self, table: &str) -> Result<RowSet>;

    /// Ship a read-only SELECT to the source and return its result — the
    /// sub-query path of a mediated query system. Remote sources charge
    /// their cost model on the *result* rows, which is what makes filter
    /// pushdown profitable.
    fn fetch_query(&self, sql: &str) -> Result<RowSet>;

    /// Cumulative transfer statistics.
    fn stats(&self) -> SourceStats;
}

/// Transfer statistics of a source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    pub requests: u64,
    pub rows_transferred: u64,
    /// Total simulated network time in nanoseconds.
    pub simulated_network_nanos: u64,
}

impl SourceStats {
    pub fn simulated_network(&self) -> Duration {
        Duration::from_nanos(self.simulated_network_nanos)
    }
}

#[derive(Debug, Default)]
struct StatCounters {
    requests: AtomicU64,
    rows: AtomicU64,
    nanos: AtomicU64,
}

impl StatCounters {
    fn snapshot(&self) -> SourceStats {
        SourceStats {
            requests: self.requests.load(Ordering::Relaxed),
            rows_transferred: self.rows.load(Ordering::Relaxed),
            simulated_network_nanos: self.nanos.load(Ordering::Relaxed),
        }
    }
}

/// A source colocated with the mediator: no transfer cost.
#[derive(Clone)]
pub struct LocalSource {
    name: String,
    db: Database,
    stats: Arc<StatCounters>,
}

impl LocalSource {
    pub fn new(name: impl Into<String>, db: Database) -> Self {
        LocalSource { name: name.into(), db, stats: Arc::default() }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }
}

impl DataSource for LocalSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn table_names(&self) -> Vec<String> {
        self.db.catalog().table_names()
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        Ok(self.db.catalog().get_table(table)?.schema.clone())
    }

    fn fetch_table(&self, table: &str) -> Result<RowSet> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let t = self.db.catalog().get_table(table)?;
        let rows = t.scan();
        self.stats.rows.fetch_add(rows.len() as u64, Ordering::Relaxed);
        Ok(RowSet { schema: t.schema.clone(), rows })
    }

    fn fetch_query(&self, sql: &str) -> Result<RowSet> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let rs = self.db.query(sql)?;
        self.stats.rows.fetch_add(rs.len() as u64, Ordering::Relaxed);
        Ok(rs)
    }

    fn stats(&self) -> SourceStats {
        self.stats.snapshot()
    }
}

/// Network cost model for a remote source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Fixed round-trip latency per request.
    pub per_request: Duration,
    /// Marginal transfer cost per row.
    pub per_row: Duration,
    /// When true the cost is actually slept; when false it is only
    /// accounted in [`SourceStats::simulated_network_nanos`] (useful in
    /// unit tests).
    pub realtime: bool,
}

impl LatencyModel {
    pub fn instant() -> Self {
        LatencyModel { per_request: Duration::ZERO, per_row: Duration::ZERO, realtime: false }
    }

    pub fn with_rtt(per_request: Duration) -> Self {
        LatencyModel { per_request, per_row: Duration::ZERO, realtime: true }
    }

    fn cost(&self, rows: usize) -> Duration {
        self.per_request + self.per_row * rows as u32
    }
}

/// A remote databank reached over a (simulated) network link —
/// the `postgres_fdw` peer of the paper's Fig. 1.
#[derive(Clone)]
pub struct RemoteSource {
    name: String,
    db: Database,
    latency: LatencyModel,
    stats: Arc<StatCounters>,
}

impl RemoteSource {
    pub fn new(name: impl Into<String>, db: Database, latency: LatencyModel) -> Self {
        RemoteSource { name: name.into(), db, latency, stats: Arc::default() }
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    fn charge(&self, rows: usize) {
        let cost = self.latency.cost(rows);
        self.stats
            .nanos
            .fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        if self.latency.realtime && !cost.is_zero() {
            std::thread::sleep(cost);
        }
    }
}

impl DataSource for RemoteSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn table_names(&self) -> Vec<String> {
        self.db.catalog().table_names()
    }

    fn table_schema(&self, table: &str) -> Result<Schema> {
        Ok(self.db.catalog().get_table(table)?.schema.clone())
    }

    fn fetch_table(&self, table: &str) -> Result<RowSet> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let t = self.db.catalog().get_table(table)?;
        let rows = t.scan();
        self.stats.rows.fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.charge(rows.len());
        Ok(RowSet { schema: t.schema.clone(), rows })
    }

    fn fetch_query(&self, sql: &str) -> Result<RowSet> {
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        let rs = self.db.query(sql)?;
        self.stats.rows.fetch_add(rs.len() as u64, Ordering::Relaxed);
        self.charge(rs.len());
        Ok(rs)
    }

    fn stats(&self) -> SourceStats {
        self.stats.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT);
             INSERT INTO landfill VALUES ('a','Torino'), ('b','Milano');",
        )
        .unwrap();
        db
    }

    #[test]
    fn local_source_fetches() {
        let src = LocalSource::new("main", seeded_db());
        let rs = src.fetch_table("landfill").unwrap();
        assert_eq!(rs.len(), 2);
        let stats = src.stats();
        assert_eq!(stats.requests, 1);
        assert_eq!(stats.rows_transferred, 2);
        assert_eq!(stats.simulated_network_nanos, 0);
    }

    #[test]
    fn remote_source_accounts_latency_without_sleeping() {
        let latency = LatencyModel {
            per_request: Duration::from_millis(10),
            per_row: Duration::from_micros(100),
            realtime: false,
        };
        let src = RemoteSource::new("eu-stats", seeded_db(), latency);
        src.fetch_table("landfill").unwrap();
        let stats = src.stats();
        // 10ms + 2 * 100µs
        assert_eq!(stats.simulated_network(), Duration::from_micros(10_200));
    }

    #[test]
    fn remote_realtime_actually_waits() {
        let latency = LatencyModel {
            per_request: Duration::from_millis(5),
            per_row: Duration::ZERO,
            realtime: true,
        };
        let src = RemoteSource::new("r", seeded_db(), latency);
        let t0 = std::time::Instant::now();
        src.fetch_table("landfill").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn unknown_table_is_error() {
        let src = LocalSource::new("main", seeded_db());
        assert!(src.fetch_table("nope").is_err());
        assert!(src.table_schema("nope").is_err());
    }

    #[test]
    fn table_listing_and_schema() {
        let src = LocalSource::new("main", seeded_db());
        assert_eq!(src.table_names(), vec!["landfill"]);
        assert_eq!(src.table_schema("landfill").unwrap().len(), 2);
    }

    #[test]
    fn stats_accumulate_across_clones() {
        let src = LocalSource::new("main", seeded_db());
        let src2 = src.clone();
        src.fetch_table("landfill").unwrap();
        src2.fetch_table("landfill").unwrap();
        assert_eq!(src.stats().requests, 2);
    }
}
