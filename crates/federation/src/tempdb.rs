//! The temporary support database (paper Fig. 6).
//!
//! "A temporary support database stores the results in temporary tables,
//! on which a final SQL query (obtained by leveraging the enrichment syntax
//! tree) is issued to generate the final result of the SESQL query."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crosse_relational::{Database, Result, RowSet};

/// A database dedicated to short-lived materialised intermediates.
#[derive(Debug, Clone, Default)]
pub struct TempDb {
    db: Database,
    counter: Arc<AtomicU64>,
}

impl TempDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying database — the final SESQL query runs here.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Materialise a row set under a fresh generated name; returns the name.
    pub fn store(&self, rows: &RowSet) -> Result<String> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let name = format!("tmp_{n}");
        self.db.materialise(&name, rows)?;
        Ok(name)
    }

    /// Drop one temporary table.
    pub fn drop(&self, name: &str) -> Result<()> {
        self.db.catalog().drop_table(name)
    }

    /// Drop every temporary table.
    pub fn clear(&self) {
        for name in self.db.catalog().table_names() {
            let _ = self.db.catalog().drop_table(&name);
        }
    }

    /// Number of live temporary tables.
    pub fn live_tables(&self) -> usize {
        self.db.catalog().table_names().len()
    }

    /// Store, run one query against the temporary table, then drop it.
    ///
    /// `sql_for` receives the generated table name and must return the
    /// final query text.
    pub fn with_table<F>(&self, rows: &RowSet, sql_for: F) -> Result<RowSet>
    where
        F: FnOnce(&str) -> String,
    {
        let name = self.store(rows)?;
        let result = self.db.query(&sql_for(&name));
        // Always drop, even on query error.
        let _ = self.drop(&name);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosse_relational::{Column, DataType, Schema, Value};

    fn rows() -> RowSet {
        RowSet {
            schema: Schema::new(vec![
                Column::new("elem", DataType::Text),
                Column::new("danger", DataType::Int),
            ]),
            rows: vec![
                vec![Value::from("Hg"), Value::Int(5)],
                vec![Value::from("Cu"), Value::Int(1)],
            ],
        }
    }

    #[test]
    fn store_generates_unique_names() {
        let tmp = TempDb::new();
        let a = tmp.store(&rows()).unwrap();
        let b = tmp.store(&rows()).unwrap();
        assert_ne!(a, b);
        assert_eq!(tmp.live_tables(), 2);
    }

    #[test]
    fn with_table_runs_final_query_and_cleans_up() {
        let tmp = TempDb::new();
        let out = tmp
            .with_table(&rows(), |t| format!("SELECT elem FROM {t} WHERE danger >= 4"))
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::from("Hg"));
        assert_eq!(tmp.live_tables(), 0, "temporary table dropped");
    }

    #[test]
    fn with_table_cleans_up_on_error() {
        let tmp = TempDb::new();
        let res = tmp.with_table(&rows(), |t| format!("SELECT nope FROM {t}"));
        assert!(res.is_err());
        assert_eq!(tmp.live_tables(), 0);
    }

    #[test]
    fn clear_drops_all() {
        let tmp = TempDb::new();
        tmp.store(&rows()).unwrap();
        tmp.store(&rows()).unwrap();
        tmp.clear();
        assert_eq!(tmp.live_tables(), 0);
    }

    #[test]
    fn drop_unknown_errors() {
        let tmp = TempDb::new();
        assert!(tmp.drop("tmp_99").is_err());
    }

    #[test]
    fn clones_share_counter() {
        let tmp = TempDb::new();
        let tmp2 = tmp.clone();
        let a = tmp.store(&rows()).unwrap();
        let b = tmp2.store(&rows()).unwrap();
        assert_ne!(a, b);
    }
}
