//! Resource mapping between relational values and RDF terms.
//!
//! Fig. 6 of the paper: "A JoinManager module combines the partial results
//! returned by the two independent queries, leveraging the resource mapping
//! described in an XML file." The mapping says, per relational column, how
//! its values denote RDF resources. We keep the declarative spirit with a
//! plain-text format instead of XML:
//!
//! ```text
//! # table.column  ->  strategy [namespace]
//! elem_contained.elem_name -> iri http://smartground.eu/elem/
//! landfill.city            -> local-name
//! analysis.report_code     -> literal
//! ```
//!
//! Strategies:
//! * `literal`    — the value matches plain literals with the same text.
//! * `local-name` — the value matches IRIs whose local name equals it
//!   (default when a column has no explicit rule).
//! * `iri <ns>`   — the value `v` denotes exactly the IRI `<ns>v`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crosse_rdf::term::Term;
use crosse_relational::{Error, Result, Value};

/// How a column's values denote RDF terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapStrategy {
    Literal,
    LocalName,
    IriPrefix(String),
}

impl MapStrategy {
    /// Does `value` denote `term` under this strategy? Borrows the value's
    /// text — no allocation per probe for text columns.
    pub fn matches(&self, value: &Value, term: &Term) -> bool {
        if value.is_null() {
            return false;
        }
        let v = value.lexical();
        match self {
            MapStrategy::Literal => term.is_literal() && term.lexical_form() == v.as_ref(),
            MapStrategy::LocalName => term.matches_lexical(&v),
            MapStrategy::IriPrefix(ns) => matches!(
                term,
                Term::Iri(i) if i.strip_prefix(ns.as_str()) == Some(v.as_ref())
            ),
        }
    }

    /// The canonical term a value denotes (used to *construct* SPARQL
    /// constants from relational values).
    pub fn to_term(&self, value: &Value) -> Term {
        let v = value.lexical_form();
        match self {
            MapStrategy::Literal => Term::lit(v),
            // Without a namespace the best constant is the bare IRI; the
            // local-name fallback at match time covers namespaced data.
            MapStrategy::LocalName => Term::iri(v),
            MapStrategy::IriPrefix(ns) => Term::iri(format!("{ns}{v}")),
        }
    }
}

/// Column-level resource mapping registry. Cheap to clone.
#[derive(Debug, Clone)]
pub struct ResourceMapping {
    rules: Arc<RwLock<HashMap<(String, String), MapStrategy>>>,
}

impl Default for ResourceMapping {
    fn default() -> Self {
        ResourceMapping {
            rules: Arc::new(RwLock::new_labeled("fdw.mapping_rules", HashMap::new())),
        }
    }
}

impl ResourceMapping {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(table: &str, column: &str) -> (String, String) {
        (table.to_ascii_lowercase(), column.to_ascii_lowercase())
    }

    pub fn set(&self, table: &str, column: &str, strategy: MapStrategy) {
        self.rules.write().insert(Self::key(table, column), strategy);
    }

    /// Strategy for a column; [`MapStrategy::LocalName`] when unmapped.
    pub fn strategy(&self, table: &str, column: &str) -> MapStrategy {
        self.rules
            .read()
            .get(&Self::key(table, column))
            .cloned()
            .unwrap_or(MapStrategy::LocalName)
    }

    pub fn len(&self) -> usize {
        self.rules.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parse the text format described in the module docs.
    pub fn parse(text: &str) -> Result<Self> {
        let mapping = ResourceMapping::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (lhs, rhs) = line.split_once("->").ok_or_else(|| {
                Error::parse(format!("line {}: missing `->`", lineno + 1), 0)
            })?;
            let (table, column) = lhs.trim().split_once('.').ok_or_else(|| {
                Error::parse(
                    format!("line {}: expected `table.column`", lineno + 1),
                    0,
                )
            })?;
            let mut parts = rhs.split_whitespace();
            let strategy = match parts.next() {
                Some("literal") => MapStrategy::Literal,
                Some("local-name") => MapStrategy::LocalName,
                Some("iri") => {
                    let ns = parts.next().ok_or_else(|| {
                        Error::parse(
                            format!("line {}: `iri` needs a namespace", lineno + 1),
                            0,
                        )
                    })?;
                    MapStrategy::IriPrefix(ns.to_string())
                }
                other => {
                    return Err(Error::parse(
                        format!("line {}: unknown strategy {other:?}", lineno + 1),
                        0,
                    ))
                }
            };
            if parts.next().is_some() {
                return Err(Error::parse(
                    format!("line {}: trailing tokens", lineno + 1),
                    0,
                ));
            }
            mapping.set(table.trim(), column.trim(), strategy);
        }
        Ok(mapping)
    }

    /// Serialise back to the text format (sorted for determinism).
    pub fn to_text(&self) -> String {
        let rules = self.rules.read();
        let mut lines: Vec<String> = rules
            .iter()
            .map(|((t, c), s)| {
                let rhs = match s {
                    MapStrategy::Literal => "literal".to_string(),
                    MapStrategy::LocalName => "local-name".to_string(),
                    MapStrategy::IriPrefix(ns) => format!("iri {ns}"),
                };
                format!("{t}.{c} -> {rhs}")
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_strategy_is_local_name() {
        let m = ResourceMapping::new();
        assert_eq!(m.strategy("t", "c"), MapStrategy::LocalName);
        assert!(m.is_empty());
    }

    #[test]
    fn literal_strategy_matching() {
        let s = MapStrategy::Literal;
        assert!(s.matches(&Value::from("Hg"), &Term::lit("Hg")));
        assert!(!s.matches(&Value::from("Hg"), &Term::iri("Hg")));
        assert!(!s.matches(&Value::Null, &Term::lit("")));
        assert_eq!(s.to_term(&Value::from("Hg")), Term::lit("Hg"));
    }

    #[test]
    fn local_name_strategy_matching() {
        let s = MapStrategy::LocalName;
        assert!(s.matches(&Value::from("Hg"), &Term::iri("http://x/onto#Hg")));
        assert!(s.matches(&Value::from("Hg"), &Term::lit("Hg")));
        assert!(!s.matches(&Value::from("Hg"), &Term::iri("http://x/onto#Pb")));
    }

    #[test]
    fn iri_prefix_strategy() {
        let s = MapStrategy::IriPrefix("http://smg.eu/elem/".into());
        assert!(s.matches(&Value::from("Hg"), &Term::iri("http://smg.eu/elem/Hg")));
        assert!(!s.matches(&Value::from("Hg"), &Term::iri("http://other/Hg")));
        assert_eq!(
            s.to_term(&Value::from("Hg")),
            Term::iri("http://smg.eu/elem/Hg")
        );
    }

    #[test]
    fn numeric_values_use_lexical_form() {
        let s = MapStrategy::Literal;
        assert!(s.matches(&Value::Int(5), &Term::lit("5")));
        assert!(s.matches(&Value::Float(2.0), &Term::lit("2.0")));
    }

    #[test]
    fn parse_round_trip() {
        let text = "\
# comment
elem_contained.elem_name -> iri http://smg.eu/elem/
landfill.city -> local-name
analysis.code -> literal";
        let m = ResourceMapping::parse(text).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(
            m.strategy("elem_contained", "ELEM_NAME"),
            MapStrategy::IriPrefix("http://smg.eu/elem/".into())
        );
        assert_eq!(m.strategy("analysis", "code"), MapStrategy::Literal);
        let text2 = m.to_text();
        let m2 = ResourceMapping::parse(&text2).unwrap();
        assert_eq!(m2.len(), 3);
        assert_eq!(m2.strategy("landfill", "city"), MapStrategy::LocalName);
    }

    #[test]
    fn parse_errors() {
        assert!(ResourceMapping::parse("landfill.city local-name").is_err());
        assert!(ResourceMapping::parse("landfillcity -> literal").is_err());
        assert!(ResourceMapping::parse("a.b -> frobnicate").is_err());
        assert!(ResourceMapping::parse("a.b -> iri").is_err());
        assert!(ResourceMapping::parse("a.b -> literal extra").is_err());
    }
}
