// srclint: allow(R002): the probe index only stores solution ids whose join variable is bound
//! The JoinManager: combines relational rows with SPARQL solutions.
//!
//! Fig. 6 of the paper: the SQL query and the SPARQL query are "indepen-
//! dently issued on the relational database and on the ontological
//! knowledge base"; the JoinManager then joins the two partial results,
//! using the resource mapping to decide when a relational value and an RDF
//! term denote the same thing.

use std::collections::{HashMap, HashSet};

use crosse_rdf::sparql::eval::Solutions;
use crosse_rdf::term::Term;
use crosse_relational::{Column, DataType, Error, Interner, Result, RowSet, Schema, Value};

use crate::mapping::MapStrategy;

/// Join behaviour for unmatched relational rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineKind {
    /// Keep only matching rows.
    Inner,
    /// Keep all relational rows; pad missing variables with NULL.
    LeftOuter,
}

/// What to join and which solution variables to import.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// Output column of the relational result to match on.
    pub column: String,
    /// Solution variable whose bindings are matched against `column`.
    pub variable: String,
    pub kind: CombineKind,
    /// `(variable, new_column_name)` pairs appended to the output schema.
    pub take: Vec<(String, String)>,
    /// How `column` values denote RDF terms.
    pub strategy: MapStrategy,
}

/// Numeric/boolean interpretation of a literal's lexical form, if any.
fn scalar_literal(value: &str) -> Option<Value> {
    if let Ok(i) = value.parse::<i64>() {
        Some(Value::Int(i))
    } else if let Ok(f) = value.parse::<f64>() {
        Some(Value::Float(f))
    } else if value == "true" {
        Some(Value::Bool(true))
    } else if value == "false" {
        Some(Value::Bool(false))
    } else {
        None
    }
}

/// Convert an RDF term to a relational value. Literals that parse as
/// numbers become numeric; everything else arrives as text (IRIs by local
/// name, so enriched columns read like the paper's examples: `Italy`, not
/// `<http://...#Italy>`).
pub fn term_to_value(term: &Term) -> Value {
    match term {
        Term::Literal { value, .. } => {
            scalar_literal(value).unwrap_or_else(|| Value::from(value.as_str()))
        }
        Term::Iri(_) => Value::from(term.local_name()),
        Term::Blank(b) => Value::from(format!("_:{b}")),
    }
}

/// [`term_to_value`] interning text through `interner`: N occurrences of a
/// term across a solution set cost one allocation total, and downstream
/// equality checks get the interner's pointer fast path.
pub fn term_to_value_in(term: &Term, interner: &Interner) -> Value {
    match term {
        Term::Literal { value, .. } => {
            scalar_literal(value).unwrap_or_else(|| interner.value(value))
        }
        Term::Iri(_) => interner.value(term.local_name()),
        Term::Blank(b) => interner.value(&format!("_:{b}")),
    }
}

/// Join `rows` with `sols` according to `spec` (ad-hoc interner; prefer
/// [`combine_in`] with the owning database's interner on hot paths).
pub fn combine(rows: &RowSet, sols: &Solutions, spec: &JoinSpec) -> Result<RowSet> {
    combine_in(rows, sols, spec, &Interner::new())
}

/// Join `rows` with `sols` according to `spec`, interning imported term
/// values through `interner`.
pub fn combine_in(
    rows: &RowSet,
    sols: &Solutions,
    spec: &JoinSpec,
    interner: &Interner,
) -> Result<RowSet> {
    let col_idx = rows
        .column_index(&spec.column)
        .ok_or_else(|| Error::plan(format!("no output column `{}` to enrich", spec.column)))?;
    let var_idx = sols
        .var_index(&spec.variable)
        .ok_or_else(|| Error::plan(format!("no solution variable `?{}`", spec.variable)))?;
    let take_idx: Vec<usize> = spec
        .take
        .iter()
        .map(|(v, _)| {
            sols.var_index(v)
                .ok_or_else(|| Error::plan(format!("no solution variable `?{v}`")))
        })
        .collect::<Result<_>>()?;

    // Index solutions by every lexical key their match-term answers to.
    let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, row) in sols.rows.iter().enumerate() {
        if let Some(term) = &row[var_idx] {
            index.entry(term.lexical_form()).or_default().push(i);
            if term.is_iri() {
                let local = term.local_name();
                if local != term.lexical_form() {
                    index.entry(local).or_default().push(i);
                }
            }
        }
    }

    // Every input row produces at least one output row under LeftOuter;
    // reserving up front spares the doubling reallocations on the
    // (dominant) 1:1 match shape.
    let width = rows.schema.len() + take_idx.len();
    let mut out: Vec<Vec<Value>> = Vec::with_capacity(match spec.kind {
        CombineKind::LeftOuter => rows.rows.len(),
        CombineKind::Inner => 0,
    });
    // Output type of each appended column, unified while rows are built
    // (Int+Float widen to Float, anything else mixed falls back to Text)
    // so typing needs no second scan over the output.
    let mut take_types: Vec<Option<DataType>> = vec![None; take_idx.len()];
    for row in &rows.rows {
        let value = &row[col_idx];
        let mut matched = false;
        if !value.is_null() {
            // Borrows the cell for text values — no per-row key allocation.
            let key = value.lexical();
            if let Some(cands) = index.get(key.as_ref()) {
                for &si in cands {
                    let term = sols.rows[si][var_idx].as_ref().expect("indexed ⇒ bound");
                    if !spec.strategy.matches(value, term) {
                        continue;
                    }
                    matched = true;
                    // Exact-width allocation instead of clone-then-push
                    // (which would copy at base width, then reallocate).
                    let mut new_row = Vec::with_capacity(width);
                    new_row.extend_from_slice(row);
                    for (k, &ti) in take_idx.iter().enumerate() {
                        let v = match &sols.rows[si][ti] {
                            Some(t) => term_to_value_in(t, interner),
                            None => Value::Null,
                        };
                        unify_type(&mut take_types[k], &v);
                        new_row.push(v);
                    }
                    out.push(new_row);
                }
            }
        }
        if !matched && spec.kind == CombineKind::LeftOuter {
            let mut new_row = Vec::with_capacity(width);
            new_row.extend_from_slice(row);
            new_row.extend(std::iter::repeat_n(Value::Null, take_idx.len()));
            out.push(new_row);
        }
    }

    // Type the appended columns from the values actually produced, so the
    // enriched result can be materialised into the temporary support
    // database without coercion failures.
    let mut schema = Schema::new(rows.schema.columns.clone());
    let base = rows.schema.len();
    for (k, (_, name)) in spec.take.iter().enumerate() {
        let dt = take_types[k].unwrap_or(DataType::Text);
        widen_column(&mut out, base + k, dt);
        schema.columns.push(Column::new(name.clone(), dt));
    }
    Ok(RowSet { schema, rows: out })
}

/// Fold one produced value into the running unified type of its column.
fn unify_type(ty: &mut Option<DataType>, v: &Value) {
    let Some(dt) = v.data_type() else { return };
    *ty = Some(match *ty {
        None => dt,
        Some(t) if t == dt => t,
        Some(DataType::Int) if dt == DataType::Float => DataType::Float,
        Some(DataType::Float) if dt == DataType::Int => DataType::Float,
        Some(_) => DataType::Text,
    });
}

/// Convert column `idx` to its unified type in a single pass: Int widens
/// to Float, heterogeneous columns stringify to Text, NULLs stay NULL.
/// Values already of type `ty` are left untouched.
fn widen_column(rows: &mut [Vec<Value>], idx: usize, ty: DataType) {
    for row in rows.iter_mut() {
        let v = &mut row[idx];
        match (&*v, ty) {
            (Value::Int(i), DataType::Float) => *v = Value::Float(*i as f64),
            (Value::Null, _) => {}
            (other, DataType::Text) if other.data_type() != Some(DataType::Text) => {
                *v = Value::from(other.lexical_form());
            }
            _ => {}
        }
    }
}

/// The set of relational values (lexical forms) for which a binding of
/// `variable` exists — used by the boolean enrichments, which only need
/// membership, not the joined rows.
pub fn matching_keys(sols: &Solutions, variable: &str) -> Result<Vec<Term>> {
    let var_idx = sols
        .var_index(variable)
        .ok_or_else(|| Error::plan(format!("no solution variable `?{variable}`")))?;
    let mut seen: HashSet<&Term> = HashSet::new();
    let mut out: Vec<Term> = Vec::new();
    for row in &sols.rows {
        if let Some(t) = &row[var_idx] {
            if seen.insert(t) {
                out.push(t.clone());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosse_relational::Column;

    fn rowset() -> RowSet {
        RowSet {
            schema: Schema::new(vec![
                Column::new("elem_name", DataType::Text),
                Column::new("landfill_name", DataType::Text),
            ]),
            rows: vec![
                vec![Value::from("Hg"), Value::from("a")],
                vec![Value::from("Pb"), Value::from("a")],
                vec![Value::from("Cu"), Value::from("a")],
                vec![Value::Null, Value::from("a")],
            ],
        }
    }

    fn solutions() -> Solutions {
        Solutions {
            variables: vec!["s".into(), "o".into()],
            rows: vec![
                vec![Some(Term::iri("Hg")), Some(Term::lit("5"))],
                vec![Some(Term::iri("Pb")), Some(Term::lit("4"))],
                vec![Some(Term::iri("As")), Some(Term::lit("5"))],
            ],
        }
    }

    fn spec(kind: CombineKind) -> JoinSpec {
        JoinSpec {
            column: "elem_name".into(),
            variable: "s".into(),
            kind,
            take: vec![("o".into(), "dangerLevel".into())],
            strategy: MapStrategy::LocalName,
        }
    }

    #[test]
    fn left_outer_keeps_unmatched_with_null() {
        let out = combine(&rowset(), &solutions(), &spec(CombineKind::LeftOuter)).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out.schema.len(), 3);
        assert_eq!(out.rows[0][2], Value::Int(5)); // Hg → "5" numeric
        assert_eq!(out.rows[1][2], Value::Int(4));
        assert!(out.rows[2][2].is_null()); // Cu unmatched
        assert!(out.rows[3][2].is_null()); // NULL never matches
    }

    #[test]
    fn inner_drops_unmatched() {
        let out = combine(&rowset(), &solutions(), &spec(CombineKind::Inner)).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn multi_valued_enrichment_multiplies_rows() {
        let mut sols = solutions();
        sols.rows.push(vec![Some(Term::iri("Hg")), Some(Term::lit("extreme"))]);
        let out = combine(&rowset(), &sols, &spec(CombineKind::LeftOuter)).unwrap();
        // Hg matches twice → 2 rows; Pb 1; Cu + NULL padded → 5 total.
        assert_eq!(out.len(), 5);
        let hg: Vec<_> = out
            .rows
            .iter()
            .filter(|r| r[0] == Value::from("Hg"))
            .collect();
        assert_eq!(hg.len(), 2);
    }

    #[test]
    fn namespaced_iris_match_by_local_name() {
        let sols = Solutions {
            variables: vec!["s".into(), "o".into()],
            rows: vec![vec![
                Some(Term::iri("http://smg.eu/elem#Hg")),
                Some(Term::iri("http://smg.eu/class#HeavyMetal")),
            ]],
        };
        let out = combine(&rowset(), &sols, &spec(CombineKind::Inner)).unwrap();
        assert_eq!(out.len(), 1);
        // imported IRI arrives as local name
        assert_eq!(out.rows[0][2], Value::from("HeavyMetal"));
    }

    #[test]
    fn literal_strategy_rejects_iris() {
        let mut s = spec(CombineKind::Inner);
        s.strategy = MapStrategy::Literal;
        let out = combine(&rowset(), &solutions(), &s).unwrap();
        assert_eq!(out.len(), 0, "solutions bind IRIs, literal strategy rejects them");
    }

    #[test]
    fn unknown_column_or_variable_errors() {
        let mut s = spec(CombineKind::Inner);
        s.column = "nope".into();
        assert!(combine(&rowset(), &solutions(), &s).is_err());
        let mut s = spec(CombineKind::Inner);
        s.variable = "nope".into();
        assert!(combine(&rowset(), &solutions(), &s).is_err());
        let mut s = spec(CombineKind::Inner);
        s.take = vec![("nope".into(), "x".into())];
        assert!(combine(&rowset(), &solutions(), &s).is_err());
    }

    #[test]
    fn term_to_value_conversions() {
        assert_eq!(term_to_value(&Term::lit("5")), Value::Int(5));
        assert_eq!(term_to_value(&Term::lit("2.5")), Value::Float(2.5));
        assert_eq!(term_to_value(&Term::lit("true")), Value::Bool(true));
        assert_eq!(term_to_value(&Term::lit("Torino")), Value::from("Torino"));
        assert_eq!(term_to_value(&Term::iri("http://x#Italy")), Value::from("Italy"));
        assert_eq!(term_to_value(&Term::blank("b1")), Value::from("_:b1"));
    }

    #[test]
    fn matching_keys_dedupes() {
        let mut sols = solutions();
        sols.rows.push(vec![Some(Term::iri("Hg")), Some(Term::lit("9"))]);
        let keys = matching_keys(&sols, "s").unwrap();
        assert_eq!(keys.len(), 3);
        assert!(matching_keys(&sols, "zz").is_err());
    }

    #[test]
    fn empty_solutions_left_outer_pads_everything() {
        let sols = Solutions { variables: vec!["s".into(), "o".into()], rows: vec![] };
        let out = combine(&rowset(), &sols, &spec(CombineKind::LeftOuter)).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.rows.iter().all(|r| r[2].is_null()));
    }
}
