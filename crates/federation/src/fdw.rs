// srclint: allow(R002): thread join() only errs when a fetch worker panicked; re-raising that panic is intended
//! The federated database: a mediator over multiple sources.
//!
//! `FederatedDatabase` plays the role of the paper's integrated "Main
//! Platform": a single SQL entry point whose catalog combines native tables
//! with foreign tables imported from registered sources (the
//! `postgres_fdw` pattern). Foreign tables are fetched through the source's
//! cost model on demand and cached; `refresh()` re-pulls them, modelling
//! the periodic synchronisation of the EU databanks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

use parking_lot::RwLock;

use crosse_relational::sql::ast::{Expr, JoinKind, Statement, TableRef};
use crosse_relational::{Column, Database, Error, Result, RowSet};

use crate::source::DataSource;

/// Naming scheme for imported foreign tables.
fn foreign_table_name(source: &str, table: &str) -> String {
    format!("{source}__{table}")
}

/// Result of a pushdown query: the rows plus what was shipped where.
#[derive(Debug, Clone)]
pub struct PushdownOutcome {
    pub result: RowSet,
    /// One entry per foreign-table reference in the query.
    pub pushed: Vec<PushedFilter>,
}

/// One remote sub-query issued during pushdown.
#[derive(Debug, Clone)]
pub struct PushedFilter {
    pub foreign_table: String,
    /// The SQL shipped to the source.
    pub remote_sql: String,
    /// Rows that actually crossed the (simulated) network.
    pub rows_fetched: usize,
}

/// A prepared federated query: the mediator's compiled statement plus the
/// foreign tables it references. `live` executions re-pull exactly those
/// tables before running the cached plan — prepared remote queries,
/// without re-analysing the SQL text per request.
#[derive(Clone)]
pub struct FederatedPrepared {
    inner: crosse_relational::Prepared,
    foreign: Vec<String>,
    fed: FederatedDatabase,
}

impl FederatedPrepared {
    /// Typed parameter slots, in binding order.
    pub fn param_slots(&self) -> &[crosse_relational::SlotInfo] {
        self.inner.param_slots()
    }

    /// Foreign tables this statement touches (refreshed in live mode).
    pub fn foreign_tables(&self) -> &[String] {
        &self.foreign
    }

    /// Bind parameters and execute, returning a streaming cursor. With
    /// `live`, the referenced foreign tables are re-fetched first.
    pub fn execute(
        &self,
        params: &crosse_relational::Params,
        live: bool,
    ) -> Result<crosse_relational::Rows> {
        if live {
            for name in &self.foreign {
                self.fed.refresh_table(name)?;
            }
        }
        self.inner.execute(params)
    }

    /// Execute and materialise (the collect adapter).
    pub fn query(
        &self,
        params: &crosse_relational::Params,
        live: bool,
    ) -> Result<RowSet> {
        self.execute(params, live)?.collect_rows()
    }
}

/// A mediator database federating several sources behind one SQL surface.
#[derive(Clone)]
pub struct FederatedDatabase {
    local: Database,
    sources: Arc<RwLock<Vec<Arc<dyn DataSource>>>>,
    /// foreign table name → (source index, remote table name)
    foreign: Arc<RwLock<HashMap<String, (usize, String)>>>,
    /// Generation counter for pushdown staging tables.
    push_gen: Arc<AtomicU64>,
}

impl Default for FederatedDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl FederatedDatabase {
    pub fn new() -> Self {
        FederatedDatabase {
            local: Database::new(),
            sources: Arc::new(RwLock::new_labeled("fdw.sources", Vec::new())),
            foreign: Arc::new(RwLock::new_labeled("fdw.foreign", HashMap::new())),
            push_gen: Arc::default(),
        }
    }

    /// The mediator's own database (native tables, temp tables).
    pub fn local(&self) -> &Database {
        &self.local
    }

    /// Register a source and import all of its tables as foreign tables
    /// named `<source>__<table>`. Returns the imported names.
    pub fn register_source(&self, source: Arc<dyn DataSource>) -> Result<Vec<String>> {
        let idx = {
            let mut sources = self.sources.write();
            sources.push(Arc::clone(&source));
            sources.len() - 1
        };
        let mut imported = Vec::new();
        for table in source.table_names() {
            let fname = foreign_table_name(source.name(), &table);
            let schema = source.table_schema(&table)?;
            let cols: Vec<Column> = schema
                .columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.data_type))
                .collect();
            self.local.catalog().create_table(&fname, cols)?;
            self.foreign.write().insert(fname.clone(), (idx, table));
            imported.push(fname);
        }
        // Populate immediately so the first query sees data.
        for name in &imported {
            self.refresh_table(name)?;
        }
        Ok(imported)
    }

    /// Names of all foreign tables.
    pub fn foreign_tables(&self) -> Vec<String> {
        let mut v: Vec<String> = self.foreign.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Re-fetch one foreign table through its source's cost model.
    pub fn refresh_table(&self, foreign_name: &str) -> Result<usize> {
        let (idx, remote) = self
            .foreign
            .read()
            .get(foreign_name)
            .cloned()
            .ok_or_else(|| {
                Error::catalog(format!("`{foreign_name}` is not a foreign table"))
            })?;
        let source = Arc::clone(&self.sources.read()[idx]);
        let rows = source.fetch_table(&remote)?;
        let table = self.local.catalog().get_table(foreign_name)?;
        table.truncate()?;
        table.insert_many(rows.rows)
    }

    /// Re-fetch every foreign table (full sync round).
    pub fn refresh_all(&self) -> Result<usize> {
        let mut total = 0;
        for name in self.foreign_tables() {
            total += self.refresh_table(&name)?;
        }
        Ok(total)
    }

    /// Re-fetch every foreign table, issuing the source requests
    /// concurrently (one thread per fetch). With realtime latency models
    /// the sync round costs max(RTT) instead of sum(RTT) — the concurrent
    /// sub-query dispatch of a mediated query system.
    pub fn refresh_all_parallel(&self) -> Result<usize> {
        let jobs: Vec<(String, Arc<dyn DataSource>, String)> = {
            let foreign = self.foreign.read();
            let sources = self.sources.read();
            foreign
                .iter()
                .map(|(fname, (idx, remote))| {
                    (fname.clone(), Arc::clone(&sources[*idx]), remote.clone())
                })
                .collect()
        };
        let fetched: Vec<(String, Result<RowSet>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|(fname, source, remote)| {
                    let fname = fname.clone();
                    scope.spawn(move || (fname, source.fetch_table(remote)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fetch thread")).collect()
        });
        let mut total = 0;
        for (fname, result) in fetched {
            let rows = result?;
            let table = self.local.catalog().get_table(&fname)?;
            table.truncate()?;
            total += table.insert_many(rows.rows)?;
        }
        Ok(total)
    }

    /// Execute a query against the mediator. `live` queries first re-pull
    /// the referenced foreign tables (postgres_fdw behaviour); non-live
    /// queries run on the cached copies.
    pub fn query(&self, sql: &str, live: bool) -> Result<RowSet> {
        if live {
            for name in self.referenced_foreign_tables(sql)? {
                self.refresh_table(&name)?;
            }
        }
        self.local.query(sql)
    }

    /// Prepare a federated SELECT: compile it once through the mediator's
    /// plan cache and record which foreign tables it touches, so repeated
    /// executions skip both re-parsing and the FROM-clause analysis.
    /// Parameter placeholders (`$name` / `?`) bind per execution.
    pub fn prepare(&self, sql: &str) -> Result<FederatedPrepared> {
        let foreign = self.referenced_foreign_tables(sql)?;
        let inner = self.local.prepare(sql)?;
        Ok(FederatedPrepared { inner, foreign, fed: self.clone() })
    }

    /// Which foreign tables a query touches (by FROM-clause analysis).
    pub fn referenced_foreign_tables(&self, sql: &str) -> Result<Vec<String>> {
        use crosse_relational::sql::ast::{Statement, TableRef};
        let stmt = crosse_relational::sql::parser::parse_statement(sql)?;
        let mut out = Vec::new();
        if let Statement::Select(s) = &stmt {
            fn walk(tr: &TableRef, out: &mut Vec<String>) {
                match tr {
                    TableRef::Table { name, .. } => out.push(name.clone()),
                    TableRef::Join { left, right, .. } => {
                        walk(left, out);
                        walk(right, out);
                    }
                }
            }
            let mut tables = Vec::new();
            for tr in &s.from {
                walk(tr, &mut tables);
            }
            let foreign = self.foreign.read();
            for t in tables {
                let key = t.to_ascii_lowercase();
                if foreign.contains_key(&key) && !out.contains(&key) {
                    out.push(key);
                }
            }
        }
        Ok(out)
    }

    /// Execute a live SELECT with **filter pushdown**: WHERE conjuncts that
    /// reference exactly one foreign table are shipped to that table's
    /// source as a remote sub-query, so only matching rows cross the
    /// (simulated) network. Remote fetches for distinct sources run
    /// concurrently. The original WHERE clause is still evaluated locally,
    /// so pushdown can only shrink transfers, never change results.
    ///
    /// Conjuncts are pushed only for tables on the preserved side of the
    /// join tree (never below the null-supplying side of a LEFT join, where
    /// pre-filtering could manufacture NULL-extended rows).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use crosse_federation::{FederatedDatabase, LocalSource};
    /// use crosse_relational::Database;
    ///
    /// let national = Database::new();
    /// national.execute_script(
    ///     "CREATE TABLE landfill (name TEXT, city TEXT);
    ///      INSERT INTO landfill VALUES ('a','Torino'), ('b','Milano');",
    /// ).unwrap();
    /// let fed = FederatedDatabase::new();
    /// fed.register_source(Arc::new(LocalSource::new("it", national))).unwrap();
    ///
    /// let out = fed
    ///     .query_pushdown("SELECT name FROM it__landfill WHERE city = 'Torino'")
    ///     .unwrap();
    /// assert_eq!(out.result.len(), 1);
    /// assert_eq!(out.pushed[0].rows_fetched, 1); // only the match moved
    /// ```
    pub fn query_pushdown(&self, sql: &str) -> Result<PushdownOutcome> {
        let stmt = crosse_relational::sql::parser::parse_statement(sql)?;
        let Statement::Select(select) = stmt else {
            return Err(Error::plan("pushdown queries must be SELECT statements"));
        };
        let mut select = *select;

        // Flatten WHERE into conjuncts.
        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(filter) = &select.filter {
            let mut parts = Vec::new();
            crosse_relational::plan::split_conjuncts(filter, &mut parts);
            conjuncts = parts.into_iter().cloned().collect();
        }

        // Collect foreign-table refs (with their effective qualifier and
        // whether conjunct pushdown is semantically safe at that position).
        struct ForeignRef {
            qualifier: String,
            foreign: String,
            remote: String,
            source: Arc<dyn DataSource>,
            pushable: bool,
        }
        let mut refs: Vec<ForeignRef> = Vec::new();
        {
            let foreign = self.foreign.read();
            let sources = self.sources.read();
            fn walk(
                tr: &TableRef,
                nullable: bool,
                foreign: &HashMap<String, (usize, String)>,
                sources: &[Arc<dyn DataSource>],
                out: &mut Vec<ForeignRef>,
            ) {
                match tr {
                    TableRef::Table { name, alias } => {
                        let key = name.to_ascii_lowercase();
                        if let Some((idx, remote)) = foreign.get(&key) {
                            out.push(ForeignRef {
                                qualifier: alias.clone().unwrap_or_else(|| name.clone()),
                                foreign: key,
                                remote: remote.clone(),
                                source: Arc::clone(&sources[*idx]),
                                pushable: !nullable,
                            });
                        }
                    }
                    TableRef::Join { left, right, kind, .. } => {
                        walk(left, nullable, foreign, sources, out);
                        let right_nullable = nullable || *kind == JoinKind::Left;
                        walk(right, right_nullable, foreign, sources, out);
                    }
                }
            }
            for tr in &select.from {
                walk(tr, false, &foreign, &sources, &mut refs);
            }
        }
        if refs.is_empty() {
            // Nothing foreign: plain local execution.
            return Ok(PushdownOutcome {
                result: self.local.query(sql)?,
                pushed: Vec::new(),
            });
        }

        // Assign pushable conjuncts to foreign refs and build remote SQL.
        let mut remote_sqls: Vec<String> = Vec::new();
        let mut pushed_report: Vec<PushedFilter> = Vec::new();
        for r in &refs {
            let table = self.local.catalog().get_table(&r.foreign)?;
            let schema = table.schema.clone().with_qualifier(&r.qualifier);
            let mut parts: Vec<String> = Vec::new();
            if r.pushable {
                for c in &conjuncts {
                    if crosse_relational::exec::expr::bind(c, &schema).is_ok() {
                        let stripped = c.clone().rewrite(&mut |e| match e {
                            Expr::Column { qualifier: Some(q), name }
                                if q.eq_ignore_ascii_case(&r.qualifier) =>
                            {
                                Expr::Column { qualifier: None, name }
                            }
                            other => other,
                        });
                        parts.push(stripped.to_string());
                    }
                }
            }
            let remote_sql = if parts.is_empty() {
                format!("SELECT * FROM {}", r.remote)
            } else {
                format!("SELECT * FROM {} WHERE {}", r.remote, parts.join(" AND "))
            };
            pushed_report.push(PushedFilter {
                foreign_table: r.foreign.clone(),
                remote_sql: remote_sql.clone(),
                rows_fetched: 0,
            });
            remote_sqls.push(remote_sql);
        }

        // Fetch all remote legs concurrently.
        let fetched: Vec<Result<RowSet>> = std::thread::scope(|scope| {
            let handles: Vec<_> = refs
                .iter()
                .zip(&remote_sqls)
                .map(|(r, sql)| {
                    let source = Arc::clone(&r.source);
                    scope.spawn(move || source.fetch_query(sql))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("fetch thread")).collect()
        });

        // Stage results in generation-stamped local tables and rewrite the
        // query's table refs to them (keeping the original qualifier so
        // column references resolve unchanged).
        let generation = self.push_gen.fetch_add(1, AtomicOrdering::Relaxed);
        let mut staged: Vec<String> = Vec::new();
        let mut stage_err: Option<Error> = None;
        for ((r, result), report) in
            refs.iter().zip(fetched).zip(pushed_report.iter_mut())
        {
            match result {
                Ok(rows) => {
                    let staged_name =
                        format!("__push_{}_{}_{generation}", r.foreign, staged.len());
                    let cols: Vec<Column> = rows
                        .schema
                        .columns
                        .iter()
                        .map(|c| Column::new(c.name.clone(), c.data_type))
                        .collect();
                    report.rows_fetched = rows.rows.len();
                    if let Err(e) = self
                        .local
                        .catalog()
                        .create_table(&staged_name, cols)
                        .and_then(|t| t.insert_many(rows.rows).map(|_| ()))
                    {
                        stage_err.get_or_insert(e);
                        break;
                    }
                    staged.push(staged_name);
                }
                Err(e) => {
                    stage_err.get_or_insert(e);
                    break;
                }
            }
        }

        let result = match stage_err {
            Some(e) => Err(e),
            None => {
                // Rewrite FROM: each foreign ref (in walk order) points at
                // its staged table, aliased back to the original qualifier.
                let mut next = 0usize;
                fn rewrite(
                    tr: &mut TableRef,
                    refs: &[ForeignRef],
                    staged: &[String],
                    next: &mut usize,
                ) {
                    match tr {
                        TableRef::Table { name, alias } => {
                            let key = name.to_ascii_lowercase();
                            if *next < refs.len() && refs[*next].foreign == key {
                                *alias = Some(refs[*next].qualifier.clone());
                                *name = staged[*next].clone();
                                *next += 1;
                            }
                        }
                        TableRef::Join { left, right, .. } => {
                            rewrite(left, refs, staged, next);
                            rewrite(right, refs, staged, next);
                        }
                    }
                }
                for tr in &mut select.from {
                    rewrite(tr, &refs, &staged, &mut next);
                }
                self.local
                    .execute_statement(&Statement::Select(Box::new(select)))
                    .and_then(|o| o.into_rows())
            }
        };

        for name in staged {
            let _ = self.local.catalog().drop_table(&name);
        }
        result.map(|rows| PushdownOutcome { result: rows, pushed: pushed_report })
    }

    /// Aggregate stats across all sources.
    pub fn source_stats(&self) -> Vec<(String, crate::source::SourceStats)> {
        self.sources
            .read()
            .iter()
            .map(|s| (s.name().to_string(), s.stats()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{LatencyModel, LocalSource, RemoteSource};
    use crosse_relational::Value;

    fn national_db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT);
             INSERT INTO landfill VALUES ('Basse di Stura','Torino'), ('Barricalla','Collegno');",
        )
        .unwrap();
        db
    }

    fn eu_db() -> Database {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE waste_stats (country TEXT, tons FLOAT);
             INSERT INTO waste_stats VALUES ('Italy', 29000.0), ('France', 34000.0);",
        )
        .unwrap();
        db
    }

    fn fed() -> FederatedDatabase {
        let fed = FederatedDatabase::new();
        fed.register_source(Arc::new(LocalSource::new("it", national_db()))).unwrap();
        fed.register_source(Arc::new(RemoteSource::new(
            "eu",
            eu_db(),
            LatencyModel::instant(),
        )))
        .unwrap();
        fed
    }

    #[test]
    fn prepared_federated_query_binds_and_refreshes() {
        use crosse_relational::Params;
        let national = national_db();
        let fed = FederatedDatabase::new();
        fed.register_source(Arc::new(LocalSource::new("it", national.clone())))
            .unwrap();
        let p = fed
            .prepare("SELECT name FROM it__landfill WHERE city = $city")
            .unwrap();
        assert_eq!(p.foreign_tables(), ["it__landfill"]);
        assert_eq!(p.param_slots().len(), 1);
        let rs = p.query(&Params::new().set("city", "Torino"), false).unwrap();
        assert_eq!(rs.len(), 1);
        // Source-side change is invisible on cached copies...
        national
            .execute("INSERT INTO landfill VALUES ('Nuovo','Torino')")
            .unwrap();
        let rs = p.query(&Params::new().set("city", "Torino"), false).unwrap();
        assert_eq!(rs.len(), 1);
        // ...and visible through a live prepared execution.
        let rs = p.query(&Params::new().set("city", "Torino"), true).unwrap();
        assert_eq!(rs.len(), 2);
        // Execute-many with a different binding, same handle.
        let rs = p.query(&Params::new().set("city", "Collegno"), false).unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn import_creates_prefixed_tables() {
        let fed = fed();
        assert_eq!(fed.foreign_tables(), vec!["eu__waste_stats", "it__landfill"]);
    }

    #[test]
    fn query_over_cached_foreign_tables() {
        let fed = fed();
        let rs = fed.query("SELECT name FROM it__landfill ORDER BY name", false).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn cross_source_join() {
        let fed = fed();
        // Pair each Italian landfill with the Italian national total.
        let rs = fed
            .query(
                "SELECT l.name, w.tons FROM it__landfill l, eu__waste_stats w \
                 WHERE w.country = 'Italy'",
                false,
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0][1], Value::Float(29000.0));
    }

    #[test]
    fn live_query_refetches_only_referenced_tables() {
        let fed = fed();
        let stats0: u64 = fed.source_stats().iter().map(|(_, s)| s.requests).sum();
        fed.query("SELECT * FROM it__landfill", true).unwrap();
        let by_name: HashMap<String, _> = fed.source_stats().into_iter().collect();
        assert_eq!(
            by_name["it"].requests + by_name["eu"].requests,
            stats0 + 1,
            "only the it source should see a new request"
        );
    }

    #[test]
    fn stale_cache_until_refresh() {
        let national = national_db();
        let fed = FederatedDatabase::new();
        fed.register_source(Arc::new(LocalSource::new("it", national.clone()))).unwrap();
        national
            .execute("INSERT INTO landfill VALUES ('Gerbido','Torino')")
            .unwrap();
        let cached = fed.query("SELECT COUNT(*) FROM it__landfill", false).unwrap();
        assert_eq!(cached.rows[0][0], Value::Int(2), "cache is stale");
        let live = fed.query("SELECT COUNT(*) FROM it__landfill", true).unwrap();
        assert_eq!(live.rows[0][0], Value::Int(3), "live pull sees the insert");
    }

    #[test]
    fn refresh_all_counts_rows() {
        let fed = fed();
        assert_eq!(fed.refresh_all().unwrap(), 4);
    }

    #[test]
    fn name_collision_between_sources_errors() {
        let fed = FederatedDatabase::new();
        fed.register_source(Arc::new(LocalSource::new("a", national_db()))).unwrap();
        let err = fed
            .register_source(Arc::new(LocalSource::new("a", national_db())))
            .unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn refresh_unknown_table_errors() {
        let fed = fed();
        assert!(fed.refresh_table("nope").is_err());
    }

    #[test]
    fn pushdown_ships_filter_and_reduces_transfer() {
        let fed = fed();
        let before: u64 = fed
            .source_stats()
            .iter()
            .map(|(_, s)| s.rows_transferred)
            .sum();
        let out = fed
            .query_pushdown(
                "SELECT name FROM it__landfill WHERE city = 'Torino'",
            )
            .unwrap();
        assert_eq!(out.result.len(), 1);
        assert_eq!(out.pushed.len(), 1);
        assert!(out.pushed[0].remote_sql.contains("WHERE"), "{:?}", out.pushed);
        assert_eq!(out.pushed[0].rows_fetched, 1, "only the matching row moved");
        let after: u64 = fed
            .source_stats()
            .iter()
            .map(|(_, s)| s.rows_transferred)
            .sum();
        assert_eq!(after - before, 1);
    }

    #[test]
    fn pushdown_agrees_with_plain_live_query() {
        let fed = fed();
        let queries = [
            "SELECT name FROM it__landfill WHERE city = 'Torino' ORDER BY name",
            "SELECT l.name, w.tons FROM it__landfill l, eu__waste_stats w \
             WHERE w.country = 'Italy' AND l.city = 'Torino'",
            "SELECT COUNT(*) FROM it__landfill",
        ];
        for sql in queries {
            let plain = fed.query(sql, true).unwrap();
            let pushed = fed.query_pushdown(sql).unwrap();
            assert_eq!(plain.rows, pushed.result.rows, "{sql}");
        }
    }

    #[test]
    fn pushdown_with_alias_strips_qualifier_in_remote_sql() {
        let fed = fed();
        let out = fed
            .query_pushdown("SELECT l.name FROM it__landfill l WHERE l.city = 'Torino'")
            .unwrap();
        assert!(
            !out.pushed[0].remote_sql.contains("l."),
            "qualifier must be stripped: {}",
            out.pushed[0].remote_sql
        );
        assert_eq!(out.result.len(), 1);
    }

    #[test]
    fn pushdown_does_not_push_below_left_join_nullable_side() {
        let fed = fed();
        // `w.country IS NULL OR w.tons > 30000` binds against w alone but
        // sits on the nullable side of the LEFT join — must not be pushed.
        let sql = "SELECT l.name FROM it__landfill l \
                   LEFT JOIN eu__waste_stats w ON l.city = w.country \
                   WHERE w.country IS NULL OR w.tons > 30000";
        let plain = fed.query(sql, true).unwrap();
        let pushed = fed.query_pushdown(sql).unwrap();
        assert_eq!(plain.rows, pushed.result.rows);
        // The eu leg must have fetched the full table (2 rows).
        let eu = pushed
            .pushed
            .iter()
            .find(|p| p.foreign_table == "eu__waste_stats")
            .unwrap();
        assert!(!eu.remote_sql.contains("WHERE"), "{}", eu.remote_sql);
        assert_eq!(eu.rows_fetched, 2);
    }

    #[test]
    fn pushdown_cleans_up_staging_tables() {
        let fed = fed();
        fed.query_pushdown("SELECT name FROM it__landfill WHERE city = 'x'").unwrap();
        let leftovers: Vec<String> = fed
            .local()
            .catalog()
            .table_names()
            .into_iter()
            .filter(|n| n.starts_with("__push_"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn pushdown_without_foreign_tables_runs_locally() {
        let fed = fed();
        fed.local().execute("CREATE TABLE notes (txt TEXT)").unwrap();
        fed.local().execute("INSERT INTO notes VALUES ('hi')").unwrap();
        let out = fed.query_pushdown("SELECT txt FROM notes").unwrap();
        assert_eq!(out.result.len(), 1);
        assert!(out.pushed.is_empty());
    }

    #[test]
    fn pushdown_rejects_non_select() {
        let fed = fed();
        assert!(fed.query_pushdown("DELETE FROM it__landfill").is_err());
    }

    /// A source that fails every fetch after the first `allowed` requests —
    /// models a databank going offline mid-session.
    struct FlakySource {
        inner: LocalSource,
        allowed: u64,
        seen: std::sync::atomic::AtomicU64,
    }

    impl FlakySource {
        fn new(name: &str, db: Database, allowed: u64) -> Self {
            FlakySource {
                inner: LocalSource::new(name, db),
                allowed,
                seen: std::sync::atomic::AtomicU64::new(0),
            }
        }

        fn check(&self) -> crosse_relational::Result<()> {
            let n = self
                .seen
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n >= self.allowed {
                Err(Error::eval("source is offline"))
            } else {
                Ok(())
            }
        }
    }

    impl crate::source::DataSource for FlakySource {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn table_names(&self) -> Vec<String> {
            self.inner.table_names()
        }
        fn table_schema(&self, table: &str) -> crosse_relational::Result<crosse_relational::Schema> {
            self.inner.table_schema(table)
        }
        fn fetch_table(&self, table: &str) -> crosse_relational::Result<RowSet> {
            self.check()?;
            self.inner.fetch_table(table)
        }
        fn fetch_query(&self, sql: &str) -> crosse_relational::Result<RowSet> {
            self.check()?;
            self.inner.fetch_query(sql)
        }
        fn stats(&self) -> crate::source::SourceStats {
            self.inner.stats()
        }
    }

    #[test]
    fn pushdown_propagates_source_failure_and_cleans_staging() {
        let fed = FederatedDatabase::new();
        // One fetch allowed: registration's initial populate succeeds,
        // the pushdown fetch fails.
        fed.register_source(Arc::new(FlakySource::new("it", national_db(), 1)))
            .unwrap();
        let err = fed
            .query_pushdown("SELECT name FROM it__landfill WHERE city = 'Torino'")
            .unwrap_err();
        assert!(err.to_string().contains("offline"), "{err}");
        let leftovers: Vec<String> = fed
            .local()
            .catalog()
            .table_names()
            .into_iter()
            .filter(|n| n.starts_with("__push_"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // The cached copy still answers non-live queries.
        let rs = fed.query("SELECT name FROM it__landfill", false).unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn parallel_refresh_propagates_failure_from_any_source() {
        let fed = FederatedDatabase::new();
        fed.register_source(Arc::new(LocalSource::new("ok", national_db()))).unwrap();
        fed.register_source(Arc::new(FlakySource::new("bad", eu_db(), 1))).unwrap();
        let err = fed.refresh_all_parallel().unwrap_err();
        assert!(err.to_string().contains("offline"), "{err}");
        // Recovery: the healthy source alone still refreshes.
        assert!(fed.refresh_table("ok__landfill").unwrap() == 2);
    }

    #[test]
    fn live_query_fails_cleanly_when_source_dies_midway() {
        let fed = FederatedDatabase::new();
        fed.register_source(Arc::new(FlakySource::new("it", national_db(), 2)))
            .unwrap();
        // First live query consumes the second allowed fetch...
        fed.query("SELECT * FROM it__landfill", true).unwrap();
        // ...the next one hits the dead source but the cache stays usable.
        assert!(fed.query("SELECT * FROM it__landfill", true).is_err());
        assert_eq!(fed.query("SELECT COUNT(*) FROM it__landfill", false).unwrap().len(), 1);
    }

    #[test]
    fn parallel_refresh_matches_sequential_and_overlaps_latency() {
        use std::time::{Duration, Instant};
        let fed = FederatedDatabase::new();
        for i in 0..4 {
            let db = Database::new();
            db.execute_script(&format!(
                "CREATE TABLE t{i} (x INT); INSERT INTO t{i} VALUES (1), (2);"
            ))
            .unwrap();
            fed.register_source(Arc::new(RemoteSource::new(
                format!("s{i}"),
                db,
                LatencyModel::with_rtt(Duration::from_millis(20)),
            )))
            .unwrap();
        }
        let t0 = Instant::now();
        let n = fed.refresh_all_parallel().unwrap();
        let parallel_elapsed = t0.elapsed();
        assert_eq!(n, 8);
        // 4 sequential RTTs would be ≥80ms; parallel should stay well under.
        assert!(
            parallel_elapsed < Duration::from_millis(70),
            "parallel refresh took {parallel_elapsed:?}"
        );
        let t0 = Instant::now();
        fed.refresh_all().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(80), "sequential baseline");
    }

    #[test]
    fn native_tables_coexist() {
        let fed = fed();
        fed.local()
            .execute("CREATE TABLE notes (txt TEXT)")
            .unwrap();
        fed.local().execute("INSERT INTO notes VALUES ('hello')").unwrap();
        let rs = fed.query("SELECT txt FROM notes", true).unwrap();
        assert_eq!(rs.len(), 1);
    }
}
