//! # crosse-federation
//!
//! The integration layer of CroSSE (*Contextually-Enriched Querying of
//! Integrated Data Sources*, ICDE 2018, Fig. 1 and Fig. 6):
//!
//! * [`source`] — data sources behind a uniform trait; remote sources carry
//!   a configurable latency/transfer model simulating `postgres_fdw` links
//!   to national and EU databanks.
//! * [`fdw::FederatedDatabase`] — the mediator: one SQL surface over all
//!   registered sources, with cached or live foreign-table access.
//! * [`mapping::ResourceMapping`] — the declarative relational↔RDF resource
//!   correspondence (the paper's "XML file", here a small text format).
//! * [`join_manager`] — combines relational rows with SPARQL solutions.
//! * [`tempdb::TempDb`] — the temporary support database that holds
//!   JoinManager output for the final SQL pass.

#![forbid(unsafe_code)]

pub mod fdw;
pub mod join_manager;
pub mod mapping;
pub mod source;
pub mod tempdb;

pub use fdw::{FederatedDatabase, FederatedPrepared};
pub use join_manager::{
    combine, combine_in, matching_keys, term_to_value, term_to_value_in, CombineKind, JoinSpec,
};
pub use mapping::{MapStrategy, ResourceMapping};
pub use source::{DataSource, LatencyModel, LocalSource, RemoteSource, SourceStats};
pub use tempdb::TempDb;
