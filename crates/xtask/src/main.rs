//! Workspace automation tasks (`cargo xtask <task>` / `cargo bench-smoke`).
//!
//! * `bench-smoke` — run every Criterion bench in `--test` mode (each
//!   benchmark body executes once, no measurement), then the clippy gate.
//!   The cheap CI gate for "the benches still run and the workspace is
//!   lint-clean".
//! * `bench-baseline` — regenerate `BENCH_e3.json` from the experiments
//!   binary (release build) so future PRs have a perf trajectory to
//!   compare against. Includes the e11 concurrency record (QPS + latency
//!   percentiles at 1 vs 4 worker threads).
//! * `clippy` — `cargo clippy --workspace --all-targets -- -D warnings`.
//! * `stress` — run the concurrency test suite (release) with elevated
//!   iteration counts (`CROSSE_STRESS_ITERS=10`) under worker-thread
//!   budgets {1, 4, 8} (`CROSSE_EXEC_THREADS`): the snapshot-isolation
//!   and morsel-parallelism invariants must hold at every budget.

use std::process::Command;

fn run(desc: &str, cmd: &mut Command) {
    println!("xtask: {desc}: {cmd:?}");
    let status = cmd.status().unwrap_or_else(|e| {
        eprintln!("xtask: failed to spawn {cmd:?}: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!("xtask: `{desc}` failed ({status})");
        std::process::exit(status.code().unwrap_or(1));
    }
}

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

fn clippy() {
    run(
        "clippy gate on the whole workspace",
        cargo().args([
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ]),
    );
    println!("xtask: clippy OK");
}

fn bench_smoke() {
    run(
        "bench smoke (all benches, --test mode)",
        cargo().args(["bench", "-p", "crosse-bench", "--benches", "--", "--test"]),
    );
    clippy();
    println!("xtask: bench-smoke OK");
}

fn bench_baseline() {
    run(
        "regenerate BENCH_e3.json (e3 + e11 concurrency record)",
        cargo().args([
            "run",
            "--release",
            "-p",
            "crosse-bench",
            "--bin",
            "experiments",
            "--",
            "e3",
            "e11",
            "--json",
            "BENCH_e3.json",
        ]),
    );
    println!("xtask: baseline written to BENCH_e3.json");
}

fn stress() {
    // Elevated iterations; one pass per worker-thread budget. Release
    // build: the point is to shake out races, not to wait on debug code.
    for threads in ["1", "4", "8"] {
        run(
            &format!("concurrency suite, {threads} worker thread(s), 10x iterations"),
            cargo()
                .args(["test", "--release", "--test", "concurrency", "--", "--nocapture"])
                .env("CROSSE_STRESS_ITERS", "10")
                .env("CROSSE_EXEC_THREADS", threads),
        );
    }
    println!("xtask: stress OK (worker threads 1/4/8)");
}

fn main() {
    let task = std::env::args().nth(1).unwrap_or_default();
    match task.as_str() {
        "bench-smoke" => bench_smoke(),
        "bench-baseline" => bench_baseline(),
        "clippy" => clippy(),
        "stress" => stress(),
        other => {
            eprintln!(
                "unknown task `{other}`\n\nusage: cargo xtask <task>\n\
                 tasks:\n  bench-smoke     run all benches in --test mode + clippy -D warnings on the workspace\n\
                 bench-baseline  regenerate BENCH_e3.json via the experiments binary (e3 + e11)\n\
                 clippy          cargo clippy --workspace --all-targets -- -D warnings\n\
                 stress          concurrency tests (release), 10x iterations, worker threads 1/4/8"
            );
            std::process::exit(2);
        }
    }
}
