//! Workspace automation tasks (`cargo xtask <task>` / `cargo bench-smoke`).
//!
//! * `bench-smoke` — run every Criterion bench in `--test` mode (each
//!   benchmark body executes once, no measurement), then `cargo clippy`
//!   with `-D warnings` across the whole workspace. The cheap CI gate for
//!   "the benches still run and the workspace is lint-clean".
//! * `bench-baseline` — regenerate `BENCH_e3.json` from the experiments
//!   binary (release build) so future PRs have a perf trajectory to
//!   compare against.

use std::process::Command;

fn run(desc: &str, cmd: &mut Command) {
    println!("xtask: {desc}: {cmd:?}");
    let status = cmd.status().unwrap_or_else(|e| {
        eprintln!("xtask: failed to spawn {cmd:?}: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!("xtask: `{desc}` failed ({status})");
        std::process::exit(status.code().unwrap_or(1));
    }
}

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

fn bench_smoke() {
    run(
        "bench smoke (all benches, --test mode)",
        cargo().args(["bench", "-p", "crosse-bench", "--benches", "--", "--test"]),
    );
    run(
        "clippy gate on the whole workspace",
        cargo().args([
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ]),
    );
    println!("xtask: bench-smoke OK");
}

fn bench_baseline() {
    run(
        "regenerate BENCH_e3.json",
        cargo().args([
            "run",
            "--release",
            "-p",
            "crosse-bench",
            "--bin",
            "experiments",
            "--",
            "e3",
            "--json",
            "BENCH_e3.json",
        ]),
    );
    println!("xtask: baseline written to BENCH_e3.json");
}

fn main() {
    let task = std::env::args().nth(1).unwrap_or_default();
    match task.as_str() {
        "bench-smoke" => bench_smoke(),
        "bench-baseline" => bench_baseline(),
        other => {
            eprintln!(
                "unknown task `{other}`\n\nusage: cargo xtask <task>\n\
                 tasks:\n  bench-smoke     run all benches in --test mode + clippy -D warnings on the workspace\n\
                 bench-baseline  regenerate BENCH_e3.json via the experiments binary"
            );
            std::process::exit(2);
        }
    }
}
