//! Workspace automation tasks (`cargo xtask <task>` / `cargo bench-smoke`).
//!
//! * `bench-smoke` — run every Criterion bench in `--test` mode (each
//!   benchmark body executes once, no measurement), then the clippy gate.
//!   The cheap CI gate for "the benches still run and the workspace is
//!   lint-clean".
//! * `bench-baseline` — regenerate `BENCH_e3.json` from the experiments
//!   binary (release build) so future PRs have a perf trajectory to
//!   compare against. Includes the e11 concurrency record (QPS + latency
//!   percentiles at 1 vs 4 worker threads).
//! * `bench-diff` — re-run the E3 experiments (plus the E12 ex4.6
//!   REPLACEVARIABLE record) and compare each `sesql_median_s` against
//!   the committed `BENCH_e3.json`, printing per-experiment deltas.
//!   Exits non-zero when any experiment regresses beyond the threshold
//!   (default 25%; `--threshold 0.4` or `CROSSE_BENCH_THRESHOLD=0.4` to
//!   tune).
//! * `explain-snapshots` — regenerate the golden EXPLAIN snapshots
//!   (`tests/snapshots/*.snap`) and `git diff --exit-code` them against
//!   the committed ones.
//! * `clippy` — `cargo clippy --workspace --all-targets -- -D warnings`.
//! * `lint` — regenerate the corpus lint snapshots (`lint_golden`) and
//!   fail on drift against the committed ones.
//! * `check` — the aggregate gate: clippy + srclint + lint +
//!   explain-snapshots + the full test suite, with a per-gate recap.
//! * `srclint` — the in-process Rust source linter (R001–R006: lock
//!   discipline, panic discipline, determinism; see `crosse-lint`):
//!   lint the workspace, then regenerate and drift-check the rule
//!   fixtures' golden snapshot.
//! * `stress` — run the concurrency test suite (release) with elevated
//!   iteration counts (`CROSSE_STRESS_ITERS=10`) under worker-thread
//!   budgets {1, 4, 8} (`CROSSE_EXEC_THREADS`): the snapshot-isolation
//!   and morsel-parallelism invariants must hold at every budget. A
//!   final debug-build pass with `CROSSE_LOCK_TRACK=1` gates the
//!   lock-acquisition-order graph (no inversions, no lock held across
//!   fsync).
//! * `crash` — fault-injection at the process level: spawn the CLI's
//!   write-heavy crash workload against a scratch `--data-dir`, SIGKILL
//!   it mid-batch, reopen and verify that every acknowledged batch
//!   survived intact in both substrates (twice, so the second kill lands
//!   on already-recovered state).

#![forbid(unsafe_code)]

use std::process::Command;

fn run(desc: &str, cmd: &mut Command) {
    println!("xtask: {desc}: {cmd:?}");
    let status = cmd.status().unwrap_or_else(|e| {
        eprintln!("xtask: failed to spawn {cmd:?}: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!("xtask: `{desc}` failed ({status})");
        std::process::exit(status.code().unwrap_or(1));
    }
}

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

fn clippy() {
    run(
        "clippy gate on the whole workspace",
        cargo().args([
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ]),
    );
    println!("xtask: clippy OK");
}

fn bench_smoke() {
    run(
        "bench smoke (all benches, --test mode)",
        cargo().args(["bench", "-p", "crosse-bench", "--benches", "--", "--test"]),
    );
    clippy();
    println!("xtask: bench-smoke OK");
}

fn bench_baseline() {
    run(
        "regenerate BENCH_e3.json (e3 + e11 concurrency + e12 enrichment + e13 durability)",
        cargo().args([
            "run",
            "--release",
            "-p",
            "crosse-bench",
            "--bin",
            "experiments",
            "--",
            "e3",
            "e11",
            "e12",
            "e13",
            "--json",
            "BENCH_e3.json",
        ]),
    );
    println!("xtask: baseline written to BENCH_e3.json");
}

/// Extract the e3 `(name, sesql_median_s)` pairs from a BENCH_e3.json.
/// Hand-rolled (the workspace has no serde): scans the flat, generated
/// schema `{"name": "...", "sesql_median_s": <f64>, ...}` line by line.
fn parse_e3_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else { continue };
        let Some(rest) = rest.split_once("\"sesql_median_s\": ").map(|(_, r)| r) else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Extract the e12 `(scale label, sesql_median_s)` pairs from a
/// BENCH_e3.json (flat generated schema, same hand-rolled parsing as e3).
fn parse_e12_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"scale\": ") else {
            continue;
        };
        let Some((scale, rest)) = rest.split_once(',') else { continue };
        let Some(rest) = rest.split_once("\"sesql_median_s\": ").map(|(_, r)| r) else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((format!("e12/ex4.6 scale {}", scale.trim()), v));
        }
    }
    out
}

/// Extract the e13 `(mode, batches_per_s)` pairs from a BENCH_e3.json
/// (flat generated schema, same hand-rolled parsing as e3/e12).
fn parse_e13_qps(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"mode\": \"") else {
            continue;
        };
        let Some((mode, rest)) = rest.split_once('"') else { continue };
        let Some(rest) = rest.split_once("\"batches_per_s\": ").map(|(_, r)| r) else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((mode.to_string(), v));
        }
    }
    out
}

fn bench_diff(args: &[String]) {
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("CROSSE_BENCH_THRESHOLD").ok())
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("xtask: invalid threshold `{s}` (want a fraction, e.g. 0.25)");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let committed = std::fs::read_to_string("BENCH_e3.json").unwrap_or_else(|e| {
        eprintln!("xtask: cannot read committed BENCH_e3.json: {e}");
        std::process::exit(1);
    });
    let mut baseline = parse_e3_medians(&committed);
    if baseline.is_empty() {
        eprintln!("xtask: no e3 records in the committed BENCH_e3.json");
        std::process::exit(1);
    }
    // e12 (the ex4.6 REPLACEVARIABLE scaling record) rides along when the
    // committed baseline has it.
    let baseline_e12 = parse_e12_medians(&committed);
    baseline.extend(baseline_e12.iter().cloned());

    let fresh_path = "target/bench-diff-e3.json";
    run(
        "re-run e3 + e12 + e13 experiments",
        cargo().args([
            "run",
            "--release",
            "-p",
            "crosse-bench",
            "--bin",
            "experiments",
            "--",
            "e3",
            "e12",
            "e13",
            "--json",
            fresh_path,
        ]),
    );
    let fresh_json = std::fs::read_to_string(fresh_path).unwrap_or_else(|e| {
        eprintln!("xtask: experiments run produced no {fresh_path}: {e}");
        std::process::exit(1);
    });
    let mut fresh = parse_e3_medians(&fresh_json);
    fresh.extend(parse_e12_medians(&fresh_json));

    println!("\nbench-diff vs committed BENCH_e3.json (threshold {:.0}%)", threshold * 100.0);
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "experiment", "committed", "fresh", "delta"
    );
    let mut regressions = Vec::new();
    for (name, old) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(n, _)| n == name) else {
            println!("{name:<28} {:>14.6} {:>14} {:>9}", old, "MISSING", "-");
            regressions.push(format!("{name}: missing from fresh run"));
            continue;
        };
        let delta = new / old - 1.0;
        let marker = if delta > threshold { "  << REGRESSION" } else { "" };
        println!(
            "{:<28} {:>12.2}µs {:>12.2}µs {:>+8.1}%{}",
            name,
            old * 1e6,
            new * 1e6,
            delta * 100.0,
            marker
        );
        if delta > threshold {
            regressions.push(format!("{name}: {:+.1}%", delta * 100.0));
        }
    }
    for (name, _) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<28} (new experiment, no committed baseline)");
        }
    }
    // e13 durability guard: group-commit (`every_n:256`) must stay within
    // 10% write throughput of the WAL-off baseline, measured fresh. A
    // slack of half the time threshold absorbs fsync jitter.
    let fresh_e13 = parse_e13_qps(&fresh_json);
    let off = fresh_e13.iter().find(|(m, _)| m == "wal-off");
    let group = fresh_e13.iter().find(|(m, _)| m == "every_n:256");
    if let (Some((_, off)), Some((_, group))) = (off, group) {
        let cost = 1.0 - group / off;
        let budget = 0.10 + threshold / 2.0;
        let marker = if cost > budget { "  << REGRESSION" } else { "" };
        println!(
            "\ne13 durability: wal-off {off:.0} batches/s, every_n:256 {group:.0} batches/s \
             — cost {:.1}% (budget {:.0}%){marker}",
            cost * 100.0,
            budget * 100.0,
        );
        if cost > budget {
            regressions.push(format!(
                "e13 durability: every_n:256 costs {:.1}% throughput (> {:.0}%)",
                cost * 100.0,
                budget * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        println!("\nxtask: bench-diff OK (no experiment slower than {:.0}%)", threshold * 100.0);
    } else {
        eprintln!("\nxtask: bench-diff FAILED — {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}

/// Regenerate the golden EXPLAIN snapshots (tests/snapshots/*.snap) and
/// fail if they differ from the committed ones — the cheap CI gate for
/// "the optimizer still produces the plans the snapshots promise". After
/// an intentional plan change, run this once and commit the updated
/// snapshots it leaves behind.
fn explain_snapshots() {
    run(
        "regenerate EXPLAIN snapshots",
        cargo()
            .args(["test", "--test", "explain_golden", "--quiet"])
            .env("CROSSE_UPDATE_SNAPSHOTS", "1"),
    );
    // `git status --porcelain` covers both modified *and* untracked
    // snapshot files (`git diff --exit-code` alone would silently pass a
    // brand-new .snap that was never committed).
    let status = Command::new("git")
        .args(["status", "--porcelain", "--", "tests/snapshots"])
        .output()
        .unwrap_or_else(|e| {
            eprintln!("xtask: failed to run git status: {e}");
            std::process::exit(1);
        });
    let dirty = String::from_utf8_lossy(&status.stdout);
    if !dirty.trim().is_empty() {
        run(
            "diff regenerated snapshots against the committed ones",
            Command::new("git").args(["diff", "--", "tests/snapshots"]),
        );
        eprintln!(
            "xtask: explain-snapshots FAILED — snapshots differ from (or are \
             missing in) the committed set:\n{dirty}\
             commit the regenerated files if the plan change is intentional"
        );
        std::process::exit(1);
    }
    println!("xtask: explain-snapshots OK (snapshots match the committed plans)");
}

/// Regenerate the golden lint snapshots (tests/snapshots/lint_*.snap) by
/// running the lint corpus test with `CROSSE_UPDATE_SNAPSHOTS=1`, then
/// fail if they differ from the committed ones — the corpus gate for "the
/// linter still says exactly what the snapshots promise" (no new false
/// positives on the clean corpus, no silently dropped findings on the
/// seeded-defect fixtures).
fn lint_gate() {
    run(
        "regenerate lint snapshots",
        cargo()
            .args(["test", "--test", "lint_golden", "--quiet"])
            .env("CROSSE_UPDATE_SNAPSHOTS", "1"),
    );
    let status = Command::new("git")
        .args(["status", "--porcelain", "--", "tests/snapshots"])
        .output()
        .unwrap_or_else(|e| {
            eprintln!("xtask: failed to run git status: {e}");
            std::process::exit(1);
        });
    let dirty = String::from_utf8_lossy(&status.stdout);
    if !dirty.trim().is_empty() {
        run(
            "diff regenerated lint snapshots against the committed ones",
            Command::new("git").args(["diff", "--", "tests/snapshots"]),
        );
        eprintln!(
            "xtask: lint FAILED — lint output differs from (or is missing in) \
             the committed snapshots:\n{dirty}\
             commit the regenerated files if the lint change is intentional"
        );
        std::process::exit(1);
    }
    println!("xtask: lint OK (corpus lint output matches the committed snapshots)");
}

/// Lint the workspace's own Rust sources with the dependency-free
/// srclint engine (rules R001–R006: no raw `std::sync` locks outside the
/// compat shim, no `.unwrap()`/`panic!` in library code, labeled lock
/// construction, `#![forbid(unsafe_code)]` crate roots, no wall-clock in
/// the planner). Runs in-process, then regenerates the srclint golden
/// snapshot and fails on drift from the committed one.
fn srclint() {
    let root = std::path::Path::new(".");
    let findings = crosse_lint::srclint::lint_workspace(root).unwrap_or_else(|e| {
        eprintln!("xtask: srclint walk failed: {e}");
        std::process::exit(1);
    });
    if !findings.is_empty() {
        print!("{}", crosse_lint::srclint::render_findings(&findings));
    }
    if crosse_lint::srclint::has_errors(&findings) {
        eprintln!("xtask: srclint FAILED — fix the findings above or add a justified `// srclint: allow(RXXX): …`");
        std::process::exit(1);
    }
    // Fixture corpus gate: regenerate tests/snapshots/srclint.snap and
    // diff against the committed one, same pattern as the lint gate.
    run(
        "regenerate srclint snapshots",
        cargo()
            .args(["test", "--test", "srclint_golden", "--quiet"])
            .env("CROSSE_UPDATE_SNAPSHOTS", "1"),
    );
    let status = Command::new("git")
        .args(["status", "--porcelain", "--", "tests/snapshots/srclint.snap"])
        .output()
        .unwrap_or_else(|e| {
            eprintln!("xtask: failed to run git status: {e}");
            std::process::exit(1);
        });
    let dirty = String::from_utf8_lossy(&status.stdout);
    if !dirty.trim().is_empty() {
        run(
            "diff regenerated srclint snapshot against the committed one",
            Command::new("git").args(["diff", "--", "tests/snapshots/srclint.snap"]),
        );
        eprintln!(
            "xtask: srclint FAILED — fixture output differs from (or is missing \
             in) the committed snapshot:\n{dirty}\
             commit the regenerated file if the rule change is intentional"
        );
        std::process::exit(1);
    }
    println!("xtask: srclint OK (workspace clean, fixture snapshot matches)");
}

/// The aggregate static-analysis + test gate: clippy (warnings are
/// errors), srclint on our own sources, the corpus lint gate, the
/// EXPLAIN plan snapshots, and the full test suite. One command ≈ "is
/// this tree healthy". Each sub-gate prints its own one-line verdict;
/// the trailing block recaps them.
fn check() {
    clippy();
    srclint();
    lint_gate();
    explain_snapshots();
    run("cargo test --workspace", cargo().args(["test", "--workspace", "--quiet"]));
    println!("xtask: check OK");
    for gate in [
        "clippy            OK (workspace, -D warnings)",
        "srclint           OK (R001-R006 on our own sources + fixture snapshot)",
        "lint              OK (query-corpus snapshots match)",
        "explain-snapshots OK (plan snapshots match)",
        "tests             OK (cargo test --workspace)",
    ] {
        println!("  {gate}");
    }
}

fn stress() {
    // Elevated iterations; one pass per worker-thread budget. Release
    // build: the point is to shake out races, not to wait on debug code.
    for threads in ["1", "4", "8"] {
        run(
            &format!("concurrency suite, {threads} worker thread(s), 10x iterations"),
            cargo()
                .args(["test", "--release", "--test", "concurrency", "--", "--nocapture"])
                .env("CROSSE_STRESS_ITERS", "10")
                .env("CROSSE_EXEC_THREADS", threads),
        );
    }
    // Lock-order regression pass: one debug-build round with the
    // parking_lot shim's acquisition-order tracker live. The suite's
    // lock-order gate test asserts the run recorded no inversion and no
    // lock held across an fsync (tracking compiles out of the release
    // passes above, so only this pass can see them).
    run(
        "lock-order gate (debug build, CROSSE_LOCK_TRACK=1, 4 worker threads)",
        cargo()
            .args(["test", "--test", "concurrency", "--", "--nocapture"])
            .env("CROSSE_LOCK_TRACK", "1")
            .env("CROSSE_EXEC_THREADS", "4"),
    );
    println!("xtask: stress OK (worker threads 1/4/8 + lock-order gate)");
}

/// Crash-recovery harness: spawn the CLI in `--crash-workload` mode
/// against a scratch data directory, read acknowledged batch numbers off
/// its stdout, SIGKILL it mid-batch, then reopen the directory with
/// `--verify-crash <last ack>` — no acknowledged batch may be lost and no
/// partial batch may surface. Two rounds: the second kills a process that
/// itself recovered from the first crash (snapshot + tail + log
/// consolidation all get exercised).
fn crash() {
    use std::io::BufRead;
    run(
        "build crosse-cli (release)",
        cargo().args(["build", "--release", "--bin", "crosse-cli"]),
    );
    let bin = "target/release/crosse-cli";
    let dir = std::env::temp_dir().join(format!("crosse-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_string_lossy().to_string();
    for round in 1..=2 {
        let mut child = Command::new(bin)
            .args(["--landfills", "5", "--data-dir", &dir_arg, "--crash-workload"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("xtask: failed to spawn the crash workload: {e}");
                std::process::exit(1);
            });
        let stdout = child.stdout.take().expect("piped stdout");
        let mut last_ack: Option<u64> = None;
        let mut acked = 0u32;
        for line in std::io::BufReader::new(stdout).lines() {
            let line = line.unwrap_or_default();
            if let Some(n) = line.strip_prefix("ack ").and_then(|s| s.parse::<u64>().ok())
            {
                last_ack = Some(n);
                acked += 1;
                // Enough batches this round to pass the workload's
                // mid-run checkpoint; the child keeps writing while we
                // stop reading, so the kill lands mid-batch.
                if acked >= 8 {
                    break;
                }
            }
        }
        let _ = child.kill(); // SIGKILL — no destructors, no flush
        let _ = child.wait();
        let last_ack = last_ack.unwrap_or_else(|| {
            eprintln!("xtask: crash workload produced no acks (round {round})");
            std::process::exit(1);
        });
        run(
            &format!("verify recovered state (round {round}, last ack {last_ack})"),
            Command::new(bin).args([
                "--landfills",
                "5",
                "--data-dir",
                &dir_arg,
                "--verify-crash",
                &last_ack.to_string(),
            ]),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("xtask: crash OK (2 kill -9 rounds, no acked batch lost, no torn batch)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let task = args.first().cloned().unwrap_or_default();
    match task.as_str() {
        "bench-smoke" => bench_smoke(),
        "bench-baseline" => bench_baseline(),
        "bench-diff" => bench_diff(&args[1..]),
        "explain-snapshots" => explain_snapshots(),
        "lint" => lint_gate(),
        "srclint" => srclint(),
        "check" => check(),
        "clippy" => clippy(),
        "stress" => stress(),
        "crash" => crash(),
        other => {
            eprintln!(
                "unknown task `{other}`\n\nusage: cargo xtask <task>\n\
                 tasks:\n  bench-smoke     run all benches in --test mode + clippy -D warnings on the workspace\n\
                 bench-baseline  regenerate BENCH_e3.json via the experiments binary (e3 + e11 + e12)\n\
                 bench-diff      re-run e3 + e12 (ex4.6) and diff against the committed BENCH_e3.json\n\
                                 (--threshold 0.25 / CROSSE_BENCH_THRESHOLD; non-zero exit on regression)\n\
                 explain-snapshots  regenerate tests/snapshots/*.snap and diff against the committed ones\n\
                 lint            regenerate the corpus lint snapshots (lint_golden) and diff against\n\
                                 the committed ones (non-zero exit on drift)\n\
                 srclint         lint our own Rust sources (R001-R006: std::sync locks, unwrap/panic\n\
                                 discipline, lock labels, forbid(unsafe_code), planner wall-clock)\n\
                                 and gate the fixture corpus snapshot\n\
                 check           aggregate gate: clippy + srclint + lint + explain-snapshots + full tests\n\
                 clippy          cargo clippy --workspace --all-targets -- -D warnings\n\
                 stress          concurrency tests (release), 10x iterations, worker threads 1/4/8,\n\
                                 then a debug CROSSE_LOCK_TRACK=1 lock-order gate pass\n\
                 crash           kill -9 a write-heavy child mid-batch, reopen, verify no acked\n\
                                 write is lost and no partial batch surfaces (2 rounds)"
            );
            std::process::exit(2);
        }
    }
}
