//! Workspace automation tasks (`cargo xtask <task>` / `cargo bench-smoke`).
//!
//! * `bench-smoke` — run every Criterion bench in `--test` mode (each
//!   benchmark body executes once, no measurement), then the clippy gate.
//!   The cheap CI gate for "the benches still run and the workspace is
//!   lint-clean".
//! * `bench-baseline` — regenerate `BENCH_e3.json` from the experiments
//!   binary (release build) so future PRs have a perf trajectory to
//!   compare against. Includes the e11 concurrency record (QPS + latency
//!   percentiles at 1 vs 4 worker threads) and the e14 over-the-wire
//!   record (closed-loop TCP clients + overload shed rate).
//! * `bench-diff` — re-run the E3 experiments (plus the E12 ex4.6
//!   REPLACEVARIABLE record) and compare each `sesql_median_s` against
//!   the committed `BENCH_e3.json`, printing per-experiment deltas.
//!   Exits non-zero when any experiment regresses beyond the threshold
//!   (default 25%; `--threshold 0.4` or `CROSSE_BENCH_THRESHOLD=0.4` to
//!   tune).
//! * `explain-snapshots` — regenerate the golden EXPLAIN snapshots
//!   (`tests/snapshots/*.snap`) and `git diff --exit-code` them against
//!   the committed ones.
//! * `clippy` — `cargo clippy --workspace --all-targets -- -D warnings`.
//! * `lint` — regenerate the corpus lint snapshots (`lint_golden`) and
//!   fail on drift against the committed ones.
//! * `check` — the aggregate gate: clippy + srclint + lint +
//!   explain-snapshots + the full test suite, with a per-gate recap.
//! * `srclint` — the in-process Rust source linter (R001–R006: lock
//!   discipline, panic discipline, determinism; see `crosse-lint`):
//!   lint the workspace, then regenerate and drift-check the rule
//!   fixtures' golden snapshot.
//! * `stress` — run the concurrency test suite (release) with elevated
//!   iteration counts (`CROSSE_STRESS_ITERS=10`) under worker-thread
//!   budgets {1, 4, 8} (`CROSSE_EXEC_THREADS`): the snapshot-isolation
//!   and morsel-parallelism invariants must hold at every budget. A
//!   final debug-build pass with `CROSSE_LOCK_TRACK=1` gates the
//!   lock-acquisition-order graph (no inversions, no lock held across
//!   fsync).
//! * `crash` — fault-injection at the process level: spawn the CLI's
//!   write-heavy crash workload against a scratch `--data-dir`, SIGKILL
//!   it mid-batch, reopen and verify that every acknowledged batch
//!   survived intact in both substrates (twice, so the second kill lands
//!   on already-recovered state).
//! * `chaos` — network fault injection against a spawned
//!   `crosse-cli --serve` (debug build, `CROSSE_LOCK_TRACK=1`): malformed
//!   / truncated / oversized / slowloris frames and connections killed
//!   mid-query, all while concurrent typed clients keep querying; then a
//!   `kill -9` of the server mid-write-load with WAL recovery verified
//!   over the wire. `--quick` bounds the iteration counts for the
//!   `check` gate.

#![forbid(unsafe_code)]

use std::process::Command;

fn run(desc: &str, cmd: &mut Command) {
    println!("xtask: {desc}: {cmd:?}");
    let status = cmd.status().unwrap_or_else(|e| {
        eprintln!("xtask: failed to spawn {cmd:?}: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!("xtask: `{desc}` failed ({status})");
        std::process::exit(status.code().unwrap_or(1));
    }
}

fn cargo() -> Command {
    Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string()))
}

fn clippy() {
    run(
        "clippy gate on the whole workspace",
        cargo().args([
            "clippy",
            "--workspace",
            "--all-targets",
            "--",
            "-D",
            "warnings",
        ]),
    );
    println!("xtask: clippy OK");
}

fn bench_smoke() {
    run(
        "bench smoke (all benches, --test mode)",
        cargo().args(["bench", "-p", "crosse-bench", "--benches", "--", "--test"]),
    );
    clippy();
    println!("xtask: bench-smoke OK");
}

fn bench_baseline() {
    run(
        "regenerate BENCH_e3.json (e3 + e11 concurrency + e12 enrichment + e13 durability \
         + e14 server)",
        cargo().args([
            "run",
            "--release",
            "-p",
            "crosse-bench",
            "--bin",
            "experiments",
            "--",
            "e3",
            "e11",
            "e12",
            "e13",
            "e14",
            "--json",
            "BENCH_e3.json",
        ]),
    );
    println!("xtask: baseline written to BENCH_e3.json");
}

/// Extract the e3 `(name, sesql_median_s)` pairs from a BENCH_e3.json.
/// Hand-rolled (the workspace has no serde): scans the flat, generated
/// schema `{"name": "...", "sesql_median_s": <f64>, ...}` line by line.
fn parse_e3_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"name\": \"") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once('"') else { continue };
        let Some(rest) = rest.split_once("\"sesql_median_s\": ").map(|(_, r)| r) else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

/// Extract the e12 `(scale label, sesql_median_s)` pairs from a
/// BENCH_e3.json (flat generated schema, same hand-rolled parsing as e3).
fn parse_e12_medians(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"scale\": ") else {
            continue;
        };
        let Some((scale, rest)) = rest.split_once(',') else { continue };
        let Some(rest) = rest.split_once("\"sesql_median_s\": ").map(|(_, r)| r) else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((format!("e12/ex4.6 scale {}", scale.trim()), v));
        }
    }
    out
}

/// Extract the e13 `(mode, batches_per_s)` pairs from a BENCH_e3.json
/// (flat generated schema, same hand-rolled parsing as e3/e12).
fn parse_e13_qps(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"mode\": \"") else {
            continue;
        };
        let Some((mode, rest)) = rest.split_once('"') else { continue };
        let Some(rest) = rest.split_once("\"batches_per_s\": ").map(|(_, r)| r) else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((mode.to_string(), v));
        }
    }
    out
}

/// Extract the e14 `(clients, qps)` pairs from a BENCH_e3.json (flat
/// generated schema, same hand-rolled parsing as e3/e12/e13). Only the
/// closed-loop runs match — the overload record's object is nested after
/// `"overload": ` and so never starts a trimmed line with `{"clients": `.
fn parse_e14_qps(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in json.lines() {
        let Some(rest) = line.trim().strip_prefix("{\"clients\": ") else {
            continue;
        };
        let Some((clients, rest)) = rest.split_once(',') else { continue };
        let Some(rest) = rest.split_once("\"qps\": ").map(|(_, r)| r) else {
            continue;
        };
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((format!("e14/server {} client(s)", clients.trim()), v));
        }
    }
    out
}

fn bench_diff(args: &[String]) {
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("CROSSE_BENCH_THRESHOLD").ok())
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("xtask: invalid threshold `{s}` (want a fraction, e.g. 0.25)");
                std::process::exit(2);
            })
        })
        .unwrap_or(0.25);

    let committed = std::fs::read_to_string("BENCH_e3.json").unwrap_or_else(|e| {
        eprintln!("xtask: cannot read committed BENCH_e3.json: {e}");
        std::process::exit(1);
    });
    let mut baseline = parse_e3_medians(&committed);
    if baseline.is_empty() {
        eprintln!("xtask: no e3 records in the committed BENCH_e3.json");
        std::process::exit(1);
    }
    // e12 (the ex4.6 REPLACEVARIABLE scaling record) rides along when the
    // committed baseline has it.
    let baseline_e12 = parse_e12_medians(&committed);
    baseline.extend(baseline_e12.iter().cloned());

    let fresh_path = "target/bench-diff-e3.json";
    run(
        "re-run e3 + e12 + e13 + e14 experiments",
        cargo().args([
            "run",
            "--release",
            "-p",
            "crosse-bench",
            "--bin",
            "experiments",
            "--",
            "e3",
            "e12",
            "e13",
            "e14",
            "--json",
            fresh_path,
        ]),
    );
    let fresh_json = std::fs::read_to_string(fresh_path).unwrap_or_else(|e| {
        eprintln!("xtask: experiments run produced no {fresh_path}: {e}");
        std::process::exit(1);
    });
    let mut fresh = parse_e3_medians(&fresh_json);
    fresh.extend(parse_e12_medians(&fresh_json));

    println!("\nbench-diff vs committed BENCH_e3.json (threshold {:.0}%)", threshold * 100.0);
    println!(
        "{:<28} {:>14} {:>14} {:>9}",
        "experiment", "committed", "fresh", "delta"
    );
    let mut regressions = Vec::new();
    for (name, old) in &baseline {
        let Some((_, new)) = fresh.iter().find(|(n, _)| n == name) else {
            println!("{name:<28} {:>14.6} {:>14} {:>9}", old, "MISSING", "-");
            regressions.push(format!("{name}: missing from fresh run"));
            continue;
        };
        let delta = new / old - 1.0;
        let marker = if delta > threshold { "  << REGRESSION" } else { "" };
        println!(
            "{:<28} {:>12.2}µs {:>12.2}µs {:>+8.1}%{}",
            name,
            old * 1e6,
            new * 1e6,
            delta * 100.0,
            marker
        );
        if delta > threshold {
            regressions.push(format!("{name}: {:+.1}%", delta * 100.0));
        }
    }
    for (name, _) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<28} (new experiment, no committed baseline)");
        }
    }
    // e13 durability guard: group-commit (`every_n:256`) must stay within
    // 10% write throughput of the WAL-off baseline, measured fresh. A
    // slack of half the time threshold absorbs fsync jitter.
    let fresh_e13 = parse_e13_qps(&fresh_json);
    let off = fresh_e13.iter().find(|(m, _)| m == "wal-off");
    let group = fresh_e13.iter().find(|(m, _)| m == "every_n:256");
    if let (Some((_, off)), Some((_, group))) = (off, group) {
        let cost = 1.0 - group / off;
        let budget = 0.10 + threshold / 2.0;
        let marker = if cost > budget { "  << REGRESSION" } else { "" };
        println!(
            "\ne13 durability: wal-off {off:.0} batches/s, every_n:256 {group:.0} batches/s \
             — cost {:.1}% (budget {:.0}%){marker}",
            cost * 100.0,
            budget * 100.0,
        );
        if cost > budget {
            regressions.push(format!(
                "e13 durability: every_n:256 costs {:.1}% throughput (> {:.0}%)",
                cost * 100.0,
                budget * 100.0
            ));
        }
    }
    // e14 over-the-wire QPS guard: fresh closed-loop throughput must stay
    // within budget of the committed record at every client count.
    // Loopback scheduling is noisier than single-thread medians, so the
    // budget gets an extra 15 points of slack on top of the threshold.
    let baseline_e14 = parse_e14_qps(&committed);
    let fresh_e14 = parse_e14_qps(&fresh_json);
    if !baseline_e14.is_empty() && !fresh_e14.is_empty() {
        let budget = threshold + 0.15;
        println!();
        for (name, old) in &baseline_e14 {
            let Some((_, new)) = fresh_e14.iter().find(|(n, _)| n == name) else {
                println!("{name:<28} {old:>12.1}qps {:>14} {:>9}", "MISSING", "-");
                regressions.push(format!("{name}: missing from fresh run"));
                continue;
            };
            let loss = 1.0 - new / old;
            let marker = if loss > budget { "  << REGRESSION" } else { "" };
            println!(
                "{:<28} {:>11.1}qps {:>11.1}qps {:>+8.1}%{}",
                name,
                old,
                new,
                (new / old - 1.0) * 100.0,
                marker
            );
            if loss > budget {
                regressions.push(format!(
                    "{name}: {:.1}% QPS loss (> {:.0}%)",
                    loss * 100.0,
                    budget * 100.0
                ));
            }
        }
    }
    if regressions.is_empty() {
        println!("\nxtask: bench-diff OK (no experiment slower than {:.0}%)", threshold * 100.0);
    } else {
        eprintln!("\nxtask: bench-diff FAILED — {} regression(s):", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        std::process::exit(1);
    }
}

/// Regenerate the golden EXPLAIN snapshots (tests/snapshots/*.snap) and
/// fail if they differ from the committed ones — the cheap CI gate for
/// "the optimizer still produces the plans the snapshots promise". After
/// an intentional plan change, run this once and commit the updated
/// snapshots it leaves behind.
fn explain_snapshots() {
    run(
        "regenerate EXPLAIN snapshots",
        cargo()
            .args(["test", "--test", "explain_golden", "--quiet"])
            .env("CROSSE_UPDATE_SNAPSHOTS", "1"),
    );
    // `git status --porcelain` covers both modified *and* untracked
    // snapshot files (`git diff --exit-code` alone would silently pass a
    // brand-new .snap that was never committed).
    let status = Command::new("git")
        .args(["status", "--porcelain", "--", "tests/snapshots"])
        .output()
        .unwrap_or_else(|e| {
            eprintln!("xtask: failed to run git status: {e}");
            std::process::exit(1);
        });
    let dirty = String::from_utf8_lossy(&status.stdout);
    if !dirty.trim().is_empty() {
        run(
            "diff regenerated snapshots against the committed ones",
            Command::new("git").args(["diff", "--", "tests/snapshots"]),
        );
        eprintln!(
            "xtask: explain-snapshots FAILED — snapshots differ from (or are \
             missing in) the committed set:\n{dirty}\
             commit the regenerated files if the plan change is intentional"
        );
        std::process::exit(1);
    }
    println!("xtask: explain-snapshots OK (snapshots match the committed plans)");
}

/// Regenerate the golden lint snapshots (tests/snapshots/lint_*.snap) by
/// running the lint corpus test with `CROSSE_UPDATE_SNAPSHOTS=1`, then
/// fail if they differ from the committed ones — the corpus gate for "the
/// linter still says exactly what the snapshots promise" (no new false
/// positives on the clean corpus, no silently dropped findings on the
/// seeded-defect fixtures).
fn lint_gate() {
    run(
        "regenerate lint snapshots",
        cargo()
            .args(["test", "--test", "lint_golden", "--quiet"])
            .env("CROSSE_UPDATE_SNAPSHOTS", "1"),
    );
    let status = Command::new("git")
        .args(["status", "--porcelain", "--", "tests/snapshots"])
        .output()
        .unwrap_or_else(|e| {
            eprintln!("xtask: failed to run git status: {e}");
            std::process::exit(1);
        });
    let dirty = String::from_utf8_lossy(&status.stdout);
    if !dirty.trim().is_empty() {
        run(
            "diff regenerated lint snapshots against the committed ones",
            Command::new("git").args(["diff", "--", "tests/snapshots"]),
        );
        eprintln!(
            "xtask: lint FAILED — lint output differs from (or is missing in) \
             the committed snapshots:\n{dirty}\
             commit the regenerated files if the lint change is intentional"
        );
        std::process::exit(1);
    }
    println!("xtask: lint OK (corpus lint output matches the committed snapshots)");
}

/// Lint the workspace's own Rust sources with the dependency-free
/// srclint engine (rules R001–R006: no raw `std::sync` locks outside the
/// compat shim, no `.unwrap()`/`panic!` in library code, labeled lock
/// construction, `#![forbid(unsafe_code)]` crate roots, no wall-clock in
/// the planner). Runs in-process, then regenerates the srclint golden
/// snapshot and fails on drift from the committed one.
fn srclint() {
    let root = std::path::Path::new(".");
    let findings = crosse_lint::srclint::lint_workspace(root).unwrap_or_else(|e| {
        eprintln!("xtask: srclint walk failed: {e}");
        std::process::exit(1);
    });
    if !findings.is_empty() {
        print!("{}", crosse_lint::srclint::render_findings(&findings));
    }
    if crosse_lint::srclint::has_errors(&findings) {
        eprintln!("xtask: srclint FAILED — fix the findings above or add a justified `// srclint: allow(RXXX): …`");
        std::process::exit(1);
    }
    // Fixture corpus gate: regenerate tests/snapshots/srclint.snap and
    // diff against the committed one, same pattern as the lint gate.
    run(
        "regenerate srclint snapshots",
        cargo()
            .args(["test", "--test", "srclint_golden", "--quiet"])
            .env("CROSSE_UPDATE_SNAPSHOTS", "1"),
    );
    let status = Command::new("git")
        .args(["status", "--porcelain", "--", "tests/snapshots/srclint.snap"])
        .output()
        .unwrap_or_else(|e| {
            eprintln!("xtask: failed to run git status: {e}");
            std::process::exit(1);
        });
    let dirty = String::from_utf8_lossy(&status.stdout);
    if !dirty.trim().is_empty() {
        run(
            "diff regenerated srclint snapshot against the committed one",
            Command::new("git").args(["diff", "--", "tests/snapshots/srclint.snap"]),
        );
        eprintln!(
            "xtask: srclint FAILED — fixture output differs from (or is missing \
             in) the committed snapshot:\n{dirty}\
             commit the regenerated file if the rule change is intentional"
        );
        std::process::exit(1);
    }
    println!("xtask: srclint OK (workspace clean, fixture snapshot matches)");
}

/// The aggregate static-analysis + test gate: clippy (warnings are
/// errors), srclint on our own sources, the corpus lint gate, the
/// EXPLAIN plan snapshots, and the full test suite. One command ≈ "is
/// this tree healthy". Each sub-gate prints its own one-line verdict;
/// the trailing block recaps them.
fn check() {
    clippy();
    srclint();
    lint_gate();
    explain_snapshots();
    run("cargo test --workspace", cargo().args(["test", "--workspace", "--quiet"]));
    chaos(&["--quick".to_string()]);
    println!("xtask: check OK");
    for gate in [
        "clippy            OK (workspace, -D warnings)",
        "srclint           OK (R001-R006 on our own sources + fixture snapshot)",
        "lint              OK (query-corpus snapshots match)",
        "explain-snapshots OK (plan snapshots match)",
        "tests             OK (cargo test --workspace)",
        "chaos             OK (--quick: frame abuse + kill -9 recovery, lock-tracked)",
    ] {
        println!("  {gate}");
    }
}

fn stress() {
    // Elevated iterations; one pass per worker-thread budget. Release
    // build: the point is to shake out races, not to wait on debug code.
    for threads in ["1", "4", "8"] {
        run(
            &format!("concurrency suite, {threads} worker thread(s), 10x iterations"),
            cargo()
                .args(["test", "--release", "--test", "concurrency", "--", "--nocapture"])
                .env("CROSSE_STRESS_ITERS", "10")
                .env("CROSSE_EXEC_THREADS", threads),
        );
    }
    // Lock-order regression pass: one debug-build round with the
    // parking_lot shim's acquisition-order tracker live. The suite's
    // lock-order gate test asserts the run recorded no inversion and no
    // lock held across an fsync (tracking compiles out of the release
    // passes above, so only this pass can see them).
    run(
        "lock-order gate (debug build, CROSSE_LOCK_TRACK=1, 4 worker threads)",
        cargo()
            .args(["test", "--test", "concurrency", "--", "--nocapture"])
            .env("CROSSE_LOCK_TRACK", "1")
            .env("CROSSE_EXEC_THREADS", "4"),
    );
    println!("xtask: stress OK (worker threads 1/4/8 + lock-order gate)");
}

/// Crash-recovery harness: spawn the CLI in `--crash-workload` mode
/// against a scratch data directory, read acknowledged batch numbers off
/// its stdout, SIGKILL it mid-batch, then reopen the directory with
/// `--verify-crash <last ack>` — no acknowledged batch may be lost and no
/// partial batch may surface. Two rounds: the second kills a process that
/// itself recovered from the first crash (snapshot + tail + log
/// consolidation all get exercised).
fn crash() {
    use std::io::BufRead;
    run(
        "build crosse-cli (release)",
        cargo().args(["build", "--release", "--bin", "crosse-cli"]),
    );
    let bin = "target/release/crosse-cli";
    let dir = std::env::temp_dir().join(format!("crosse-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_string_lossy().to_string();
    for round in 1..=2 {
        let mut child = Command::new(bin)
            .args(["--landfills", "5", "--data-dir", &dir_arg, "--crash-workload"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .unwrap_or_else(|e| {
                eprintln!("xtask: failed to spawn the crash workload: {e}");
                std::process::exit(1);
            });
        let stdout = child.stdout.take().expect("piped stdout");
        let mut last_ack: Option<u64> = None;
        let mut acked = 0u32;
        for line in std::io::BufReader::new(stdout).lines() {
            let line = line.unwrap_or_default();
            if let Some(n) = line.strip_prefix("ack ").and_then(|s| s.parse::<u64>().ok())
            {
                last_ack = Some(n);
                acked += 1;
                // Enough batches this round to pass the workload's
                // mid-run checkpoint; the child keeps writing while we
                // stop reading, so the kill lands mid-batch.
                if acked >= 8 {
                    break;
                }
            }
        }
        let _ = child.kill(); // SIGKILL — no destructors, no flush
        let _ = child.wait();
        let last_ack = last_ack.unwrap_or_else(|| {
            eprintln!("xtask: crash workload produced no acks (round {round})");
            std::process::exit(1);
        });
        run(
            &format!("verify recovered state (round {round}, last ack {last_ack})"),
            Command::new(bin).args([
                "--landfills",
                "5",
                "--data-dir",
                &dir_arg,
                "--verify-crash",
                &last_ack.to_string(),
            ]),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("xtask: crash OK (2 kill -9 rounds, no acked batch lost, no torn batch)");
}

// ---- chaos: network-server fault injection ----------------------------------

/// A spawned `crosse-cli --serve` process plus its bound address.
struct ServerProc {
    child: std::process::Child,
    addr: String,
}

/// Spawn the CLI in `--serve` mode (debug build, `CROSSE_LOCK_TRACK=1` so
/// the run doubles as a lock-discipline gate) and read the bound address
/// off its first stdout line.
fn spawn_server(bin: &str, extra: &[&str]) -> ServerProc {
    use std::io::BufRead;
    let mut child = Command::new(bin)
        .args(["--landfills", "5", "--serve", "127.0.0.1:0"])
        .args(extra)
        .env("CROSSE_LOCK_TRACK", "1")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("xtask: failed to spawn the server: {e}");
            std::process::exit(1);
        });
    let mut line = String::new();
    std::io::BufReader::new(child.stdout.as_mut().expect("server stdout"))
        .read_line(&mut line)
        .unwrap_or_else(|e| {
            eprintln!("xtask: server printed no address: {e}");
            std::process::exit(1);
        });
    let addr = line.trim().rsplit(' ').next().unwrap_or_default().to_string();
    if addr.is_empty() {
        eprintln!("xtask: could not parse the server address from `{line}`");
        std::process::exit(1);
    }
    ServerProc { child, addr }
}

/// Ask a server to drain (close its stdin) and require a clean exit —
/// a lock-tracker violation recorded during serving exits non-zero.
fn stop_server(mut server: ServerProc, what: &str) {
    drop(server.child.stdin.take());
    let status = server.child.wait().unwrap_or_else(|e| {
        eprintln!("xtask: waiting for the {what} server: {e}");
        std::process::exit(1);
    });
    if !status.success() {
        eprintln!(
            "xtask: chaos FAILED — the {what} server exited {status} \
             (exit 3 = lock-tracker violations; see its stderr)"
        );
        std::process::exit(1);
    }
}

fn chaos_client(addr: &str) -> crosse_server::Client {
    let mut c = crosse_server::Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("xtask: chaos client connect failed: {e}");
        std::process::exit(1);
    });
    c.hello("director").unwrap_or_else(|e| {
        eprintln!("xtask: chaos client hello failed: {e}");
        std::process::exit(1);
    });
    c
}

/// Raw handshake: connect, exchange magic, return the socket.
fn raw_conn(addr: &str) -> std::net::TcpStream {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("xtask: raw connect failed: {e}");
        std::process::exit(1);
    });
    s.write_all(crosse_server::MAGIC).expect("magic");
    let mut echo = [0u8; 8];
    s.read_exact(&mut echo).expect("magic echo");
    s
}

/// Drain a socket until the peer closes it (bounded by a read timeout so
/// a wedged server fails the harness instead of hanging it; a timeout
/// error also ends the abuse connection, which is all we need).
fn read_until_close(s: &mut std::net::TcpStream) {
    use std::io::Read;
    s.set_read_timeout(Some(std::time::Duration::from_secs(10))).ok();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
    }
}

/// Abuse phase: malformed/truncated/oversized/slowloris frames and
/// killed-mid-query connections against a live server taking real load.
/// The server must answer everything typed (or close) and keep serving.
fn chaos_abuse(bin: &str, rounds: usize) {
    use crosse_server::{ErrorCode, Lang, QueryOutcome, Request};
    use std::io::Write;

    let server = spawn_server(
        bin,
        &["--max-active", "2", "--queue-depth", "2", "--read-timeout-ms", "250"],
    );
    let addr = server.addr.clone();
    println!("xtask: chaos abuse: server at {addr}, {rounds} round(s)");

    // Seed a table big enough that queries hold slots measurably.
    let mut seed = chaos_client(&addr);
    seed.query(Lang::Sql, "CREATE TABLE big (x INT)", 0).expect("create big");
    let values: Vec<String> = (0..2000).map(|i| format!("({i})")).collect();
    seed.query(Lang::Sql, &format!("INSERT INTO big VALUES {}", values.join(",")), 0)
        .expect("fill big");

    // Background load: concurrent clients issuing queries the whole time.
    // Every outcome must be typed — Done, BUSY, or DEADLINE_EXCEEDED.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let load_threads: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut c = chaos_client(&addr);
                let (mut done, mut shed) = (0u32, 0u32);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let r = c
                        .query(Lang::Sql, "SELECT COUNT(*) FROM big a, big b WHERE a.x < 40", 5_000)
                        .unwrap_or_else(|e| {
                            eprintln!("xtask: load client lost its connection: {e}");
                            std::process::exit(1);
                        });
                    match r.outcome {
                        QueryOutcome::Done { .. } => done += 1,
                        QueryOutcome::Error { code: ErrorCode::Busy, .. } => {
                            shed += 1;
                            std::thread::sleep(std::time::Duration::from_millis(10));
                        }
                        QueryOutcome::Error { code: ErrorCode::DeadlineExceeded, .. } => {}
                        QueryOutcome::Error { code, message } => {
                            eprintln!("xtask: load client got unexpected {code:?}: {message}");
                            std::process::exit(1);
                        }
                    }
                }
                (done, shed)
            })
        })
        .collect();

    for round in 0..rounds {
        // 1. Wrong magic: the server closes without crashing.
        let mut s = std::net::TcpStream::connect(&addr).expect("connect");
        s.write_all(b"HTTP/1.1 ").expect("bogus preamble");
        read_until_close(&mut s);

        // 2. Garbage payload in a well-framed message: typed error reply.
        let mut s = raw_conn(&addr);
        let garbage: Vec<u8> = (0..(round % 48 + 1)).map(|i| (i * 37 + round) as u8).collect();
        s.write_all(&(garbage.len() as u32).to_le_bytes()).expect("len");
        s.write_all(&garbage).expect("garbage");
        read_until_close(&mut s);

        // 3. Truncated frame: declare 300 bytes, send a few, vanish.
        let mut s = raw_conn(&addr);
        s.write_all(&300u32.to_le_bytes()).expect("len");
        s.write_all(&[0x02, 0x00, 0x01]).expect("partial");
        drop(s);

        // 4. Oversized length prefix: typed TOO_LARGE, never an allocation.
        let mut s = raw_conn(&addr);
        s.write_all(&u32::MAX.to_le_bytes()).expect("huge len");
        read_until_close(&mut s);

        // 5. Slowloris: start a frame, then stall past the read timeout.
        let mut s = raw_conn(&addr);
        s.write_all(&[0x10, 0x00]).expect("half a length prefix");
        std::thread::sleep(std::time::Duration::from_millis(400));
        read_until_close(&mut s);

        // 6. Kill a connection mid-query: hello, fire a row-heavy query,
        //    read a little, vanish. The slot must come back (the load
        //    clients would starve into BUSY forever otherwise).
        let mut s = raw_conn(&addr);
        let hello = Request::Hello { user: "director".into() }.encode();
        s.write_all(&(hello.len() as u32).to_le_bytes()).expect("len");
        s.write_all(&hello).expect("hello");
        let mut reply = [0u8; 64];
        use std::io::Read;
        let _ = s.read(&mut reply);
        let q = Request::Query {
            lang: Lang::Sql,
            deadline_ms: 30_000,
            text: "SELECT a.x, b.x FROM big a, big b".into(),
        }
        .encode();
        s.write_all(&(q.len() as u32).to_le_bytes()).expect("len");
        s.write_all(&q).expect("query");
        let _ = s.read(&mut reply); // first bytes of the stream
        drop(s);
    }

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let (mut done, mut shed) = (0u32, 0u32);
    for t in load_threads {
        let (d, s) = t.join().unwrap_or_else(|_| {
            eprintln!("xtask: a load client panicked");
            std::process::exit(1);
        });
        done += d;
        shed += s;
    }

    // The server survived everything: a fresh session works, and the
    // stats show the abuse was actually seen and typed.
    let mut probe = chaos_client(&addr);
    probe.ping().expect("post-abuse ping");
    let r = probe.query(Lang::Sql, "SELECT COUNT(*) FROM big", 0).expect("post-abuse query");
    if let Some((code, msg)) = r.error() {
        eprintln!("xtask: post-abuse query failed: {code:?}: {msg}");
        std::process::exit(1);
    }
    let stats = probe.stats().expect("post-abuse stats");
    let stat = |k: &str| stats.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap_or(0);
    println!(
        "xtask: chaos abuse: {done} queries completed, {shed} shed typed-BUSY, \
         {} protocol errors typed, {} cancelled, p95 {}µs",
        stat("protocol_errors"),
        stat("cancelled"),
        stat("p95_us"),
    );
    if stat("protocol_errors") == 0 {
        eprintln!("xtask: chaos FAILED — the abuse rounds left no protocol_errors trace");
        std::process::exit(1);
    }
    if done == 0 {
        eprintln!("xtask: chaos FAILED — no load query completed during abuse");
        std::process::exit(1);
    }
    drop(probe);
    stop_server(server, "abuse-phase");
}

/// Durability phase: `kill -9` the server mid-write-load against a WAL
/// data dir, restart it on the same dir, and verify over the wire that
/// every acknowledged batch survived whole (and none tore).
fn chaos_kill9(bin: &str, batches: u64) {
    use crosse_server::{Lang, QueryOutcome};

    let dir = std::env::temp_dir().join(format!("crosse-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_arg = dir.to_string_lossy().to_string();

    let mut server = spawn_server(bin, &["--data-dir", &dir_arg]);
    println!("xtask: chaos kill-9: durable server at {} ({batches} acked batches)", server.addr);
    let mut c = chaos_client(&server.addr);
    c.query(Lang::Sql, "CREATE TABLE chaos_log (batch INT, item INT)", 0)
        .expect("create chaos_log");
    const ROWS_PER_BATCH: u64 = 16;
    let mut last_ack = None;
    for b in 0..batches {
        let values: Vec<String> =
            (0..ROWS_PER_BATCH).map(|i| format!("({b}, {i})")).collect();
        let r = c
            .query(Lang::Sql, &format!("INSERT INTO chaos_log VALUES {}", values.join(",")), 0)
            .expect("insert batch");
        match r.outcome {
            QueryOutcome::Done { .. } => last_ack = Some(b),
            other => {
                eprintln!("xtask: chaos batch {b} failed: {other:?}");
                std::process::exit(1);
            }
        }
    }
    // One more batch in flight when the kill lands: its DONE never
    // arrives, so it is NOT acked — it may be lost, but must not tear.
    let addr = server.addr.clone();
    let torn = std::thread::spawn(move || {
        let mut c2 = chaos_client(&addr);
        let values: Vec<String> =
            (0..64).map(|i| format!("({}, {i})", u64::MAX / 2)).collect();
        // The server dies mid-exchange; any error is expected here.
        let _ = c2.query(
            Lang::Sql,
            &format!("INSERT INTO chaos_log VALUES {}", values.join(",")),
            0,
        );
    });
    std::thread::sleep(std::time::Duration::from_millis(3));
    server.child.kill().expect("kill -9 server"); // SIGKILL: no flush, no drain
    let _ = server.child.wait();
    let _ = torn.join();
    let last_ack = last_ack.unwrap_or_else(|| {
        eprintln!("xtask: no batch was ever acked before the kill");
        std::process::exit(1);
    });

    // Reopen the same data dir and verify over the wire.
    let server = spawn_server(bin, &["--data-dir", &dir_arg]);
    let mut v = chaos_client(&server.addr);
    let r = v
        .query(
            Lang::Sql,
            "SELECT batch, COUNT(*) AS n FROM chaos_log GROUP BY batch ORDER BY batch",
            0,
        )
        .expect("verify query");
    if let Some((code, msg)) = r.error() {
        eprintln!("xtask: chaos verify query failed: {code:?}: {msg}");
        std::process::exit(1);
    }
    let mut present = std::collections::HashMap::new();
    for row in &r.rows {
        if let [batch, n] = &row[..] {
            present.insert(value_as_i64(batch), value_as_i64(n));
        }
    }
    let mut failures = Vec::new();
    for b in 0..=last_ack {
        match present.get(&(b as i64)) {
            Some(&n) if n == ROWS_PER_BATCH as i64 => {}
            Some(&n) => failures.push(format!(
                "acked batch {b} torn: {n} of {ROWS_PER_BATCH} rows survived"
            )),
            None => failures.push(format!("acked batch {b} lost after kill -9")),
        }
    }
    // The unacked in-flight batch: all-or-nothing.
    if let Some(&n) = present.get(&((u64::MAX / 2) as i64)) {
        if n != 64 {
            failures.push(format!("in-flight batch torn: {n} of 64 rows"));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("xtask: chaos FAILED — {f}");
        }
        std::process::exit(1);
    }
    println!(
        "xtask: chaos kill-9: {} acked batches intact after recovery, in-flight batch {}",
        last_ack + 1,
        if present.contains_key(&((u64::MAX / 2) as i64)) { "replayed whole" } else { "dropped whole" },
    );
    drop(v);
    stop_server(server, "recovery-verify");
    let _ = std::fs::remove_dir_all(&dir);
}

fn value_as_i64(v: &crosse_server::Value) -> i64 {
    match v {
        crosse_server::Value::Int(i) => *i,
        _ => -1,
    }
}

/// Network-server fault injection (see ISSUE: admission control, typed
/// shedding, cancellation, durability): an abuse phase (malformed /
/// truncated / oversized / slowloris frames, connections killed
/// mid-query, all under concurrent load) and a `kill -9` durability phase
/// (WAL recovery proven over the wire). Debug build with
/// `CROSSE_LOCK_TRACK=1`: a lock-order violation fails the server's exit.
fn chaos(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    run(
        "build crosse-cli (debug: the lock tracker compiles out of release)",
        cargo().args(["build", "--bin", "crosse-cli"]),
    );
    let bin = "target/debug/crosse-cli";
    let (rounds, batches) = if quick { (3, 12) } else { (12, 60) };
    chaos_abuse(bin, rounds);
    chaos_kill9(bin, batches);
    println!(
        "xtask: chaos OK ({rounds} abuse rounds survived typed, kill -9 recovery \
         verified over the wire{})",
        if quick { ", --quick" } else { "" }
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let task = args.first().cloned().unwrap_or_default();
    match task.as_str() {
        "bench-smoke" => bench_smoke(),
        "bench-baseline" => bench_baseline(),
        "bench-diff" => bench_diff(&args[1..]),
        "explain-snapshots" => explain_snapshots(),
        "lint" => lint_gate(),
        "srclint" => srclint(),
        "check" => check(),
        "clippy" => clippy(),
        "stress" => stress(),
        "crash" => crash(),
        "chaos" => chaos(&args[1..]),
        other => {
            eprintln!(
                "unknown task `{other}`\n\nusage: cargo xtask <task>\n\
                 tasks:\n  bench-smoke     run all benches in --test mode + clippy -D warnings on the workspace\n\
                 bench-baseline  regenerate BENCH_e3.json via the experiments binary (e3 + e11 + e12)\n\
                 bench-diff      re-run e3 + e12 (ex4.6) and diff against the committed BENCH_e3.json\n\
                                 (--threshold 0.25 / CROSSE_BENCH_THRESHOLD; non-zero exit on regression)\n\
                 explain-snapshots  regenerate tests/snapshots/*.snap and diff against the committed ones\n\
                 lint            regenerate the corpus lint snapshots (lint_golden) and diff against\n\
                                 the committed ones (non-zero exit on drift)\n\
                 srclint         lint our own Rust sources (R001-R006: std::sync locks, unwrap/panic\n\
                                 discipline, lock labels, forbid(unsafe_code), planner wall-clock)\n\
                                 and gate the fixture corpus snapshot\n\
                 check           aggregate gate: clippy + srclint + lint + explain-snapshots + full tests\n\
                 clippy          cargo clippy --workspace --all-targets -- -D warnings\n\
                 stress          concurrency tests (release), 10x iterations, worker threads 1/4/8,\n\
                                 then a debug CROSSE_LOCK_TRACK=1 lock-order gate pass\n\
                 crash           kill -9 a write-heavy child mid-batch, reopen, verify no acked\n\
                                 write is lost and no partial batch surfaces (2 rounds)\n\
                 chaos           network fault injection against `crosse-cli --serve` (debug,\n\
                                 CROSSE_LOCK_TRACK=1): malformed/truncated/slowloris frames and\n\
                                 killed-mid-query connections under concurrent load, then kill -9\n\
                                 the server mid-write-load and verify WAL recovery over the wire\n\
                                 (--quick for the bounded gate run used by `check`)"
            );
            std::process::exit(2);
        }
    }
}
