// srclint: allow(R002): each task slot is claimed by exactly one worker index; a double-take is a scheduler bug worth crashing on
//! # crosse-exec
//!
//! A dependency-free scoped worker pool for intra-query parallelism, in
//! the spirit of morsel-driven execution (Leis et al.): callers partition
//! their input into small *morsels*, workers pull morsels from a shared
//! atomic counter (so fast workers steal the tail from slow ones), and the
//! results are merged back **in input order** so parallel operators stay
//! deterministic.
//!
//! The pool is built on [`std::thread::scope`] — no crates.io
//! dependencies, no unsafe, no global state (its only dep is the
//! workspace's std-backed `parking_lot` shim, for lock-order tracking). Threads are spawned per call;
//! that costs tens of microseconds, which is why every entry point falls
//! back to the caller's thread for single-threaded pools, single tasks, or
//! when the caller's partitioning produced one chunk. Engines gate the
//! parallel path on input size so small queries never pay the spawn cost.
//!
//! ```
//! use crosse_exec::WorkerPool;
//! let pool = WorkerPool::new(4);
//! let data: Vec<u64> = (0..10_000).collect();
//! let sums = pool.map_chunks(&data, 1024, |_idx, chunk| chunk.iter().sum::<u64>());
//! assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
//! ```

#![forbid(unsafe_code)]

mod cancel;

pub use cancel::{AmbientGuard, CancelToken, Interrupt};

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A scoped worker pool: a target thread count plus the scheduling logic.
///
/// The pool owns no threads between calls (creation is free); each
/// `map_*` call runs inside one [`std::thread::scope`], so borrowed data
/// (table snapshots, hash tables, probers) can be shared with workers
/// without `'static` bounds or reference counting.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// A pool that aims for `threads` concurrent workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool { threads: threads.max(1) }
    }

    /// Target worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this pool would actually run anything concurrently.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Run `f(task_index, task)` over every task, returning the results in
    /// task order. Tasks are claimed from a shared counter, so workers
    /// load-balance automatically when task costs are skewed.
    ///
    /// A panicking task aborts the whole call (the scope re-raises the
    /// panic on the caller's thread), matching the single-threaded
    /// behaviour.
    pub fn run_tasks<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads <= 1 || tasks.len() <= 1 {
            return tasks.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let n = tasks.len();
        let slots: Vec<Mutex<Option<T>>> = tasks
            .into_iter()
            .map(|t| Mutex::new_labeled("exec.task_slot", Some(t)))
            .collect();
        let next = AtomicUsize::new(0);
        let workers = self.threads.min(n);
        let mut merged: Vec<(usize, R)> = Vec::with_capacity(n);
        {
            let collected: Mutex<&mut Vec<(usize, R)>> =
                Mutex::new_labeled("exec.results", &mut merged);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let task = slots[i]
                                .lock()
                                .take()
                                .expect("task claimed twice");
                            local.push((i, f(i, task)));
                        }
                        if !local.is_empty() {
                            collected.lock().append(&mut local);
                        }
                    });
                }
            });
        }
        merged.sort_unstable_by_key(|(i, _)| *i);
        merged.into_iter().map(|(_, r)| r).collect()
    }

    /// Partition `items` into chunks of at most `chunk` elements and run
    /// `f(chunk_index, chunk_slice)` over them, order-preserving. The
    /// canonical morsel shape: the caller pins a snapshot, the pool maps
    /// borrowed slices of it.
    pub fn map_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk = chunk.max(1);
        let ranges: Vec<std::ops::Range<usize>> = (0..items.len())
            .step_by(chunk)
            .map(|lo| lo..(lo + chunk).min(items.len()))
            .collect();
        self.run_tasks(ranges, |i, range| f(i, &items[range]))
    }

    /// Split an owned vector into ≈`parts` contiguous chunks and run
    /// `f(chunk_index, chunk)` over them, order-preserving. Used when the
    /// work consumes its input (e.g. join rows extended by move).
    pub fn map_owned_chunks<T, R, F>(&self, items: Vec<T>, parts: usize, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, Vec<T>) -> R + Sync,
    {
        if self.threads <= 1 || parts <= 1 || items.len() <= 1 {
            return vec![f(0, items)];
        }
        let per = items.len().div_ceil(parts.max(1));
        let mut items = items;
        let mut chunks: Vec<Vec<T>> = Vec::new();
        while items.len() > per {
            let tail = items.split_off(per);
            chunks.push(std::mem::replace(&mut items, tail));
        }
        chunks.push(items);
        self.run_tasks(chunks, f)
    }
}

impl Default for WorkerPool {
    /// A sequential pool (1 thread): parallelism is strictly opt-in.
    fn default() -> Self {
        WorkerPool::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert!(!pool.is_parallel());
    }

    #[test]
    fn run_tasks_preserves_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<usize> = (0..100).collect();
        let out = pool.run_tasks(tasks, |i, t| {
            assert_eq!(i, t);
            t * 2
        });
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunks_covers_every_element_once() {
        let pool = WorkerPool::new(3);
        let data: Vec<u64> = (0..10_001).collect();
        let touched = AtomicU64::new(0);
        let partials = pool.map_chunks(&data, 512, |_, chunk| {
            touched.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            chunk.iter().sum::<u64>()
        });
        assert_eq!(touched.load(Ordering::Relaxed), data.len() as u64);
        assert_eq!(partials.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn map_chunks_order_preserving_merge() {
        let pool = WorkerPool::new(4);
        let data: Vec<u32> = (0..5_000).collect();
        let chunks = pool.map_chunks(&data, 128, |_, c| c.to_vec());
        let merged: Vec<u32> = chunks.into_iter().flatten().collect();
        assert_eq!(merged, data, "order-preserving merge");
    }

    #[test]
    fn map_owned_chunks_round_trips() {
        let pool = WorkerPool::new(4);
        let data: Vec<String> = (0..997).map(|i| format!("row{i}")).collect();
        let out: Vec<String> = pool
            .map_owned_chunks(data.clone(), 4, |_, chunk| chunk)
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(out, data);
    }

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let tid = std::thread::current().id();
        let out = pool.run_tasks(vec![(), ()], |_, ()| std::thread::current().id());
        assert!(out.iter().all(|t| *t == tid), "no spawn for 1 thread");
    }

    #[test]
    fn borrowed_state_shared_across_workers() {
        // The scoped design's point: workers can read caller-borrowed data.
        let pool = WorkerPool::new(4);
        let snapshot: Vec<u64> = (0..4_096).collect();
        let total = AtomicU64::new(0);
        pool.map_chunks(&snapshot, 256, |_, chunk| {
            total.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), snapshot.iter().sum::<u64>());
    }

    #[test]
    fn skewed_tasks_still_complete() {
        let pool = WorkerPool::new(4);
        let out = pool.run_tasks((0..32usize).collect(), |_, t| {
            if t == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            t
        });
        assert_eq!(out.len(), 32);
    }
}
