//! Cooperative query cancellation and deadlines.
//!
//! A [`CancelToken`] is a cheap, cloneable handle (`Arc<AtomicBool>` plus an
//! optional deadline) that long-running operators poll at batch boundaries:
//! relational scans check once per `SCAN_BATCH`, morsel drivers once per
//! wave, SPARQL evaluation once per probe batch. Checking is a single
//! relaxed atomic load in the common case; the deadline comparison only
//! happens when a deadline was actually set.
//!
//! Tokens travel two ways:
//!
//! 1. **Explicitly** — APIs like `Rows::from_plan_with` or
//!    `EvalOptions::cancel` accept a token directly.
//! 2. **Ambiently** — a thread-local *current token* installed with
//!    [`CancelToken::make_current`] for the duration of a query. Execution
//!    contexts capture the ambient token once at construction (on the query
//!    thread) and then carry it explicitly, so worker threads spawned later
//!    still observe the same token even though thread-locals don't cross
//!    thread boundaries.
//!
//! The ambient channel exists so the serving layer can impose a deadline on
//! an entire multi-phase pipeline (SESQL Phase A/B/C/D) without threading a
//! parameter through every internal signature.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a query was interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The token was cancelled explicitly (client disconnect, shutdown,
    /// user abort).
    Cancelled,
    /// The query's deadline passed before it finished.
    DeadlineExceeded,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "query cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle shared between a controller (server
/// connection, CLI, test) and the operators executing a query.
///
/// The default token is *infallible*: no deadline, never cancelled, and
/// [`check`](CancelToken::check) compiles down to one relaxed load.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline that only trips when [`cancel`](Self::cancel)
    /// is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None }),
        }
    }

    /// A token that additionally trips once `deadline` has elapsed from now.
    pub fn with_deadline(deadline: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + deadline),
            }),
        }
    }

    /// Trip the token. All clones observe the cancellation at their next
    /// [`check`](Self::check). Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has [`cancel`](Self::cancel) been called? (Does not consult the
    /// deadline; use [`check`](Self::check) for the full verdict.)
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The deadline, if one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Poll the token: `Err(Interrupt::Cancelled)` if tripped,
    /// `Err(Interrupt::DeadlineExceeded)` if the deadline passed, `Ok(())`
    /// otherwise. Cancellation wins over the deadline when both hold, so a
    /// disconnect is reported as a disconnect even on an expired query.
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Err(Interrupt::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Err(Interrupt::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// The ambient token for this thread, if one is installed; otherwise a
    /// fresh infallible token. Execution contexts call this once at
    /// construction on the query thread.
    pub fn current() -> CancelToken {
        AMBIENT.with(|slot| slot.borrow().last().cloned()).unwrap_or_default()
    }

    /// Install this token as the thread's ambient token for the lifetime of
    /// the returned guard. Guards nest; the innermost wins. The guard is
    /// `!Send` by construction (it must drop on the installing thread).
    pub fn make_current(&self) -> AmbientGuard {
        AMBIENT.with(|slot| slot.borrow_mut().push(self.clone()));
        AmbientGuard { _not_send: std::marker::PhantomData }
    }
}

thread_local! {
    static AMBIENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`CancelToken::make_current`]; restores the
/// previous ambient token on drop.
pub struct AmbientGuard {
    _not_send: std::marker::PhantomData<std::rc::Rc<()>>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|slot| {
            slot.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_ok() {
        let t = CancelToken::new();
        assert_eq!(t.check(), Ok(()));
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_propagates_to_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        t.cancel();
        assert_eq!(c.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_trips() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.check(), Err(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn cancellation_wins_over_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        t.cancel();
        assert_eq!(t.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn ambient_nesting() {
        assert_eq!(CancelToken::current().check(), Ok(()));
        let outer = CancelToken::new();
        let _g1 = outer.make_current();
        {
            let inner = CancelToken::new();
            let _g2 = inner.make_current();
            inner.cancel();
            assert_eq!(CancelToken::current().check(), Err(Interrupt::Cancelled));
        }
        // Back to outer, which is untripped.
        assert_eq!(CancelToken::current().check(), Ok(()));
        outer.cancel();
        assert_eq!(CancelToken::current().check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn ambient_does_not_cross_threads() {
        let t = CancelToken::new();
        let _g = t.make_current();
        t.cancel();
        let handle = std::thread::spawn(|| CancelToken::current().check());
        assert_eq!(handle.join().unwrap(), Ok(()));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Interrupt::Cancelled.to_string(), "query cancelled");
        assert_eq!(Interrupt::DeadlineExceeded.to_string(), "query deadline exceeded");
    }
}
