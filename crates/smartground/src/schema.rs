//! The SmartGround relational schema (paper Fig. 3).
//!
//! The figure sketches a databank of mine/urban landfills, the chemical
//! elements they contain, and the analyses that produced those numbers.
//! The concrete columns below follow the figure's fragment (landfill,
//! element, elem_contained) plus the entities the paper's examples rely on
//! (laboratories and analyses signed by lab staff — Example 3.1).

use crosse_relational::{Database, Result};

/// Table names, in creation order.
pub const TABLES: &[&str] =
    &["landfill", "element", "elem_contained", "laboratory", "analysis"];

/// Create all SmartGround tables in `db` (errors if any already exist).
pub fn create_schema(db: &Database) -> Result<()> {
    db.execute_script(
        "CREATE TABLE landfill (
            name TEXT,
            city TEXT,
            region TEXT,
            kind TEXT,          -- 'mining' | 'municipal' | 'industrial'
            opened INT,
            tons FLOAT
         );
         CREATE TABLE element (
            symbol TEXT,
            full_name TEXT,
            atomic_number INT
         );
         CREATE TABLE elem_contained (
            elem_name TEXT,
            landfill_name TEXT,
            amount FLOAT        -- tonnes of recoverable material
         );
         CREATE TABLE laboratory (
            name TEXT,
            city TEXT,
            director TEXT
         );
         CREATE TABLE analysis (
            id INT,
            landfill_name TEXT,
            lab_name TEXT,
            elem_name TEXT,
            concentration FLOAT, -- mg/kg
            year INT,
            signed_by TEXT
         );",
    )?;
    Ok(())
}

/// The element inventory used by the generators: (symbol, name, Z).
/// Focused on metals and metalloids relevant to secondary raw materials.
pub const ELEMENTS: &[(&str, &str, i64)] = &[
    ("Al", "Aluminium", 13),
    ("Si", "Silicon", 14),
    ("Ti", "Titanium", 22),
    ("V", "Vanadium", 23),
    ("Cr", "Chromium", 24),
    ("Mn", "Manganese", 25),
    ("Fe", "Iron", 26),
    ("Co", "Cobalt", 27),
    ("Ni", "Nickel", 28),
    ("Cu", "Copper", 29),
    ("Zn", "Zinc", 30),
    ("Ga", "Gallium", 31),
    ("Ge", "Germanium", 32),
    ("As", "Arsenic", 33),
    ("Se", "Selenium", 34),
    ("Zr", "Zirconium", 40),
    ("Nb", "Niobium", 41),
    ("Mo", "Molybdenum", 42),
    ("Pd", "Palladium", 46),
    ("Ag", "Silver", 47),
    ("Cd", "Cadmium", 48),
    ("In", "Indium", 49),
    ("Sn", "Tin", 50),
    ("Sb", "Antimony", 51),
    ("Te", "Tellurium", 52),
    ("Ba", "Barium", 56),
    ("La", "Lanthanum", 57),
    ("Ce", "Cerium", 58),
    ("Nd", "Neodymium", 60),
    ("W", "Tungsten", 74),
    ("Pt", "Platinum", 78),
    ("Au", "Gold", 79),
    ("Hg", "Mercury", 80),
    ("Tl", "Thallium", 81),
    ("Pb", "Lead", 82),
    ("Bi", "Bismuth", 83),
    ("Th", "Thorium", 90),
    ("U", "Uranium", 92),
];

/// Cities the generator places landfills and labs in: (city, region,
/// country local-name). A mix of Italian and other EU locations, matching
/// the project's multi-country databank.
pub const CITIES: &[(&str, &str, &str)] = &[
    ("Torino", "Piemonte", "Italy"),
    ("Collegno", "Piemonte", "Italy"),
    ("Milano", "Lombardia", "Italy"),
    ("Genova", "Liguria", "Italy"),
    ("Roma", "Lazio", "Italy"),
    ("Napoli", "Campania", "Italy"),
    ("Cagliari", "Sardegna", "Italy"),
    ("Lyon", "AuvergneRhoneAlpes", "France"),
    ("Marseille", "Provence", "France"),
    ("Barcelona", "Catalunya", "Spain"),
    ("Bilbao", "Euskadi", "Spain"),
    ("Essen", "NRW", "Germany"),
    ("Leipzig", "Sachsen", "Germany"),
    ("Katowice", "Slask", "Poland"),
    ("Ljubljana", "Osrednjeslovenska", "Slovenia"),
    ("Athens", "Attica", "Greece"),
];

/// Landfill kinds (paper: industrial, mining and municipal landfills).
pub const KINDS: &[&str] = &["mining", "municipal", "industrial"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_creates_all_tables() {
        let db = Database::new();
        create_schema(&db).unwrap();
        for t in TABLES {
            assert!(db.catalog().has_table(t), "missing {t}");
        }
    }

    #[test]
    fn schema_is_queryable_empty() {
        let db = Database::new();
        create_schema(&db).unwrap();
        let rs = db
            .query(
                "SELECT l.name FROM landfill l JOIN elem_contained e \
                 ON l.name = e.landfill_name",
            )
            .unwrap();
        assert!(rs.is_empty());
    }

    #[test]
    fn double_create_fails() {
        let db = Database::new();
        create_schema(&db).unwrap();
        assert!(create_schema(&db).is_err());
    }

    #[test]
    fn element_inventory_is_consistent() {
        assert!(ELEMENTS.len() >= 30);
        let mut symbols: Vec<&str> = ELEMENTS.iter().map(|(s, _, _)| *s).collect();
        symbols.sort();
        symbols.dedup();
        assert_eq!(symbols.len(), ELEMENTS.len(), "duplicate symbols");
        assert!(ELEMENTS.iter().all(|(_, _, z)| *z > 0 && *z < 119));
    }

    #[test]
    fn cities_have_countries() {
        assert!(CITIES.len() >= 10);
        assert!(CITIES.iter().all(|(_, _, c)| !c.is_empty()));
    }
}
