//! # crosse-smartground
//!
//! The SmartGround use-case substrate for the CroSSE reproduction: the
//! Fig. 3 relational schema, deterministic synthetic data generators (the
//! real EU H2020 databank is not public), persona ontologies, and the
//! SESQL workloads built from the paper's Examples 4.1–4.6.

#![forbid(unsafe_code)]

pub mod datagen;
pub mod ontogen;
pub mod schema;
pub mod workload;

pub use datagen::{generate, landfill_name, populate, SmartGroundConfig};
pub use ontogen::{danger_level, director_ontology, random_kb};
pub use workload::{paper_examples, standard_engine, standard_engine_at, standard_engine_at_with, WorkloadQuery, DANGER_QUERY_SPARQL};
