//! SESQL workloads: the paper's six examples, parameterised, plus the
//! hand-written plain-SQL baselines the benchmark harness compares against.

use crosse_core::sqm::SesqlEngine;
use crosse_rdf::provenance::KnowledgeBase;
use crosse_relational::Database;

use crate::datagen::{generate, populate, SmartGroundConfig};
use crate::ontogen::director_ontology;

/// One workload query: a name, the SESQL text, and (when meaningful) a
/// plain-SQL baseline computing the un-enriched part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadQuery {
    pub name: &'static str,
    pub sesql: String,
    /// The SQL part alone (what a user without CroSSE would run).
    pub baseline_sql: String,
}

/// The six paper examples instantiated against a generated landfill name.
pub fn paper_examples(landfill: &str) -> Vec<WorkloadQuery> {
    vec![
        WorkloadQuery {
            name: "ex4.1-schema-extension",
            sesql: format!(
                "SELECT elem_name, landfill_name FROM elem_contained \
                 WHERE landfill_name = '{landfill}' \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)"
            ),
            baseline_sql: format!(
                "SELECT elem_name, landfill_name FROM elem_contained \
                 WHERE landfill_name = '{landfill}'"
            ),
        },
        WorkloadQuery {
            name: "ex4.2-schema-replacement",
            sesql: "SELECT name, city FROM landfill \
                    ENRICH SCHEMAREPLACEMENT(city, inCountry)"
                .to_string(),
            baseline_sql: "SELECT name, city FROM landfill".to_string(),
        },
        WorkloadQuery {
            name: "ex4.3-bool-extension",
            sesql: format!(
                "SELECT elem_name FROM elem_contained WHERE landfill_name = '{landfill}' \
                 ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)"
            ),
            baseline_sql: format!(
                "SELECT elem_name FROM elem_contained WHERE landfill_name = '{landfill}'"
            ),
        },
        WorkloadQuery {
            name: "ex4.4-bool-replacement",
            sesql: "SELECT name, city FROM landfill \
                    ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)"
                .to_string(),
            baseline_sql: "SELECT name, city FROM landfill".to_string(),
        },
        WorkloadQuery {
            name: "ex4.5-replace-constant",
            sesql: "SELECT landfill_name FROM elem_contained \
                    WHERE ${elem_name = HazardousWaste:cond1} \
                    ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)"
                .to_string(),
            baseline_sql: "SELECT landfill_name FROM elem_contained".to_string(),
        },
        WorkloadQuery {
            name: "ex4.6-replace-variable",
            sesql: "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, e1.elem_name \
                    FROM elem_contained AS e1, elem_contained AS e2 \
                    WHERE e1.landfill_name <> e2.landfill_name AND \
                          ${ e1.elem_name = e2.elem_name :cond1} \
                    ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage)"
                .to_string(),
            baseline_sql: "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, \
                           e1.elem_name \
                           FROM elem_contained AS e1, elem_contained AS e2 \
                           WHERE e1.landfill_name <> e2.landfill_name AND \
                                 e1.elem_name = e2.elem_name"
                .to_string(),
        },
    ]
}

/// The stored SPARQL query of Example 4.5.
pub const DANGER_QUERY_SPARQL: &str =
    "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }";

/// A ready-to-query engine: generated databank + director ontology +
/// registered `dangerQuery`. The standard fixture for examples, tests and
/// benches.
pub fn standard_engine(config: &SmartGroundConfig, user: &str) -> crosse_core::Result<SesqlEngine> {
    let db: Database = generate(config)?;
    let kb = KnowledgeBase::new();
    kb.register_user(user);
    director_ontology(&kb, user)?;
    let engine = SesqlEngine::new(db, kb);
    engine.stored_queries().register("dangerQuery", DANGER_QUERY_SPARQL)?;
    Ok(engine)
}

/// [`standard_engine`] persisted at `dir`: open (or create) a durable
/// engine and seed the databank + ontology only on first contact — an
/// already-populated directory recovers as-is, since re-seeding would
/// duplicate rows and statements. Stored queries live in an in-process
/// registry (not the stores), so they are re-registered on every open.
/// The CLI's `--data-dir` and the crash-recovery harness both build their
/// engines through this.
pub fn standard_engine_at(
    config: &SmartGroundConfig,
    user: &str,
    dir: impl AsRef<std::path::Path>,
) -> crosse_core::Result<SesqlEngine> {
    standard_engine_at_with(config, user, dir, crosse_core::WalOptions::default())
}

/// [`standard_engine_at`] with explicit WAL options (sync policy).
pub fn standard_engine_at_with(
    config: &SmartGroundConfig,
    user: &str,
    dir: impl AsRef<std::path::Path>,
    opts: crosse_core::WalOptions,
) -> crosse_core::Result<SesqlEngine> {
    let engine = SesqlEngine::open_with(dir, opts)?;
    if !engine.database().catalog().has_table("landfill") {
        populate(engine.database(), config)?;
    }
    let kb = engine.knowledge_base();
    if !kb.is_registered(user) {
        kb.register_user(user);
        director_ontology(kb, user)?;
    }
    engine.stored_queries().register("dangerQuery", DANGER_QUERY_SPARQL)?;
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::landfill_name;

    #[test]
    fn all_examples_parse() {
        for q in paper_examples("LF00000") {
            crosse_core::parse_sesql(&q.sesql)
                .unwrap_or_else(|e| panic!("{} failed to parse: {e}", q.name));
            if !q.baseline_sql.is_empty() {
                crosse_relational::sql::parser::parse_statement(&q.baseline_sql)
                    .unwrap_or_else(|e| panic!("{} baseline: {e}", q.name));
            }
        }
    }

    #[test]
    fn all_examples_execute_on_standard_engine() {
        let engine = standard_engine(&SmartGroundConfig::tiny(), "director").unwrap();
        for q in paper_examples(&landfill_name(0)) {
            let r = engine
                .execute("director", &q.sesql)
                .unwrap_or_else(|e| panic!("{} failed: {e}", q.name));
            // 4.5 may legitimately return few rows; others track the base.
            if q.name != "ex4.5-replace-constant" {
                assert!(
                    r.report.result_rows >= r.report.base_rows.min(1),
                    "{}: {} rows from {} base",
                    q.name,
                    r.report.result_rows,
                    r.report.base_rows
                );
            }
        }
    }

    #[test]
    fn enrichment_changes_results_vs_baseline() {
        let engine = standard_engine(&SmartGroundConfig::tiny(), "director").unwrap();
        let q = &paper_examples(&landfill_name(0))[0]; // ex4.1
        let enriched = engine.execute("director", &q.sesql).unwrap();
        let baseline = engine.database().query(&q.baseline_sql).unwrap();
        assert_eq!(
            enriched.rows.schema.len(),
            baseline.schema.len() + 1,
            "extension adds exactly one column"
        );
    }

    #[test]
    fn replace_constant_filters_to_dangerous() {
        let engine = standard_engine(&SmartGroundConfig::tiny(), "director").unwrap();
        let q = paper_examples(&landfill_name(0))
            .into_iter()
            .find(|q| q.name == "ex4.5-replace-constant")
            .unwrap();
        let enriched = engine.execute("director", &q.sesql).unwrap();
        let all = engine.database().query(&q.baseline_sql).unwrap();
        assert!(
            enriched.rows.len() < all.len(),
            "danger filter must restrict the result ({} vs {})",
            enriched.rows.len(),
            all.len()
        );
    }
}
