//! Seeded synthetic data generator for the SmartGround databank.
//!
//! The real SmartGround data (EU H2020 project databank) is not public, so
//! experiments run on a deterministic synthetic population of the Fig. 3
//! schema. All randomness flows from a single seed: the same
//! [`SmartGroundConfig`] always produces byte-identical tables, so
//! experiment runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crosse_relational::{Database, Result, Value};

use crate::schema::{create_schema, CITIES, ELEMENTS, KINDS};

/// Size knobs for the generated databank.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartGroundConfig {
    /// Number of landfill rows.
    pub landfills: usize,
    /// Average number of distinct elements recorded per landfill.
    pub elements_per_landfill: usize,
    /// Number of laboratories.
    pub labs: usize,
    /// Analyses per landfill (each picks a random contained element).
    pub analyses_per_landfill: usize,
    /// RNG seed; same seed ⇒ same databank.
    pub seed: u64,
}

impl Default for SmartGroundConfig {
    fn default() -> Self {
        SmartGroundConfig {
            landfills: 100,
            elements_per_landfill: 6,
            labs: 8,
            analyses_per_landfill: 4,
            seed: 42,
        }
    }
}

impl SmartGroundConfig {
    /// Validate the knobs before generation: a malformed configuration
    /// must surface as a typed [`Error`](crosse_relational::Error) from
    /// [`populate`], never abort the process. Checked invariants:
    ///
    /// * `elements_per_landfill >= 1` when any landfill is generated —
    ///   every landfill row needs at least one contained element;
    /// * `labs >= 1` when `analyses_per_landfill > 0` — analyses reference
    ///   a laboratory by name.
    pub fn validate(&self) -> Result<()> {
        if self.landfills > 0 && self.elements_per_landfill == 0 {
            return Err(crosse_relational::Error::constraint(
                "SmartGround config: elements_per_landfill must be >= 1 \
                 (every landfill records at least one contained element)",
            ));
        }
        if self.analyses_per_landfill > 0 && self.labs == 0 {
            return Err(crosse_relational::Error::constraint(
                "SmartGround config: analyses_per_landfill > 0 requires labs >= 1 \
                 (each analysis references a laboratory)",
            ));
        }
        Ok(())
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        SmartGroundConfig {
            landfills: 10,
            elements_per_landfill: 3,
            labs: 2,
            analyses_per_landfill: 2,
            seed: 7,
        }
    }

    /// Scale the landfill count, keeping densities fixed.
    pub fn with_landfills(mut self, n: usize) -> Self {
        self.landfills = n;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Name of the `i`-th generated landfill.
pub fn landfill_name(i: usize) -> String {
    format!("LF{i:05}")
}

/// Name of the `i`-th generated laboratory.
pub fn lab_name(i: usize) -> String {
    format!("Lab{i:03}")
}

/// Create the schema and populate it. Returns the total row count.
/// A malformed config yields a typed error (see
/// [`SmartGroundConfig::validate`]), never a panic.
pub fn populate(db: &Database, config: &SmartGroundConfig) -> Result<usize> {
    config.validate()?;
    create_schema(db)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut total = 0;

    // element: the fixed inventory.
    {
        let t = db.catalog().get_table("element")?;
        let rows: Vec<Vec<Value>> = ELEMENTS
            .iter()
            .map(|(sym, name, z)| {
                vec![Value::from(*sym), Value::from(*name), Value::Int(*z)]
            })
            .collect();
        total += t.insert_many(rows)?;
    }

    // laboratory
    {
        let t = db.catalog().get_table("laboratory")?;
        let rows: Vec<Vec<Value>> = (0..config.labs)
            .map(|i| {
                let (city, _, _) = CITIES[rng.gen_range(0..CITIES.len())];
                vec![
                    Value::from(lab_name(i)),
                    Value::from(city),
                    Value::from(format!("Director{i:03}")),
                ]
            })
            .collect();
        total += t.insert_many(rows)?;
    }

    // landfill + elem_contained + analysis
    let landfill = db.catalog().get_table("landfill")?;
    let contained = db.catalog().get_table("elem_contained")?;
    let analysis = db.catalog().get_table("analysis")?;
    let mut landfill_rows = Vec::with_capacity(config.landfills);
    let mut contained_rows = Vec::new();
    let mut analysis_rows = Vec::new();
    let mut analysis_id: i64 = 0;

    for i in 0..config.landfills {
        let name = landfill_name(i);
        let (city, region, _) = CITIES[rng.gen_range(0..CITIES.len())];
        let kind = KINDS[rng.gen_range(0..KINDS.len())];
        let opened = rng.gen_range(1950..2015);
        let tons = (rng.gen_range(1_000.0..5_000_000.0f64) * 10.0).round() / 10.0;
        landfill_rows.push(vec![
            Value::from(name.clone()),
            Value::from(city),
            Value::from(region),
            Value::from(kind),
            Value::Int(opened),
            Value::Float(tons),
        ]);

        // Distinct element sample for this landfill: between 1 and
        // 2×average, clamped to the inventory size.
        let k = rng
            .gen_range(1..=config.elements_per_landfill.max(1) * 2)
            .min(ELEMENTS.len());
        let mut picks: Vec<usize> = (0..ELEMENTS.len()).collect();
        for j in 0..k {
            let swap = rng.gen_range(j..picks.len());
            picks.swap(j, swap);
        }
        let picked = &picks[..k];
        for &e in picked {
            let amount = (rng.gen_range(0.1..5_000.0f64) * 100.0).round() / 100.0;
            contained_rows.push(vec![
                Value::from(ELEMENTS[e].0),
                Value::from(name.clone()),
                Value::Float(amount),
            ]);
        }

        for _ in 0..config.analyses_per_landfill {
            let &e = &picked[rng.gen_range(0..picked.len())];
            let lab = rng.gen_range(0..config.labs.max(1));
            analysis_rows.push(vec![
                Value::Int(analysis_id),
                Value::from(name.clone()),
                Value::from(lab_name(lab)),
                Value::from(ELEMENTS[e].0),
                Value::Float((rng.gen_range(0.01..900.0f64) * 100.0).round() / 100.0),
                Value::Int(rng.gen_range(2000..2018)),
                Value::from(format!("Analyst{:03}", rng.gen_range(0..3 * config.labs.max(1)))),
            ]);
            analysis_id += 1;
        }
    }

    total += landfill.insert_many(landfill_rows)?;
    total += contained.insert_many(contained_rows)?;
    total += analysis.insert_many(analysis_rows)?;
    Ok(total)
}

/// Convenience: a freshly populated databank.
pub fn generate(config: &SmartGroundConfig) -> Result<Database> {
    let db = Database::new();
    populate(&db, config)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn populate_fills_all_tables() {
        let db = generate(&SmartGroundConfig::tiny()).unwrap();
        let count = |t: &str| {
            db.query(&format!("SELECT COUNT(*) FROM {t}"))
                .unwrap()
                .rows[0][0]
                .clone()
        };
        assert_eq!(count("landfill"), Value::Int(10));
        assert_eq!(count("element"), Value::Int(ELEMENTS.len() as i64));
        assert_eq!(count("laboratory"), Value::Int(2));
        assert_eq!(count("analysis"), Value::Int(20));
        let Value::Int(n) = count("elem_contained") else {
            panic!("COUNT(*) over elem_contained must produce an Int")
        };
        assert!(n >= 10, "each landfill has at least one element");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SmartGroundConfig::tiny()).unwrap();
        let b = generate(&SmartGroundConfig::tiny()).unwrap();
        let qa = a
            .query("SELECT elem_name, landfill_name, amount FROM elem_contained")
            .unwrap();
        let qb = b
            .query("SELECT elem_name, landfill_name, amount FROM elem_contained")
            .unwrap();
        assert_eq!(qa.rows, qb.rows);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SmartGroundConfig::tiny()).unwrap();
        let b = generate(&SmartGroundConfig::tiny().with_seed(8)).unwrap();
        let qa = a.query("SELECT city FROM landfill").unwrap();
        let qb = b.query("SELECT city FROM landfill").unwrap();
        assert_ne!(qa.rows, qb.rows);
    }

    #[test]
    fn contained_elements_are_unique_per_landfill() {
        let db = generate(&SmartGroundConfig::default()).unwrap();
        let rs = db
            .query(
                "SELECT elem_name, landfill_name, COUNT(*) AS n \
                 FROM elem_contained GROUP BY elem_name, landfill_name \
                 HAVING COUNT(*) > 1",
            )
            .unwrap();
        assert!(rs.is_empty(), "duplicate (element, landfill) pairs");
    }

    #[test]
    fn analyses_reference_contained_elements() {
        let db = generate(&SmartGroundConfig::tiny()).unwrap();
        let rs = db
            .query(
                "SELECT a.id FROM analysis a LEFT JOIN elem_contained e \
                 ON a.landfill_name = e.landfill_name AND a.elem_name = e.elem_name \
                 WHERE e.elem_name IS NULL",
            )
            .unwrap();
        assert!(rs.is_empty(), "analysis of an element not in the landfill");
    }

    #[test]
    fn scaling_config() {
        let db = generate(&SmartGroundConfig::tiny().with_landfills(25)).unwrap();
        let rs = db.query("SELECT COUNT(*) FROM landfill").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(25));
    }
}
