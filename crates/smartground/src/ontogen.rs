//! Ontology generators: the contextual knowledge the paper's personas hold.
//!
//! Three bundles are generated, matching the paper's narrative:
//!
//! * [`danger_ontology`] — the lab director's knowledge: `dangerLevel` per
//!   element, `isA HazardousWaste` for the dangerous ones, a small RDFS
//!   class hierarchy (HeavyMetal ⊑ Metal ⊑ Element).
//! * [`geo_ontology`] — geographic knowledge: `inCountry` for every city
//!   (Examples 4.2 / 4.4).
//! * [`assemblage_ontology`] — domain knowledge about "elements which
//!   typically occur together" (`oreAssemblage`, Example 4.6).
//!
//! [`random_kb`] generates arbitrary-size knowledge bases for the store
//! scaling experiment (E4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crosse_rdf::provenance::KnowledgeBase;
use crosse_rdf::schema as rdfschema;
use crosse_rdf::store::Triple;
use crosse_rdf::term::Term;

use crate::schema::{CITIES, ELEMENTS};

fn iri(s: &str) -> Term {
    Term::iri(s)
}

/// Danger level (1–5) assigned to an element symbol. Deterministic domain
/// table: the genuinely toxic heavy metals score high.
pub fn danger_level(symbol: &str) -> i64 {
    match symbol {
        "Hg" | "Cd" | "Tl" | "As" | "U" => 5,
        "Pb" | "Cr" | "Sb" | "Se" | "Th" => 4,
        "Ni" | "Co" | "Zn" | "Cu" | "Ba" => 3,
        "Mo" | "V" | "Mn" | "Sn" | "Bi" => 2,
        _ => 1,
    }
}

/// Danger threshold above which an element is `isA HazardousWaste`.
pub const HAZARD_THRESHOLD: i64 = 4;

/// The triples of the director's danger ontology.
pub fn danger_triples() -> Vec<Triple> {
    let mut out = Vec::new();
    for (sym, _, _) in ELEMENTS {
        let lvl = danger_level(sym);
        out.push(Triple::new(
            iri(sym),
            iri("dangerLevel"),
            Term::lit(lvl.to_string()),
        ));
        if lvl >= HAZARD_THRESHOLD {
            out.push(Triple::new(iri(sym), iri("isA"), iri("HazardousWaste")));
        }
    }
    // Class hierarchy exercised by the RDFS reasoner.
    out.push(Triple::new(
        iri("HeavyMetal"),
        rdfschema::rdfs_subclass_of(),
        iri("Metal"),
    ));
    out.push(Triple::new(
        iri("Metal"),
        rdfschema::rdfs_subclass_of(),
        iri("Element"),
    ));
    for sym in ["Hg", "Pb", "Cd", "Tl", "Bi"] {
        out.push(Triple::new(iri(sym), rdfschema::rdf_type(), iri("HeavyMetal")));
    }
    out
}

/// Assert the danger ontology as `user`'s personal knowledge.
pub fn danger_ontology(kb: &KnowledgeBase, user: &str) -> crosse_rdf::Result<usize> {
    let triples = danger_triples();
    for t in &triples {
        kb.assert_statement(user, t)?;
    }
    Ok(triples.len())
}

/// The geographic ontology: `<city> inCountry <country>` for every city.
pub fn geo_triples() -> Vec<Triple> {
    CITIES
        .iter()
        .map(|(city, _, country)| Triple::new(iri(city), iri("inCountry"), iri(country)))
        .collect()
}

pub fn geo_ontology(kb: &KnowledgeBase, user: &str) -> crosse_rdf::Result<usize> {
    let triples = geo_triples();
    for t in &triples {
        kb.assert_statement(user, t)?;
    }
    Ok(triples.len())
}

/// Ore-assemblage knowledge: geologically motivated co-occurrence pairs.
pub fn assemblage_triples() -> Vec<Triple> {
    // Classic parageneses: cinnabar with arsenic/antimony sulfides,
    // galena–sphalerite, chalcopyrite with pyrite partners, rare earths.
    const PAIRS: &[(&str, &str)] = &[
        ("Hg", "As"),
        ("Hg", "Sb"),
        ("Pb", "Zn"),
        ("Pb", "Ag"),
        ("Zn", "Cd"),
        ("Cu", "Au"),
        ("Cu", "Mo"),
        ("Ni", "Co"),
        ("Sn", "W"),
        ("Nb", "Ta_placeholder"),
        ("La", "Ce"),
        ("Ce", "Nd"),
        ("Pt", "Pd"),
        ("U", "Th"),
        ("Ga", "Al"),
        ("In", "Zn"),
        ("Se", "Te"),
        ("Bi", "Pb"),
    ];
    PAIRS
        .iter()
        .map(|(a, b)| Triple::new(iri(a), iri("oreAssemblage"), iri(b)))
        .collect()
}

pub fn assemblage_ontology(kb: &KnowledgeBase, user: &str) -> crosse_rdf::Result<usize> {
    let triples = assemblage_triples();
    for t in &triples {
        kb.assert_statement(user, t)?;
    }
    Ok(triples.len())
}

/// Everything a "director" persona knows (danger + geo + assemblage).
pub fn director_ontology(kb: &KnowledgeBase, user: &str) -> crosse_rdf::Result<usize> {
    Ok(danger_ontology(kb, user)? + geo_ontology(kb, user)? + assemblage_ontology(kb, user)?)
}

/// A synthetic knowledge base of `n` triples over `subjects` subjects and
/// `properties` properties — the E4 scaling workload. Deterministic in the
/// seed; triples may repeat subjects but are pairwise distinct.
///
/// An impossible request — `n` larger than the number of distinct triples
/// the vocabulary can express — is a typed error. (It used to spin the
/// rejection-sampling loop forever, which in a server process is as fatal
/// as an abort.)
pub fn random_kb(
    n: usize,
    subjects: usize,
    properties: usize,
    seed: u64,
) -> crosse_rdf::Result<Vec<Triple>> {
    let subjects = subjects.max(1);
    let properties = properties.max(1);
    let space = subjects
        .saturating_mul(properties)
        .saturating_mul(subjects.saturating_mul(4));
    if n > space {
        return Err(crosse_rdf::Error::store(format!(
            "random_kb: cannot generate {n} distinct triples from a vocabulary of \
             {subjects} subject(s) × {properties} propert(y/ies) × {} object(s) \
             ({space} possible triples)",
            subjects * 4
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    while out.len() < n {
        let s = rng.gen_range(0..subjects);
        let p = rng.gen_range(0..properties);
        let o = rng.gen_range(0..subjects * 4);
        if seen.insert((s, p, o)) {
            out.push(Triple::new(
                iri(&format!("node{s}")),
                iri(&format!("prop{p}")),
                Term::lit(format!("val{o}")),
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn danger_levels_cover_inventory() {
        for (sym, _, _) in ELEMENTS {
            let lvl = danger_level(sym);
            assert!((1..=5).contains(&lvl), "{sym} has level {lvl}");
        }
        assert_eq!(danger_level("Hg"), 5);
        assert_eq!(danger_level("Fe"), 1);
    }

    #[test]
    fn danger_triples_include_hazard_marks() {
        let ts = danger_triples();
        let hazards: Vec<_> = ts
            .iter()
            .filter(|t| t.predicate == iri("isA"))
            .collect();
        assert!(hazards.len() >= 8, "ten elements are level >= 4");
        assert!(hazards
            .iter()
            .all(|t| t.object == iri("HazardousWaste")));
    }

    #[test]
    fn ontologies_load_into_kb() {
        let kb = KnowledgeBase::new();
        kb.register_user("director");
        let n = director_ontology(&kb, "director").unwrap();
        assert_eq!(kb.personal_size("director"), n);
        // dangerLevel of Hg queryable in the user's context
        let sols = kb
            .query_as("director", "SELECT ?d WHERE { <Hg> <dangerLevel> ?d }")
            .unwrap();
        assert_eq!(sols.rows[0][0].as_ref().unwrap().lexical_form(), "5");
    }

    #[test]
    fn geo_covers_all_cities() {
        assert_eq!(geo_triples().len(), CITIES.len());
    }

    #[test]
    fn assemblage_subjects_are_elements() {
        let symbols: std::collections::HashSet<&str> =
            ELEMENTS.iter().map(|(s, _, _)| *s).collect();
        for t in assemblage_triples() {
            let Term::Iri(s) = &t.subject else {
                panic!("assemblage subject must be an IRI, got {:?}", t.subject)
            };
            assert!(symbols.contains(s.as_str()), "{s} not in inventory");
        }
    }

    #[test]
    fn random_kb_is_deterministic_and_exact_size() {
        let a = random_kb(500, 50, 10, 1).unwrap();
        let b = random_kb(500, 50, 10, 1).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let c = random_kb(500, 50, 10, 2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn random_kb_triples_are_distinct() {
        let ts = random_kb(1000, 20, 5, 3).unwrap();
        let set: std::collections::HashSet<_> = ts.iter().collect();
        assert_eq!(set.len(), ts.len());
    }

    #[test]
    fn rdfs_hierarchy_materialises() {
        let kb = KnowledgeBase::new();
        kb.register_user("director");
        danger_ontology(&kb, "director").unwrap();
        // Move the hierarchy triples into the common graph for inference.
        kb.load_common(&danger_triples());
        let n = kb.materialize_inferences();
        assert!(n > 0);
        let sols = kb
            .query_as("director", "SELECT ?x WHERE { ?x rdf:type <Metal> }")
            .unwrap();
        assert!(sols.len() >= 5, "heavy metals inferred as metals");
    }
}
