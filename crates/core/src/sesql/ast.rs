//! SESQL abstract syntax (paper Fig. 5).
//!
//! A SESQL query is a SQL SELECT followed by `ENRICH` and one or more
//! enrichment clauses. Four clauses reshape the SELECT's output schema,
//! two rewrite tagged WHERE-clause conditions.

use std::collections::HashMap;
use std::fmt;

use crosse_relational::sql::ast::{Expr, Select};
use crosse_relational::sql::parser::ParamSlot;

/// One enrichment clause.
#[derive(Debug, Clone, PartialEq)]
pub enum Enrichment {
    /// `SCHEMAEXTENSION(attr, prop)` — add a column with the objects of
    /// `prop` for each value of `attr` (paper Sec. IV-A.1).
    SchemaExtension { attr: String, property: String },
    /// `SCHEMAREPLACEMENT(attr, prop)` — replace `attr` with the mapped
    /// objects (Sec. IV-A.2).
    SchemaReplacement { attr: String, property: String },
    /// `BOOLSCHEMAEXTENSION(attr, prop, concept)` — add a boolean column:
    /// is `attr` related to `concept` through `prop`? (Sec. IV-A.3).
    BoolSchemaExtension { attr: String, property: String, concept: String },
    /// `BOOLSCHEMAREPLACEMENT(attr, prop, concept)` — same, replacing
    /// `attr` (Sec. IV-A.4).
    BoolSchemaReplacement { attr: String, property: String, concept: String },
    /// `REPLACECONSTANT(cond, const, prop)` — in tagged condition `cond`,
    /// replace the ontology constant by the value set delivered by `prop`
    /// (a property or a stored SPARQL query) (Sec. IV-A.5).
    ReplaceConstant { cond: String, constant: String, property: String },
    /// `REPLACEVARIABLE(cond, attr, prop)` — in tagged condition `cond`,
    /// the column `attr` also matches through values related to it by
    /// `prop` (Sec. IV-A.6).
    ReplaceVariable { cond: String, attr: String, property: String },
}

impl Enrichment {
    /// The clause keyword as written in the grammar.
    pub fn keyword(&self) -> &'static str {
        match self {
            Enrichment::SchemaExtension { .. } => "SCHEMAEXTENSION",
            Enrichment::SchemaReplacement { .. } => "SCHEMAREPLACEMENT",
            Enrichment::BoolSchemaExtension { .. } => "BOOLSCHEMAEXTENSION",
            Enrichment::BoolSchemaReplacement { .. } => "BOOLSCHEMAREPLACEMENT",
            Enrichment::ReplaceConstant { .. } => "REPLACECONSTANT",
            Enrichment::ReplaceVariable { .. } => "REPLACEVARIABLE",
        }
    }

    /// Whether this clause affects the WHERE clause (vs the result schema).
    pub fn is_where_enrichment(&self) -> bool {
        matches!(
            self,
            Enrichment::ReplaceConstant { .. } | Enrichment::ReplaceVariable { .. }
        )
    }

    /// Condition id referenced, if any.
    pub fn condition_id(&self) -> Option<&str> {
        match self {
            Enrichment::ReplaceConstant { cond, .. }
            | Enrichment::ReplaceVariable { cond, .. } => Some(cond),
            _ => None,
        }
    }
}

impl fmt::Display for Enrichment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Enrichment::SchemaExtension { attr, property } => {
                write!(f, "SCHEMAEXTENSION({attr}, {property})")
            }
            Enrichment::SchemaReplacement { attr, property } => {
                write!(f, "SCHEMAREPLACEMENT({attr}, {property})")
            }
            Enrichment::BoolSchemaExtension { attr, property, concept } => {
                write!(f, "BOOLSCHEMAEXTENSION({attr}, {property}, {concept})")
            }
            Enrichment::BoolSchemaReplacement { attr, property, concept } => {
                write!(f, "BOOLSCHEMAREPLACEMENT({attr}, {property}, {concept})")
            }
            Enrichment::ReplaceConstant { cond, constant, property } => {
                write!(f, "REPLACECONSTANT({cond}, {constant}, {property})")
            }
            Enrichment::ReplaceVariable { cond, attr, property } => {
                write!(f, "REPLACEVARIABLE({cond}, {attr}, {property})")
            }
        }
    }
}

/// A fully parsed SESQL query: the cleaned SQL part, the tagged conditions
/// recovered by the scanner, and the enrichment list.
#[derive(Debug, Clone, PartialEq)]
pub struct SesqlQuery {
    /// The SELECT with `${...:id}` markers stripped (paper Remark 4.1:
    /// "the query is then 'cleaned' ... so that a syntactically correct SQL
    /// query can be processed").
    pub select: Select,
    /// Cleaned SQL text.
    pub clean_sql: String,
    /// Tagged conditions by id, as parsed expressions.
    pub conditions: HashMap<String, Expr>,
    /// Enrichment clauses in source order.
    pub enrichments: Vec<Enrichment>,
    /// Parameter placeholder slots (`$name` / `?`) of the SQL part, in
    /// slot-index order. Condition expressions share these slots (their
    /// text is embedded in the cleaned SQL).
    pub params: Vec<ParamSlot>,
}

impl SesqlQuery {
    /// Whether any enrichment clause is present (a bare SQL query is valid
    /// SESQL).
    pub fn is_enriched(&self) -> bool {
        !self.enrichments.is_empty()
    }

    /// Whether the query has parameter placeholders (and therefore needs
    /// binding before execution).
    pub fn has_params(&self) -> bool {
        !self.params.is_empty()
    }
}

impl fmt::Display for SesqlQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.select)?;
        if !self.enrichments.is_empty() {
            write!(f, " ENRICH")?;
            for e in &self.enrichments {
                write!(f, " {e}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_and_kinds() {
        let e = Enrichment::SchemaExtension { attr: "a".into(), property: "p".into() };
        assert_eq!(e.keyword(), "SCHEMAEXTENSION");
        assert!(!e.is_where_enrichment());
        assert_eq!(e.condition_id(), None);

        let e = Enrichment::ReplaceConstant {
            cond: "cond1".into(),
            constant: "HazardousWaste".into(),
            property: "dangerQuery".into(),
        };
        assert!(e.is_where_enrichment());
        assert_eq!(e.condition_id(), Some("cond1"));
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Enrichment::BoolSchemaExtension {
            attr: "elem_name".into(),
            property: "isA".into(),
            concept: "HazardousWaste".into(),
        };
        assert_eq!(
            e.to_string(),
            "BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)"
        );
    }
}
