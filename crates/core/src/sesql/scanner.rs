// srclint: allow(R002): char lookups use byte offsets produced by the same scan, always in bounds
//! The dedicated SESQL scanner (paper Remark 4.1).
//!
//! Two pre-parsing passes run over the raw query text:
//!
//! 1. [`split_enrich`] separates the SQL part from the enrichment
//!    specification at the top-level `ENRICH` keyword ("the clause ENRICH
//!    plays the role of the separator between the two query components").
//! 2. [`extract_tags`] recognises the `${ <condition> : <id> }` markers —
//!    "a syntax construct which uses characters which wouldn't be accepted
//!    at that point by standard SQL" — records each tagged condition, and
//!    *cleans* the query by substituting the bare condition text back, "so
//!    that a syntactically correct SQL query can be processed".
//!
//! Both passes are quote-aware: `'...'` string literals (with `''`
//! escapes) and `"..."` quoted identifiers are never scanned for markers.

use crate::error::{Error, Result};

/// Split a SESQL text at the top-level `ENRICH` keyword.
///
/// Returns the SQL part and, if present, the enrichment specification text.
pub fn split_enrich(text: &str) -> Result<(String, Option<String>)> {
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => i = skip_string(text, i)?,
            b'"' => i = skip_quoted_ident(text, i)?,
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                if text[start..i].eq_ignore_ascii_case("enrich") {
                    let sql = text[..start].trim().to_string();
                    let spec = text[i..].trim().to_string();
                    if sql.is_empty() {
                        return Err(Error::sesql("empty SQL part before ENRICH", start));
                    }
                    return Ok((sql, Some(spec)));
                }
            }
            _ => i += 1,
        }
    }
    Ok((text.trim().to_string(), None))
}

/// A tagged condition recovered from the raw SQL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaggedCondition {
    pub id: String,
    /// Raw condition text between `${` and `:id}`.
    pub text: String,
    /// Byte offset of the `${` marker in the original input.
    pub offset: usize,
}

/// Extract every `${ cond : id }` marker; returns the cleaned SQL and the
/// recovered conditions in source order.
pub fn extract_tags(sql: &str) -> Result<(String, Vec<TaggedCondition>)> {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut clean = String::with_capacity(sql.len());
    let mut tags = Vec::new();

    while i < bytes.len() {
        match bytes[i] {
            b'\'' => {
                let end = skip_string(sql, i)?;
                clean.push_str(&sql[i..end]);
                i = end;
            }
            b'"' => {
                let end = skip_quoted_ident(sql, i)?;
                clean.push_str(&sql[i..end]);
                i = end;
            }
            b'$' if bytes.get(i + 1) == Some(&b'{') => {
                let marker_start = i;
                i += 2;
                let content_start = i;
                // Find the closing '}' (quote-aware; nesting not allowed).
                let mut last_colon: Option<usize> = None;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::sesql("unterminated `${` marker", marker_start));
                    }
                    match bytes[i] {
                        b'\'' => i = skip_string(sql, i)?,
                        b'"' => i = skip_quoted_ident(sql, i)?,
                        b'$' if bytes.get(i + 1) == Some(&b'{') => {
                            return Err(Error::sesql(
                                "nested `${` markers are not allowed",
                                i,
                            ));
                        }
                        b':' => {
                            last_colon = Some(i);
                            i += 1;
                        }
                        b'}' => break,
                        _ => i += 1,
                    }
                }
                let content_end = i;
                i += 1; // consume '}'
                let Some(colon) = last_colon else {
                    return Err(Error::sesql(
                        "`${...}` marker is missing its `:id`",
                        marker_start,
                    ));
                };
                let cond_text = sql[content_start..colon].trim().to_string();
                let id = sql[colon + 1..content_end].trim().to_string();
                if id.is_empty()
                    || !id
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_')
                {
                    return Err(Error::sesql(
                        format!("invalid condition id `{id}`"),
                        colon,
                    ));
                }
                if cond_text.is_empty() {
                    return Err(Error::sesql("empty tagged condition", marker_start));
                }
                if tags.iter().any(|t: &TaggedCondition| t.id == id) {
                    return Err(Error::sesql(
                        format!("duplicate condition id `{id}`"),
                        colon,
                    ));
                }
                // The cleaned query keeps the condition, parenthesised so
                // operator precedence is preserved regardless of context.
                clean.push('(');
                clean.push_str(&cond_text);
                clean.push(')');
                tags.push(TaggedCondition { id, text: cond_text, offset: marker_start });
            }
            c => {
                clean.push(c as char);
                // multi-byte chars: copy the full char
                if !c.is_ascii() {
                    let ch = sql[i..].chars().next().expect("in bounds");
                    clean.pop();
                    clean.push(ch);
                    i += ch.len_utf8();
                    continue;
                }
                i += 1;
            }
        }
    }
    Ok((clean, tags))
}

/// Skip a `'...'` literal starting at `start`; returns the index after the
/// closing quote.
fn skip_string(s: &str, start: usize) -> Result<usize> {
    let bytes = s.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                i += 2;
            } else {
                return Ok(i + 1);
            }
        } else {
            i += 1;
        }
    }
    Err(Error::sesql("unterminated string literal", start))
}

/// Skip a `"..."` identifier starting at `start`.
fn skip_quoted_ident(s: &str, start: usize) -> Result<usize> {
    let bytes = s.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if bytes.get(i + 1) == Some(&b'"') {
                i += 2;
            } else {
                return Ok(i + 1);
            }
        } else {
            i += 1;
        }
    }
    Err(Error::sesql("unterminated quoted identifier", start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_at_enrich() {
        let (sql, spec) = split_enrich(
            "SELECT a FROM t WHERE x = 1 ENRICH SCHEMAEXTENSION(a, p)",
        )
        .unwrap();
        assert_eq!(sql, "SELECT a FROM t WHERE x = 1");
        assert_eq!(spec.unwrap(), "SCHEMAEXTENSION(a, p)");
    }

    #[test]
    fn no_enrich_is_plain_sql() {
        let (sql, spec) = split_enrich("SELECT a FROM t").unwrap();
        assert_eq!(sql, "SELECT a FROM t");
        assert!(spec.is_none());
    }

    #[test]
    fn enrich_inside_string_is_not_a_separator() {
        let (sql, spec) =
            split_enrich("SELECT a FROM t WHERE x = 'ENRICH market'").unwrap();
        assert!(spec.is_none());
        assert!(sql.contains("'ENRICH market'"));
    }

    #[test]
    fn enrich_as_identifier_substring_is_not_matched() {
        let (_, spec) = split_enrich("SELECT enrichment FROM t").unwrap();
        assert!(spec.is_none());
        let (_, spec) = split_enrich("SELECT t.enrich2 FROM t").unwrap();
        assert!(spec.is_none());
    }

    #[test]
    fn case_insensitive_enrich() {
        let (_, spec) = split_enrich("SELECT a FROM t enrich X(a,b)").unwrap();
        assert_eq!(spec.unwrap(), "X(a,b)");
    }

    #[test]
    fn empty_sql_part_rejected() {
        assert!(split_enrich("ENRICH SCHEMAEXTENSION(a,b)").is_err());
    }

    #[test]
    fn extract_single_tag_paper_example_45() {
        let (clean, tags) = extract_tags(
            "SELECT landfill_name FROM elem_contained \
             WHERE ${elem_name = HazardousWaste:cond1}",
        )
        .unwrap();
        assert_eq!(
            clean,
            "SELECT landfill_name FROM elem_contained \
             WHERE (elem_name = HazardousWaste)"
        );
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].id, "cond1");
        assert_eq!(tags[0].text, "elem_name = HazardousWaste");
    }

    #[test]
    fn extract_tag_amid_conjunction_paper_example_46() {
        let (clean, tags) = extract_tags(
            "SELECT e1.landfill_name FROM elem_contained AS e1, elem_contained AS e2 \
             WHERE ${ e1.elem_name <> e2.elem_name :cond1} AND e1.elem_name = e2.elem_name",
        )
        .unwrap();
        assert!(clean.contains("(e1.elem_name <> e2.elem_name) AND"));
        assert_eq!(tags[0].text, "e1.elem_name <> e2.elem_name");
    }

    #[test]
    fn multiple_tags() {
        let (clean, tags) =
            extract_tags("WHERE ${a = 1:c1} AND ${b = 2:c2}").unwrap();
        assert_eq!(tags.len(), 2);
        assert_eq!(tags[0].id, "c1");
        assert_eq!(tags[1].id, "c2");
        assert_eq!(clean, "WHERE (a = 1) AND (b = 2)");
    }

    #[test]
    fn duplicate_ids_rejected() {
        assert!(extract_tags("${a = 1:c} AND ${b = 2:c}").is_err());
    }

    #[test]
    fn colon_inside_string_not_id_separator() {
        let (clean, tags) = extract_tags("${a = 'x:y':c1}").unwrap();
        assert_eq!(tags[0].text, "a = 'x:y'");
        assert_eq!(clean, "(a = 'x:y')");
    }

    #[test]
    fn dollar_without_brace_passes_through() {
        let (clean, tags) = extract_tags("SELECT a FROM t WHERE b = 1").unwrap();
        assert!(tags.is_empty());
        assert_eq!(clean, "SELECT a FROM t WHERE b = 1");
    }

    #[test]
    fn errors_for_malformed_markers() {
        assert!(extract_tags("${a = 1").is_err()); // unterminated
        assert!(extract_tags("${a = 1}").is_err()); // missing :id
        assert!(extract_tags("${:c1}").is_err()); // empty condition
        assert!(extract_tags("${a=1: }").is_err()); // empty id
        assert!(extract_tags("${a = ${b:c2}:c1}").is_err()); // nested
        assert!(extract_tags("${a = 1:bad id}").is_err()); // invalid id chars
    }

    #[test]
    fn markers_inside_strings_ignored() {
        let (clean, tags) = extract_tags("SELECT '${not a tag:x}' FROM t").unwrap();
        assert!(tags.is_empty());
        assert_eq!(clean, "SELECT '${not a tag:x}' FROM t");
    }

    #[test]
    fn utf8_passthrough() {
        let (clean, _) = extract_tags("SELECT 'Torinò' FROM t").unwrap();
        assert_eq!(clean, "SELECT 'Torinò' FROM t");
    }
}
