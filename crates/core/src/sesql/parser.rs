// srclint: allow(R002): the tagging scanner guarantees every named condition occurs in the cleaned SQL it produced
//! SESQL parser: ties the scanner, the SQL parser, and the enrichment
//! grammar of Fig. 5 together (the paper's Semantic Query Parser, SQP).

use std::collections::HashMap;

use crosse_relational::sql::ast::{Expr, Statement};
use crosse_relational::sql::parser::{parse_expr_with_params, parse_statement_with_params};

use crate::error::{Error, Result};

use super::ast::{Enrichment, SesqlQuery};
use super::scanner::{extract_tags, split_enrich};

/// Parse a full SESQL query text.
///
/// Parameter placeholders (`$name`, positional `?`) are allowed anywhere
/// in the SQL part; inside `${...:id}` tagged conditions only named
/// placeholders are accepted (a positional slot's index would be
/// ambiguous between the cleaned query and the standalone condition).
pub fn parse_sesql(text: &str) -> Result<SesqlQuery> {
    let (sql_part, spec) = split_enrich(text)?;
    let (clean_sql, tags) = extract_tags(&sql_part)?;

    let (stmt, params) = parse_statement_with_params(&clean_sql)?;
    let Statement::Select(select) = stmt else {
        return Err(Error::sesql("SESQL queries must start with SELECT", 0));
    };

    let mut conditions = HashMap::new();
    for tag in &tags {
        let (expr, tag_params) = parse_expr_with_params(&tag.text).map_err(|e| {
            Error::sesql(
                format!("tagged condition `{}` is not a valid expression: {e}", tag.id),
                tag.offset,
            )
        })?;
        if tag_params.iter().any(|s| s.name.is_none()) {
            return Err(Error::sesql(
                format!(
                    "positional `?` parameters are not allowed inside the tagged \
                     condition `{}`; use a named `$param`",
                    tag.id
                ),
                tag.offset,
            ));
        }
        // The condition text is embedded in the cleaned SQL, so every
        // named placeholder already has a global slot: remap the locally
        // assigned indices onto it.
        let expr = expr.rewrite(&mut |node| match node {
            Expr::Param { name: Some(n), .. } => {
                let index = params
                    .iter()
                    .position(|s| s.name.as_deref() == Some(n.as_str()))
                    .expect("condition text is part of the cleaned SQL");
                Expr::Param { index, name: Some(n) }
            }
            other => other,
        });
        conditions.insert(tag.id.clone(), expr);
    }

    let enrichments = match spec {
        None => Vec::new(),
        Some(s) => parse_enrichments(&s)?,
    };

    // Validate: WHERE-enrichments must reference recorded condition ids.
    for e in &enrichments {
        if let Some(id) = e.condition_id() {
            if !conditions.contains_key(id) {
                return Err(Error::sesql(
                    format!(
                        "{} references condition `{id}`, but no `${{...:{id}}}` marker exists",
                        e.keyword()
                    ),
                    0,
                ));
            }
        }
    }

    Ok(SesqlQuery { select: *select, clean_sql, conditions, enrichments, params })
}

/// Parse the enrichment specification (everything after `ENRICH`).
///
/// Grammar (Fig. 5): one or more clauses; each clause is a keyword with a
/// parenthesised comma-separated argument list. Keywords are matched
/// case-insensitively, with or without separating spaces/underscores
/// (the paper itself writes both `SCHEMA EXTENSION` and `SCHEMAEXTENSION`).
pub fn parse_enrichments(spec: &str) -> Result<Vec<Enrichment>> {
    let mut out = Vec::new();
    let mut rest = spec.trim();
    if rest.is_empty() {
        return Err(Error::sesql("ENRICH requires at least one clause", 0));
    }
    while !rest.is_empty() {
        let (clause, remainder) = parse_one_clause(rest)?;
        out.push(clause);
        rest = remainder.trim_start_matches([',', ';', ' ', '\n', '\t', '\r']);
    }
    Ok(out)
}

fn parse_one_clause(s: &str) -> Result<(Enrichment, &str)> {
    let open = s
        .find('(')
        .ok_or_else(|| Error::sesql("expected `(` after enrichment keyword", 0))?;
    let keyword: String = s[..open]
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_uppercase();

    // Find matching close paren (args contain no parens, but may contain
    // quoted strings).
    let bytes = s.as_bytes();
    let mut i = open + 1;
    let mut close = None;
    while i < bytes.len() {
        match bytes[i] {
            b'\'' => {
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    i += 1;
                }
                i += 1;
            }
            b')' => {
                close = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    let close = close.ok_or_else(|| Error::sesql("unterminated argument list", open))?;
    let args: Vec<String> = s[open + 1..close]
        .split(',')
        .map(|a| a.trim().trim_matches('\'').to_string())
        .filter(|a| !a.is_empty())
        .collect();

    let expect = |n: usize| -> Result<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(Error::sesql(
                format!("{keyword} expects {n} arguments, got {}", args.len()),
                open,
            ))
        }
    };

    let clause = match keyword.as_str() {
        "SCHEMAEXTENSION" => {
            expect(2)?;
            Enrichment::SchemaExtension { attr: args[0].clone(), property: args[1].clone() }
        }
        "SCHEMAREPLACEMENT" => {
            expect(2)?;
            Enrichment::SchemaReplacement { attr: args[0].clone(), property: args[1].clone() }
        }
        "BOOLSCHEMAEXTENSION" => {
            expect(3)?;
            Enrichment::BoolSchemaExtension {
                attr: args[0].clone(),
                property: args[1].clone(),
                concept: args[2].clone(),
            }
        }
        "BOOLSCHEMAREPLACEMENT" => {
            expect(3)?;
            Enrichment::BoolSchemaReplacement {
                attr: args[0].clone(),
                property: args[1].clone(),
                concept: args[2].clone(),
            }
        }
        "REPLACECONSTANT" => {
            expect(3)?;
            Enrichment::ReplaceConstant {
                cond: args[0].clone(),
                constant: args[1].clone(),
                property: args[2].clone(),
            }
        }
        "REPLACEVARIABLE" => {
            expect(3)?;
            Enrichment::ReplaceVariable {
                cond: args[0].clone(),
                attr: args[1].clone(),
                property: args[2].clone(),
            }
        }
        other => {
            return Err(Error::sesql(
                format!("unknown enrichment clause `{other}`"),
                0,
            ))
        }
    };
    Ok((clause, &s[close + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_41() {
        let q = parse_sesql(
            "SELECT elem_name, landfill_name \
             FROM elem_contained \
             WHERE landfill_name = 'a' \
             ENRICH \
             SCHEMAEXTENSION( elem_name, dangerLevel)",
        )
        .unwrap();
        assert_eq!(q.enrichments.len(), 1);
        assert_eq!(
            q.enrichments[0],
            Enrichment::SchemaExtension {
                attr: "elem_name".into(),
                property: "dangerLevel".into()
            }
        );
        assert!(q.conditions.is_empty());
        assert!(q.is_enriched());
    }

    #[test]
    fn paper_example_42_replacement() {
        let q = parse_sesql(
            "SELECT name, city FROM landfill ENRICH SCHEMAREPLACEMENT(city, inCountry)",
        )
        .unwrap();
        assert_eq!(
            q.enrichments[0],
            Enrichment::SchemaReplacement { attr: "city".into(), property: "inCountry".into() }
        );
    }

    #[test]
    fn paper_example_43_bool_extension() {
        let q = parse_sesql(
            "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
             ENRICH BOOLSCHEMAEXTENSION( elem_name, isA, HazardousWaste)",
        )
        .unwrap();
        assert_eq!(
            q.enrichments[0],
            Enrichment::BoolSchemaExtension {
                attr: "elem_name".into(),
                property: "isA".into(),
                concept: "HazardousWaste".into()
            }
        );
    }

    #[test]
    fn paper_example_44_bool_replacement() {
        let q = parse_sesql(
            "SELECT name, city FROM landfill \
             ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)",
        )
        .unwrap();
        assert_eq!(
            q.enrichments[0],
            Enrichment::BoolSchemaReplacement {
                attr: "city".into(),
                property: "inCountry".into(),
                concept: "Italy".into()
            }
        );
    }

    #[test]
    fn paper_example_45_replace_constant() {
        let q = parse_sesql(
            "SELECT landfill_name FROM elem_contained \
             WHERE ${elem_name = HazardousWaste:cond1} \
             ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)",
        )
        .unwrap();
        assert_eq!(
            q.enrichments[0],
            Enrichment::ReplaceConstant {
                cond: "cond1".into(),
                constant: "HazardousWaste".into(),
                property: "dangerQuery".into()
            }
        );
        assert!(q.conditions.contains_key("cond1"));
        assert!(q.clean_sql.contains("(elem_name = HazardousWaste)"));
    }

    #[test]
    fn paper_example_46_replace_variable() {
        let q = parse_sesql(
            "SELECT Elecond1.landfill_name AS l_name1, \
                    Elecond2.landfill_name AS l_name2, \
                    Elecond1.elem_name \
             FROM elem_contained AS Elecond1, elem_contained AS Elecond2 \
             WHERE Elecond1.elem_name <> Elecond2.elem_name AND \
                   ${ Elecond1.elem_name = Elecond2.elem_name :cond1} \
             ENRICH REPLACEVARIABLE(cond1, Elecond2.elem_name, oreAssemblage)",
        )
        .unwrap();
        assert_eq!(
            q.enrichments[0],
            Enrichment::ReplaceVariable {
                cond: "cond1".into(),
                attr: "Elecond2.elem_name".into(),
                property: "oreAssemblage".into()
            }
        );
    }

    #[test]
    fn multiple_clauses() {
        let q = parse_sesql(
            "SELECT a, b FROM t ENRICH \
             SCHEMAEXTENSION(a, p) \
             SCHEMAREPLACEMENT(b, q), BOOLSCHEMAEXTENSION(a, r, C)",
        )
        .unwrap();
        assert_eq!(q.enrichments.len(), 3);
    }

    #[test]
    fn spaced_and_underscored_keywords() {
        let q = parse_sesql("SELECT a FROM t ENRICH SCHEMA EXTENSION(a, p)").unwrap();
        assert!(matches!(q.enrichments[0], Enrichment::SchemaExtension { .. }));
        let q = parse_sesql("SELECT a FROM t ENRICH schema_extension(a, p)").unwrap();
        assert!(matches!(q.enrichments[0], Enrichment::SchemaExtension { .. }));
    }

    #[test]
    fn plain_sql_is_valid_sesql() {
        let q = parse_sesql("SELECT a FROM t WHERE a > 1").unwrap();
        assert!(!q.is_enriched());
        assert!(q.conditions.is_empty());
    }

    #[test]
    fn dangling_condition_reference_rejected() {
        let err = parse_sesql(
            "SELECT a FROM t ENRICH REPLACECONSTANT(cond9, X, p)",
        )
        .unwrap_err();
        assert!(err.to_string().contains("cond9"), "{err}");
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(parse_sesql("SELECT a FROM t ENRICH SCHEMAEXTENSION(a)").is_err());
        assert!(parse_sesql("SELECT a FROM t ENRICH SCHEMAEXTENSION(a, b, c)").is_err());
        assert!(
            parse_sesql("SELECT a FROM t ENRICH BOOLSCHEMAEXTENSION(a, b)").is_err()
        );
    }

    #[test]
    fn unknown_clause_rejected() {
        assert!(parse_sesql("SELECT a FROM t ENRICH FROBNICATE(a, b)").is_err());
    }

    #[test]
    fn empty_enrich_rejected() {
        assert!(parse_sesql("SELECT a FROM t ENRICH").is_err());
    }

    #[test]
    fn non_select_rejected() {
        assert!(parse_sesql("DELETE FROM t ENRICH SCHEMAEXTENSION(a, b)").is_err());
    }

    #[test]
    fn bad_sql_part_is_reported() {
        assert!(parse_sesql("SELECT FROM WHERE ENRICH SCHEMAEXTENSION(a,b)").is_err());
    }

    #[test]
    fn quoted_string_args() {
        let q = parse_sesql(
            "SELECT a FROM t ENRICH SCHEMAEXTENSION('my attr', 'my prop')",
        )
        .unwrap();
        assert_eq!(
            q.enrichments[0],
            Enrichment::SchemaExtension { attr: "my attr".into(), property: "my prop".into() }
        );
    }

    #[test]
    fn display_of_parsed_query_mentions_enrich() {
        let q = parse_sesql("SELECT a FROM t ENRICH SCHEMAEXTENSION(a, p)").unwrap();
        let text = q.to_string();
        assert!(text.contains("ENRICH SCHEMAEXTENSION(a, p)"), "{text}");
    }
}
