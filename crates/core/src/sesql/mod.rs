//! The SESQL language front-end: scanner, grammar, AST (paper Sec. IV).

pub mod ast;
pub mod parser;
pub mod scanner;
