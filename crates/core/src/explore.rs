//! Exploration support: previews, snippets, concept highlighting.
//!
//! Sec. I-B(c) of the paper: "the system should provide (a) context-aware
//! ranking, (b) snippet extraction, (c) key concept highlighting, and (d)
//! context-aware knowledge extension". Ranking lives in
//! [`crate::recommend`]; this module provides the remaining presentation
//! services over SESQL results.

use std::collections::HashMap;

use crosse_relational::{DataType, RowSet, Value};

/// Per-column statistics shown as a result preview.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSummary {
    pub name: String,
    pub data_type: DataType,
    pub non_null: usize,
    pub distinct: usize,
    /// Minimum value (by SQL ordering), if any non-NULL value exists.
    pub min: Option<Value>,
    pub max: Option<Value>,
}

/// Summarise every column of a result set — the "previews" of Sec. I-B(c)
/// that let a user judge a long result list without reading it.
pub fn summarize(rows: &RowSet) -> Vec<ColumnSummary> {
    rows.schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, col)| {
            let mut non_null = 0;
            let mut distinct = std::collections::HashSet::new();
            let mut min: Option<Value> = None;
            let mut max: Option<Value> = None;
            for row in &rows.rows {
                let v = &row[i];
                if v.is_null() {
                    continue;
                }
                non_null += 1;
                distinct.insert(v.clone());
                let replace_min = match &min {
                    None => true,
                    Some(m) => v.total_cmp(m) == std::cmp::Ordering::Less,
                };
                if replace_min {
                    min = Some(v.clone());
                }
                let replace_max = match &max {
                    None => true,
                    Some(m) => v.total_cmp(m) == std::cmp::Ordering::Greater,
                };
                if replace_max {
                    max = Some(v.clone());
                }
            }
            ColumnSummary {
                name: col.display_name(),
                data_type: col.data_type,
                non_null,
                distinct: distinct.len(),
                min,
                max,
            }
        })
        .collect()
}

/// Render a preview table (one line per column).
pub fn preview_text(rows: &RowSet) -> String {
    let mut out = format!("{} rows\n", rows.rows.len());
    for s in summarize(rows) {
        out.push_str(&format!(
            "  {:<24} {:<8} non-null {:>5}  distinct {:>5}  range [{} .. {}]\n",
            s.name,
            s.data_type.to_string(),
            s.non_null,
            s.distinct,
            s.min.map(|v| v.lexical_form()).unwrap_or_else(|| "-".into()),
            s.max.map(|v| v.lexical_form()).unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

/// Wrap every case-insensitive occurrence of a concept in `**…**` markers.
/// Longer concepts take precedence so `"HeavyMetal"` is not broken by
/// `"Metal"`. Matching is on word fragments (substring), as in the paper's
/// key-concept highlighting of free-text resources.
pub fn highlight(text: &str, concepts: &[&str]) -> String {
    let mut ordered: Vec<&str> = concepts.iter().copied().filter(|c| !c.is_empty()).collect();
    ordered.sort_by_key(|c| std::cmp::Reverse(c.len()));
    // Build a marker map over the original text: mark[i] = true when byte i
    // is inside a matched concept.
    let lower = text.to_lowercase();
    let mut marked = vec![false; text.len()];
    for c in ordered {
        let needle = c.to_lowercase();
        let mut from = 0;
        while let Some(pos) = lower[from..].find(&needle) {
            let start = from + pos;
            let end = start + needle.len();
            // Skip overlaps with already-marked regions (longest wins).
            if !marked[start..end].iter().any(|&b| b) {
                marked[start..end].iter_mut().for_each(|b| *b = true);
            }
            from = start + 1;
            if from >= lower.len() {
                break;
            }
        }
    }
    let mut out = String::with_capacity(text.len() + 16);
    let mut inside = false;
    for (i, ch) in text.char_indices() {
        let now = marked[i];
        if now && !inside {
            out.push_str("**");
        }
        if !now && inside {
            out.push_str("**");
        }
        inside = now;
        out.push(ch);
    }
    if inside {
        out.push_str("**");
    }
    out
}

/// Extract a snippet of ±`window` characters around the first occurrence of
/// any concept, with highlighting; `None` if no concept occurs.
pub fn snippet(text: &str, concepts: &[&str], window: usize) -> Option<String> {
    let lower = text.to_lowercase();
    let mut best: Option<usize> = None;
    let mut best_len = 0;
    for c in concepts {
        if c.is_empty() {
            continue;
        }
        if let Some(pos) = lower.find(&c.to_lowercase()) {
            if best.map(|b| pos < b).unwrap_or(true) {
                best = Some(pos);
                best_len = c.len();
            }
        }
    }
    let pos = best?;
    // Clamp to char boundaries.
    let mut start = pos.saturating_sub(window);
    while start > 0 && !text.is_char_boundary(start) {
        start -= 1;
    }
    let mut end = (pos + best_len + window).min(text.len());
    while end < text.len() && !text.is_char_boundary(end) {
        end += 1;
    }
    let mut s = String::new();
    if start > 0 {
        s.push('…');
    }
    s.push_str(&highlight(&text[start..end], concepts));
    if end < text.len() {
        s.push('…');
    }
    Some(s)
}

/// Highlight concept occurrences inside the string cells of a result set,
/// returning rendered lines (one per row).
pub fn highlight_rows(rows: &RowSet, profile: &HashMap<String, usize>) -> Vec<String> {
    let concepts: Vec<&str> = profile.keys().map(String::as_str).collect();
    rows.rows
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| match v {
                    Value::Str(s) => highlight(s, &concepts),
                    other => other.lexical_form(),
                })
                .collect::<Vec<_>>()
                .join(" | ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosse_relational::{Column, Schema};

    fn rows() -> RowSet {
        RowSet {
            schema: Schema::new(vec![
                Column::new("elem", DataType::Text),
                Column::new("amount", DataType::Float),
            ]),
            rows: vec![
                vec![Value::from("Hg"), Value::Float(12.5)],
                vec![Value::from("Pb"), Value::Float(30.0)],
                vec![Value::from("Hg"), Value::Null],
            ],
        }
    }

    #[test]
    fn summaries_count_and_range() {
        let s = summarize(&rows());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].non_null, 3);
        assert_eq!(s[0].distinct, 2);
        assert_eq!(s[1].non_null, 2);
        assert_eq!(s[1].min, Some(Value::Float(12.5)));
        assert_eq!(s[1].max, Some(Value::Float(30.0)));
    }

    #[test]
    fn summary_of_all_null_column() {
        let rs = RowSet {
            schema: Schema::new(vec![Column::new("x", DataType::Int)]),
            rows: vec![vec![Value::Null], vec![Value::Null]],
        };
        let s = summarize(&rs);
        assert_eq!(s[0].non_null, 0);
        assert_eq!(s[0].min, None);
        let text = preview_text(&rs);
        assert!(text.contains("[- .. -]"), "{text}");
    }

    #[test]
    fn highlight_basic() {
        assert_eq!(
            highlight("mercury pollution in Torino", &["pollution"]),
            "mercury **pollution** in Torino"
        );
    }

    #[test]
    fn highlight_is_case_insensitive_and_multi() {
        let h = highlight("Mercury and LEAD near mercury mines", &["mercury", "lead"]);
        assert_eq!(h, "**Mercury** and **LEAD** near **mercury** mines");
    }

    #[test]
    fn highlight_longest_concept_wins() {
        let h = highlight("HeavyMetal", &["Metal", "HeavyMetal"]);
        assert_eq!(h, "**HeavyMetal**");
    }

    #[test]
    fn highlight_adjacent_overlap_does_not_double_mark() {
        let h = highlight("ab", &["ab", "b"]);
        assert_eq!(h, "**ab**");
    }

    #[test]
    fn highlight_without_match_is_identity() {
        assert_eq!(highlight("nothing here", &["mercury"]), "nothing here");
        assert_eq!(highlight("x", &[]), "x");
    }

    #[test]
    fn snippet_windows_and_ellipses() {
        let text = "Long report about industrial waste. The mercury levels \
                    exceeded the threshold in three samples. More text follows.";
        let s = snippet(text, &["mercury"], 12).unwrap();
        assert!(s.starts_with('…') && s.ends_with('…'), "{s}");
        assert!(s.contains("**mercury**"), "{s}");
        assert!(s.len() < text.len());
    }

    #[test]
    fn snippet_at_text_start_has_no_leading_ellipsis() {
        let s = snippet("mercury first", &["mercury"], 20).unwrap();
        assert!(!s.starts_with('…'));
        assert!(s.contains("**mercury**"));
    }

    #[test]
    fn snippet_none_when_absent() {
        assert_eq!(snippet("clean text", &["mercury"], 10), None);
    }

    #[test]
    fn snippet_respects_utf8_boundaries() {
        let text = "àààà mercury øøøø";
        let s = snippet(text, &["mercury"], 3).unwrap();
        assert!(s.contains("**mercury**"), "{s}");
    }

    #[test]
    fn highlight_rows_touches_string_cells_only() {
        let mut profile = HashMap::new();
        profile.insert("Hg".to_string(), 3usize);
        let lines = highlight_rows(&rows(), &profile);
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("**Hg** | 12.5"));
        assert!(lines[1].starts_with("Pb | 30"));
    }
}
