//! The CroSSE platform: users, annotation scenarios, query log.
//!
//! Sec. III-A of the paper distinguishes three annotation scenarios:
//!
//! * **Integrated** — the annotated subject must be "a concept extracted
//!   from the original data source": the platform verifies the value
//!   actually occurs in the named table/column before asserting.
//! * **Independent** — "the freedom to insert any additional knowledge".
//! * **Crowdsourced** — annotations are public; users browse others'
//!   statements and import them into their own knowledge base.
//!
//! The platform also keeps a per-user query log, the raw material for the
//! Sec. I-B "personal activity context" (peer discovery and context-aware
//! ranking, implemented in [`crate::recommend`]).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crosse_rdf::provenance::{KnowledgeBase, StatementId, StatementInfo};
use crosse_rdf::store::Triple;
use crosse_rdf::term::Term;
use crosse_relational::sql::ast::{Expr, SelectItem, TableRef};
use crosse_relational::{Database, Value};

use crate::error::{Error, Result};
use crate::sesql::parser::parse_sesql;
use crate::sqm::{EnrichedResult, SesqlEngine};

/// One logged query with the concepts it touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    pub user: String,
    pub sesql: String,
    /// Concept vocabulary extracted from the query: table names, column
    /// names, string constants, enrichment properties and concepts.
    pub concepts: Vec<String>,
    /// Monotone sequence number (the platform's logical clock).
    pub seq: u64,
}

/// The platform facade wiring the SESQL engine to user-facing services.
#[derive(Clone)]
pub struct CrossePlatform {
    engine: SesqlEngine,
    log: Arc<RwLock<Vec<LogEntry>>>,
}

impl CrossePlatform {
    pub fn new(db: Database, kb: KnowledgeBase) -> Self {
        CrossePlatform {
            engine: SesqlEngine::new(db, kb),
            log: Arc::new(RwLock::new_labeled("platform.activity_log", Vec::new())),
        }
    }

    pub fn from_engine(engine: SesqlEngine) -> Self {
        CrossePlatform {
            engine,
            log: Arc::new(RwLock::new_labeled("platform.activity_log", Vec::new())),
        }
    }

    pub fn engine(&self) -> &SesqlEngine {
        &self.engine
    }

    pub fn knowledge_base(&self) -> &KnowledgeBase {
        self.engine.knowledge_base()
    }

    pub fn database(&self) -> &Database {
        self.engine.database()
    }

    // ---- user management -------------------------------------------------

    pub fn register_user(&self, user: &str) -> Result<()> {
        if user.is_empty() || !user.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(Error::platform(format!(
                "invalid user name `{user}` (alphanumeric and `_` only)"
            )));
        }
        self.knowledge_base().register_user(user);
        Ok(())
    }

    pub fn users(&self) -> Vec<String> {
        let mut u = self.knowledge_base().users();
        u.sort();
        u
    }

    // ---- annotation scenarios (paper Sec. III-A) --------------------------

    /// Integrated annotation: the subject must occur in `table.column` of
    /// the databank.
    pub fn integrated_annotation(
        &self,
        user: &str,
        table: &str,
        column: &str,
        subject_value: &str,
        property: &str,
        object: Term,
    ) -> Result<StatementId> {
        let t = self.database().catalog().get_table(table)?;
        let idx = t.schema.resolve(None, column)?;
        let mut found = false;
        t.for_each(|row| {
            if !found && row[idx].lexical_form() == subject_value {
                found = true;
            }
        });
        if !found {
            return Err(Error::platform(format!(
                "integrated annotation requires `{subject_value}` to occur in \
                 {table}.{column}, but it does not"
            )));
        }
        let triple = Triple::new(Term::iri(subject_value), Term::iri(property), object);
        Ok(self.knowledge_base().assert_statement(user, &triple)?)
    }

    /// Independent annotation: any `<subject, property, object>` triple.
    pub fn independent_annotation(
        &self,
        user: &str,
        subject: Term,
        property: Term,
        object: Term,
    ) -> Result<StatementId> {
        Ok(self
            .knowledge_base()
            .assert_statement(user, &Triple::new(subject, property, object))?)
    }

    /// A free-text note attached to a concept ("general notes the user is
    /// interested in storing for future use, for exploration purposes
    /// only").
    pub fn attach_note(&self, user: &str, concept: &str, text: &str) -> Result<StatementId> {
        let triple = Triple::new(
            Term::iri(concept),
            Term::iri(format!("{}note", crosse_rdf::schema::SMG_NS)),
            Term::lit(text),
        );
        Ok(self.knowledge_base().assert_statement(user, &triple)?)
    }

    /// Crowdsourced browsing: all public statements, excluding the user's
    /// own (those are not "available from peers").
    pub fn browse_peer_statements(&self, user: &str) -> Vec<StatementInfo> {
        self.knowledge_base()
            .public_statements()
            .into_iter()
            .filter(|s| s.author != user)
            .collect()
    }

    /// Import (accept) a peer statement into the user's knowledge base.
    pub fn import_statement(&self, user: &str, id: StatementId) -> Result<()> {
        Ok(self.knowledge_base().accept_statement(user, id)?)
    }

    // ---- querying ----------------------------------------------------------

    /// Execute a SESQL query as `user`, recording it in the query log.
    pub fn query(&self, user: &str, sesql: &str) -> Result<EnrichedResult> {
        let result = self.engine.execute(user, sesql)?;
        let concepts = extract_concepts(sesql).unwrap_or_default();
        self.log_entry(user, sesql.to_string(), concepts);
        Ok(result)
    }

    /// Execute a prepared SESQL query as `user` with bound parameters,
    /// recording the (normalized, still-parameterised) text in the query
    /// log — repeated executions of one handle profile like repeated
    /// queries of one shape, which is exactly the activity-context signal
    /// the recommender wants.
    pub fn query_prepared(
        &self,
        user: &str,
        prepared: &crate::sqm::PreparedSesql,
        params: &crosse_relational::Params,
    ) -> Result<EnrichedResult> {
        let result = prepared.execute(user, params)?;
        let concepts = concepts_of_query(prepared.query());
        self.log_entry(user, prepared.text().to_string(), concepts);
        Ok(result)
    }

    fn log_entry(&self, user: &str, sesql: String, concepts: Vec<String>) {
        let mut log = self.log.write();
        let seq = log.len() as u64;
        log.push(LogEntry { user: user.to_string(), sesql, concepts, seq });
    }

    /// The full query log (all users; the paper's annotations are public
    /// and so is activity-derived context in our reproduction).
    pub fn query_log(&self) -> Vec<LogEntry> {
        self.log.read().clone()
    }

    /// Concept-frequency profile of a user, derived from their query log —
    /// the "personal activity context" of Sec. I-B(a).
    pub fn user_profile(&self, user: &str) -> HashMap<String, usize> {
        let mut profile = HashMap::new();
        for entry in self.log.read().iter().filter(|e| e.user == user) {
            for c in &entry.concepts {
                *profile.entry(c.clone()).or_insert(0) += 1;
            }
        }
        profile
    }
}

/// Extract the concept vocabulary of a SESQL query: table names, column
/// names, string constants, and enrichment arguments.
pub fn extract_concepts(sesql: &str) -> Result<Vec<String>> {
    Ok(concepts_of_query(&parse_sesql(sesql)?))
}

/// Concept vocabulary of an already-parsed SESQL query.
pub fn concepts_of_query(q: &crate::sesql::ast::SesqlQuery) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let mut push = |s: &str| {
        let s = s.trim();
        if !s.is_empty() && !out.iter().any(|x| x.eq_ignore_ascii_case(s)) {
            out.push(s.to_string());
        }
    };

    fn walk_tables(tr: &TableRef, push: &mut impl FnMut(&str)) {
        match tr {
            TableRef::Table { name, .. } => push(name),
            TableRef::Join { left, right, .. } => {
                walk_tables(left, push);
                walk_tables(right, push);
            }
        }
    }
    for tr in &q.select.from {
        walk_tables(tr, &mut push);
    }

    let push_expr = |e: &Expr, push: &mut dyn FnMut(&str)| {
        e.visit(&mut |node| match node {
            Expr::Column { name, .. } => push(name),
            Expr::Literal(Value::Str(s)) => push(s),
            _ => {}
        });
    };
    for item in &q.select.projections {
        if let SelectItem::Expr { expr, .. } = item {
            push_expr(expr, &mut push);
        }
    }
    if let Some(f) = &q.select.filter {
        push_expr(f, &mut push);
    }
    for e in &q.enrichments {
        use crate::sesql::ast::Enrichment::*;
        match e {
            SchemaExtension { attr, property } | SchemaReplacement { attr, property } => {
                push(attr);
                push(property);
            }
            BoolSchemaExtension { attr, property, concept }
            | BoolSchemaReplacement { attr, property, concept } => {
                push(attr);
                push(property);
                push(concept);
            }
            ReplaceConstant { constant, property, .. } => {
                push(constant);
                push(property);
            }
            ReplaceVariable { attr, property, .. } => {
                push(attr);
                push(property);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> CrossePlatform {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
             INSERT INTO elem_contained VALUES ('Hg','a'), ('Pb','a'), ('Cu','b');",
        )
        .unwrap();
        let kb = KnowledgeBase::new();
        let p = CrossePlatform::new(db, kb);
        p.register_user("alice").unwrap();
        p.register_user("bob").unwrap();
        p
    }

    #[test]
    fn register_validates_names() {
        let p = platform();
        assert!(p.register_user("carol_2").is_ok());
        assert!(p.register_user("").is_err());
        assert!(p.register_user("has space").is_err());
        assert_eq!(p.users().len(), 3);
    }

    #[test]
    fn integrated_annotation_checks_the_databank() {
        let p = platform();
        let id = p
            .integrated_annotation(
                "alice",
                "elem_contained",
                "elem_name",
                "Hg",
                "dangerLevel",
                Term::lit("5"),
            )
            .unwrap();
        assert_eq!(p.knowledge_base().statements_by("alice"), vec![id]);
        let err = p
            .integrated_annotation(
                "alice",
                "elem_contained",
                "elem_name",
                "Xx",
                "dangerLevel",
                Term::lit("1"),
            )
            .unwrap_err();
        assert!(err.to_string().contains("Xx"), "{err}");
        assert!(p
            .integrated_annotation("alice", "nope", "c", "Hg", "p", Term::lit("1"))
            .is_err());
        assert!(p
            .integrated_annotation("alice", "elem_contained", "nope", "Hg", "p", Term::lit("1"))
            .is_err());
    }

    #[test]
    fn independent_annotation_is_free() {
        let p = platform();
        // "Xx" is nowhere in the databank, still fine independently.
        p.independent_annotation("alice", Term::iri("Xx"), Term::iri("isA"), Term::iri("Y"))
            .unwrap();
        assert_eq!(p.knowledge_base().personal_size("alice"), 1);
    }

    #[test]
    fn notes_are_statements() {
        let p = platform();
        p.attach_note("alice", "Hg", "check the 2017 report").unwrap();
        assert_eq!(p.knowledge_base().personal_size("alice"), 1);
    }

    #[test]
    fn crowdsourced_browse_and_import() {
        let p = platform();
        let id = p
            .independent_annotation("alice", Term::iri("Hg"), Term::iri("isA"), Term::iri("H"))
            .unwrap();
        p.independent_annotation("bob", Term::iri("Pb"), Term::iri("isA"), Term::iri("H"))
            .unwrap();
        let seen = p.browse_peer_statements("bob");
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].author, "alice");
        p.import_statement("bob", id).unwrap();
        assert_eq!(p.knowledge_base().personal_size("bob"), 2);
    }

    #[test]
    fn query_logs_concepts() {
        let p = platform();
        p.independent_annotation(
            "alice",
            Term::iri("Hg"),
            Term::iri("dangerLevel"),
            Term::lit("5"),
        )
        .unwrap();
        p.query(
            "alice",
            "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
             ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        )
        .unwrap();
        let log = p.query_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].concepts.iter().any(|c| c == "elem_contained"));
        assert!(log[0].concepts.iter().any(|c| c == "dangerLevel"));
        assert!(log[0].concepts.iter().any(|c| c == "a"));
        let profile = p.user_profile("alice");
        assert_eq!(profile["dangerLevel"], 1);
        assert!(p.user_profile("bob").is_empty());
    }

    #[test]
    fn failed_queries_are_not_logged() {
        let p = platform();
        assert!(p.query("alice", "SELECT nope FROM nowhere").is_err());
        assert!(p.query_log().is_empty());
    }

    #[test]
    fn extract_concepts_covers_enrichments() {
        let cs = extract_concepts(
            "SELECT name, city FROM landfill \
             WHERE ${city = Pollution:c1} \
             ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy) \
                    REPLACECONSTANT(c1, Pollution, pollutionQuery)",
        )
        .unwrap();
        for expected in
            ["landfill", "name", "city", "inCountry", "Italy", "Pollution", "pollutionQuery"]
        {
            assert!(cs.iter().any(|c| c == expected), "missing {expected} in {cs:?}");
        }
    }

    #[test]
    fn concepts_deduplicate_case_insensitively() {
        let cs = extract_concepts("SELECT City, CITY FROM landfill").unwrap();
        assert_eq!(cs.iter().filter(|c| c.eq_ignore_ascii_case("city")).count(), 1);
    }
}
