//! Peer discovery, statement recommendation, context-aware ranking.
//!
//! These implement the Sec. I-B vision services of the paper:
//!
//! * *(a) peer recommendation* — "based on this researcher's interactions
//!   with the system ... the system can help the researcher locate other
//!   individuals (or peers) with similar interests";
//! * *(b) data recommendations based on peer networks* — "the system can
//!   recommend the researcher resources that were explored and used by
//!   others within similar contexts";
//! * context-aware ranking — "the search should rank and organize results
//!   differently for these two users".

use std::collections::{HashMap, HashSet};

use crosse_rdf::provenance::{KnowledgeBase, StatementId};
use crosse_relational::RowSet;

use crate::platform::CrossePlatform;

/// Jaccard similarity of two sets.
pub fn jaccard<T: std::hash::Hash + Eq>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Cosine similarity of two frequency profiles.
pub fn cosine(a: &HashMap<String, usize>, b: &HashMap<String, usize>) -> f64 {
    let dot: f64 = a
        .iter()
        .filter_map(|(k, &va)| b.get(k).map(|&vb| va as f64 * vb as f64))
        .sum();
    let norm = |m: &HashMap<String, usize>| -> f64 {
        m.values().map(|&v| (v * v) as f64).sum::<f64>().sqrt()
    };
    let (na, nb) = (norm(a), norm(b));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// The statement footprint of a user: everything asserted or believed.
pub fn knowledge_footprint(kb: &KnowledgeBase, user: &str) -> HashSet<StatementId> {
    kb.statements_by(user)
        .into_iter()
        .chain(kb.beliefs_of(user))
        .collect()
}

/// Knowledge-base similarity: Jaccard over statement footprints.
pub fn kb_similarity(kb: &KnowledgeBase, a: &str, b: &str) -> f64 {
    jaccard(&knowledge_footprint(kb, a), &knowledge_footprint(kb, b))
}

/// Combined peer similarity: equal-weight mix of knowledge overlap and
/// query-activity profile similarity.
pub fn peer_similarity(platform: &CrossePlatform, a: &str, b: &str) -> f64 {
    let kb = platform.knowledge_base();
    let kb_sim = kb_similarity(kb, a, b);
    let act_sim = cosine(&platform.user_profile(a), &platform.user_profile(b));
    0.5 * kb_sim + 0.5 * act_sim
}

/// A scored recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Scored<T> {
    pub item: T,
    pub score: f64,
}

/// The `k` most similar peers of `user` (score > 0 only).
pub fn recommend_peers(
    platform: &CrossePlatform,
    user: &str,
    k: usize,
) -> Vec<Scored<String>> {
    let mut scored: Vec<Scored<String>> = platform
        .users()
        .into_iter()
        .filter(|u| u != user)
        .map(|u| {
            let score = peer_similarity(platform, user, &u);
            Scored { item: u, score }
        })
        .filter(|s| s.score > 0.0)
        .collect();
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.item.cmp(&b.item)));
    scored.truncate(k);
    scored
}

/// Statements held by similar peers that `user` has not adopted yet,
/// scored by the summed similarity of their holders (Sec. I-B(b)).
pub fn recommend_statements(
    platform: &CrossePlatform,
    user: &str,
    k: usize,
) -> Vec<Scored<StatementId>> {
    let kb = platform.knowledge_base();
    let own = knowledge_footprint(kb, user);
    let mut peer_sim: HashMap<String, f64> = HashMap::new();
    for peer in platform.users() {
        if peer != user {
            peer_sim.insert(peer.clone(), peer_similarity(platform, user, &peer));
        }
    }
    let mut scores: HashMap<StatementId, f64> = HashMap::new();
    for info in kb.public_statements() {
        if own.contains(&info.id) {
            continue;
        }
        let mut holders: Vec<&String> = info.believers.iter().collect();
        if !info.author.is_empty() && info.author != user {
            holders.push(&info.author);
        }
        let score: f64 = holders
            .iter()
            .filter(|h| ***h != *user)
            .filter_map(|h| peer_sim.get(h.as_str()))
            .sum();
        if score > 0.0 {
            *scores.entry(info.id).or_insert(0.0) += score;
        }
    }
    let mut scored: Vec<Scored<StatementId>> = scores
        .into_iter()
        .map(|(item, score)| Scored { item, score })
        .collect();
    scored.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.item.cmp(&b.item)));
    scored.truncate(k);
    scored
}

/// Context-aware ranking: reorder result rows so that rows mentioning
/// concepts from the user's activity profile come first. Stable: ties keep
/// the original order.
pub fn rank_rows(rows: &RowSet, profile: &HashMap<String, usize>) -> RowSet {
    let mut indexed: Vec<(usize, f64)> = rows
        .rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let score: f64 = row
                .iter()
                .map(|v| {
                    let key = v.lexical_form();
                    *profile.get(&key).unwrap_or(&0) as f64
                })
                .sum();
            (i, score)
        })
        .collect();
    indexed.sort_by(|(ia, sa), (ib, sb)| sb.total_cmp(sa).then_with(|| ia.cmp(ib)));
    RowSet {
        schema: rows.schema.clone(),
        rows: indexed.into_iter().map(|(i, _)| rows.rows[i].clone()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosse_rdf::store::Triple;
    use crosse_rdf::term::Term;
    use crosse_relational::{Column, DataType, Database, Schema, Value};

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    fn platform() -> CrossePlatform {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT);
             INSERT INTO elem_contained VALUES ('Hg','a'), ('Pb','a'), ('As','b');",
        )
        .unwrap();
        let p = CrossePlatform::new(db, KnowledgeBase::new());
        for u in ["alice", "bob", "carol"] {
            p.register_user(u).unwrap();
        }
        p
    }

    #[test]
    fn jaccard_basics() {
        let a: HashSet<i32> = [1, 2, 3].into_iter().collect();
        let b: HashSet<i32> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-9);
        assert_eq!(jaccard(&a, &a), 1.0);
        let empty: HashSet<i32> = HashSet::new();
        assert_eq!(jaccard(&empty, &empty), 0.0);
        assert_eq!(jaccard(&a, &empty), 0.0);
    }

    #[test]
    fn cosine_basics() {
        let mut a = HashMap::new();
        a.insert("x".to_string(), 2usize);
        let mut b = HashMap::new();
        b.insert("x".to_string(), 3usize);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-9);
        b.clear();
        b.insert("y".to_string(), 1);
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&HashMap::new(), &a), 0.0);
    }

    #[test]
    fn kb_similarity_through_shared_beliefs() {
        let p = platform();
        let kb = p.knowledge_base();
        let s1 = kb.assert_statement("alice", &t("Hg", "isA", "Hazard")).unwrap();
        let s2 = kb.assert_statement("alice", &t("Pb", "isA", "Hazard")).unwrap();
        kb.accept_statement("bob", s1).unwrap();
        kb.accept_statement("bob", s2).unwrap();
        kb.assert_statement("carol", &t("Cu", "isA", "Metal")).unwrap();
        assert!((kb_similarity(kb, "alice", "bob") - 1.0).abs() < 1e-9);
        assert_eq!(kb_similarity(kb, "alice", "carol"), 0.0);
    }

    #[test]
    fn peers_ranked_by_similarity() {
        let p = platform();
        let kb = p.knowledge_base();
        let s1 = kb.assert_statement("alice", &t("Hg", "isA", "Hazard")).unwrap();
        let s2 = kb.assert_statement("alice", &t("Pb", "isA", "Hazard")).unwrap();
        kb.accept_statement("bob", s1).unwrap();
        kb.accept_statement("bob", s2).unwrap();
        kb.assert_statement("carol", &t("Hg", "isA", "Hazard")).unwrap(); // shares s1
        let peers = recommend_peers(&p, "alice", 5);
        assert_eq!(peers.len(), 2);
        assert_eq!(peers[0].item, "bob");
        assert_eq!(peers[1].item, "carol");
        assert!(peers[0].score > peers[1].score);
    }

    #[test]
    fn statement_recommendation_from_similar_peer() {
        let p = platform();
        let kb = p.knowledge_base();
        // alice and bob share a belief; bob holds an extra statement that
        // alice should be recommended.
        let shared = kb.assert_statement("bob", &t("Hg", "isA", "Hazard")).unwrap();
        kb.accept_statement("alice", shared).unwrap();
        let extra = kb.assert_statement("bob", &t("Hg", "occursWith", "As")).unwrap();
        // carol holds an unrelated statement, dissimilar to alice.
        kb.assert_statement("carol", &t("Zn", "isA", "Metal")).unwrap();

        let recs = recommend_statements(&p, "alice", 5);
        assert!(!recs.is_empty());
        assert_eq!(recs[0].item, extra);
        // carol's statement scores 0 (no similarity) and is filtered out.
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn activity_profiles_contribute() {
        let p = platform();
        p.query("alice", "SELECT elem_name FROM elem_contained").unwrap();
        p.query("bob", "SELECT elem_name FROM elem_contained").unwrap();
        p.query("carol", "SELECT landfill_name FROM elem_contained").unwrap();
        let ab = peer_similarity(&p, "alice", "bob");
        let ac = peer_similarity(&p, "alice", "carol");
        assert!(ab > ac, "shared query vocabulary beats partial overlap: {ab} vs {ac}");
    }

    #[test]
    fn rank_rows_prefers_profile_concepts() {
        let rows = RowSet {
            schema: Schema::new(vec![Column::new("elem", DataType::Text)]),
            rows: vec![
                vec![Value::from("Cu")],
                vec![Value::from("Hg")],
                vec![Value::from("Pb")],
            ],
        };
        let mut profile = HashMap::new();
        profile.insert("Hg".to_string(), 3usize);
        profile.insert("Pb".to_string(), 1usize);
        let ranked = rank_rows(&rows, &profile);
        assert_eq!(ranked.rows[0][0], Value::from("Hg"));
        assert_eq!(ranked.rows[1][0], Value::from("Pb"));
        assert_eq!(ranked.rows[2][0], Value::from("Cu"));
    }

    #[test]
    fn rank_rows_is_stable_on_ties() {
        let rows = RowSet {
            schema: Schema::new(vec![Column::new("elem", DataType::Text)]),
            rows: vec![vec![Value::from("A")], vec![Value::from("B")]],
        };
        let ranked = rank_rows(&rows, &HashMap::new());
        assert_eq!(ranked.rows[0][0], Value::from("A"));
        assert_eq!(ranked.rows[1][0], Value::from("B"));
    }

    #[test]
    fn self_not_recommended() {
        let p = platform();
        let kb = p.knowledge_base();
        kb.assert_statement("alice", &t("Hg", "isA", "Hazard")).unwrap();
        let peers = recommend_peers(&p, "alice", 5);
        assert!(peers.iter().all(|s| s.item != "alice"));
    }
}
