// srclint: allow(R002): the generated SPARQL always projects the ?s/?o variables the expects look up; the char walk indexes char boundaries
//! The Semantic Query Module (SQM): SESQL execution (paper Fig. 6).
//!
//! Execution follows the paper's architecture: the Semantic Query Parser
//! splits the query; the SQM derives SPARQL queries from the enrichment
//! syntax tree; SQL and SPARQL legs run independently; the JoinManager
//! combines partial results using the resource mapping; the temporary
//! support database materialises intermediates; a final SQL query assembles
//! the enriched result. Every stage is timed in [`PipelineReport`] so the
//! E2 experiment can regenerate the Fig. 6 pipeline breakdown.

use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crosse_cache::Lru;
use crosse_federation::join_manager::{combine_in, term_to_value_in, CombineKind, JoinSpec};
use crosse_federation::mapping::{MapStrategy, ResourceMapping};
use crosse_federation::tempdb::TempDb;
use crosse_rdf::provenance::KnowledgeBase;
use crosse_rdf::sparql::eval::Solutions;
use crosse_rdf::stored::StoredQueries;
use crosse_rdf::term::Term;
use crosse_lint::Diagnostic;
use crosse_relational::sql::ast::{BinaryOp, Expr, Select, TableRef};
use crosse_relational::{Column, DataType, Database, Row, RowSet, Schema, Value};

use crate::error::{Error, Result};
use crate::sesql::ast::{Enrichment, SesqlQuery};
use crate::sesql::parser::parse_sesql;

/// How multi-valued enrichments materialise (a subject may have several
/// objects for the chosen property; the paper leaves this open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultiValuePolicy {
    /// One output row per (row, object) pair — natural join semantics.
    #[default]
    RowPerMatch,
    /// Keep only the first object per subject.
    FirstMatch,
    /// Concatenate all objects into one `"; "`-separated value.
    Concatenate,
}

/// Direction in which `REPLACEVARIABLE` walks the property edges when
/// expanding a variable (paper Ex. 4.6 uses `oreAssemblage`, a co-
/// occurrence relation that is naturally symmetric; directional properties
/// like `inCountry` want `Forward`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpandDirection {
    /// `x` expands to the objects of `<x, p, ?o>`.
    Forward,
    /// `x` expands to the subjects of `<?s, p, x>`.
    Inverse,
    /// Both directions.
    #[default]
    Symmetric,
}

/// User-tunable enrichment behaviour ("which may or may not contain the
/// initial value according to the user preferences", paper Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnrichOptions {
    pub multi: MultiValuePolicy,
    /// For the WHERE enrichments: whether the original value/condition is
    /// kept alongside the ontology-derived expansion.
    pub include_self: bool,
    /// Edge direction for `REPLACEVARIABLE` expansion.
    pub expand: ExpandDirection,
    /// Reuse SPARQL-leg results across queries while the knowledge base is
    /// unchanged (version-checked, so a single annotation invalidates).
    pub use_cache: bool,
}

impl Default for EnrichOptions {
    fn default() -> Self {
        EnrichOptions {
            multi: MultiValuePolicy::RowPerMatch,
            include_self: true,
            expand: ExpandDirection::Symmetric,
            use_cache: true,
        }
    }
}

/// One SPARQL leg executed during enrichment.
#[derive(Debug, Clone)]
pub struct SparqlRun {
    /// What the query was generated for (e.g. `SCHEMAEXTENSION(elem_name,
    /// dangerLevel)`).
    pub purpose: String,
    /// The generated SPARQL text.
    pub sparql: String,
    pub solutions: usize,
    pub duration: Duration,
    /// Served from the SPARQL-leg cache (knowledge base unchanged since
    /// the cached evaluation).
    pub cached: bool,
    /// Served from the REPLACEVARIABLE pairs table (the relational form
    /// that feeds the shared/spooled leg of the rewritten compound): the
    /// SPARQL evaluation *and* the term→value pairs conversion were both
    /// skipped. `cached && !shared` is a solution-cache hit; `!cached` is
    /// a recomputed leg.
    pub shared: bool,
}

/// Stage-by-stage timing of one SESQL execution (Fig. 6 pipeline).
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Semantic Query Parser (split + clean + parse).
    pub parse: Duration,
    /// The SQL leg on the relational databank.
    pub sql_exec: Duration,
    /// All SPARQL legs on the knowledge base.
    pub sparql_exec: Duration,
    /// JoinManager combination work.
    pub join: Duration,
    /// Materialisation + final query on the temporary support database.
    pub final_sql: Duration,
    pub sparql_runs: Vec<SparqlRun>,
    /// Rows returned by the SQL leg before enrichment.
    pub base_rows: usize,
    /// Rows in the final enriched result.
    pub result_rows: usize,
}

impl PipelineReport {
    /// Total pipeline wall time.
    pub fn total(&self) -> Duration {
        self.parse + self.sql_exec + self.sparql_exec + self.join + self.final_sql
    }
}

/// A SESQL result: the enriched rows plus the pipeline report.
#[derive(Debug, Clone)]
pub struct EnrichedResult {
    pub rows: RowSet,
    pub report: PipelineReport,
}

/// Internal record of a schema-level enrichment applied to the base rows.
struct AppliedColumn {
    /// Position of the enriched attr in the base schema (for replacements).
    attr_index: usize,
    /// Index of the appended enrichment column in the working row set.
    added_index: usize,
    /// Final output name of the enrichment column.
    output_name: String,
    /// Replacement ops remove the original attr from the output.
    replaces_attr: bool,
}

/// Default capacity of the engine's bounded caches (SPARQL-leg solutions,
/// parsed SPARQL ASTs, prepared SESQL queries).
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

/// Version-checked, LRU-bounded cache of SPARQL-leg solutions, keyed by
/// the user's context graphs and the generated SPARQL text. Entries are
/// valid only while the triple store's mutation version is unchanged, so
/// any annotation, import or retraction invalidates the whole view at
/// zero bookkeeping cost; the LRU bound keeps adversarial traffic (many
/// distinct generated legs) from growing memory without limit.
#[derive(Debug)]
struct SparqlLegCache {
    entries: Mutex<Lru<(String, String), (u64, Solutions)>>,
    /// REPLACEVARIABLE pairs tables, keyed by (context graphs, property +
    /// expansion direction) and version-checked like `entries`: a hit
    /// skips the SPARQL leg *and* the term→value conversion + dedup that
    /// builds the relational pairs table. Only hits touch the counters —
    /// a pairs miss falls through to the solution-cache path, which
    /// counts the leg itself, keeping "one leg, one counter event".
    pairs: Mutex<Lru<(String, String), CachedPairs>>,
    /// Names of the persistent pairs tables this cache has materialised,
    /// so `clear_cache` can drop them from the catalog. Replaced entries
    /// drop (and un-track) their table eagerly; only capacity evictions
    /// linger until the next clear.
    pairs_tables: Mutex<Vec<String>>,
    // Hit/miss counters live outside the LRUs: a version-stale entry is a
    // *miss* for the caller even though the LRU lookup succeeded.
    hits: AtomicU64,
    misses: AtomicU64,
}

/// One cached REPLACEVARIABLE pairs table.
#[derive(Debug, Clone)]
struct CachedPairs {
    /// KB version the rows were built against.
    version: u64,
    /// The SPARQL leg text that produced them (for reporting).
    sparql: String,
    /// Solution count of that leg (reported on hits, so warm and cold
    /// runs of one query show the same `SparqlRun::solutions`).
    solutions: usize,
    /// Oriented, deduplicated pairs rows.
    rows: Arc<Vec<Row>>,
    /// Name of the relational table these rows are materialised under.
    /// The table persists across executions while the entry is valid, so
    /// a warm REPLACEVARIABLE run joins against it directly — no
    /// re-materialisation, no catalog version churn (which would
    /// invalidate every cached plan template engine-wide).
    table: String,
}

impl Default for SparqlLegCache {
    fn default() -> Self {
        SparqlLegCache {
            entries: Mutex::new_labeled("sqm.leg_cache", Lru::new(DEFAULT_CACHE_CAPACITY)),
            pairs: Mutex::new_labeled("sqm.pairs_cache", Lru::new(DEFAULT_CACHE_CAPACITY)),
            pairs_tables: Mutex::new_labeled("sqm.pairs_tables", Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl SparqlLegCache {
    fn key(graphs: &[&str], second: &str) -> (String, String) {
        (graphs.join("\u{1f}"), second.to_string())
    }

    fn get(&self, graphs: &[&str], sparql: &str, version: u64) -> Option<Solutions> {
        let key = Self::key(graphs, sparql);
        match self.entries.lock().get(&key) {
            Some((v, sols)) if *v == version => {
                self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                Some(sols.clone())
            }
            _ => {
                self.misses.fetch_add(1, AtomicOrdering::Relaxed);
                None
            }
        }
    }

    fn put(&self, graphs: &[&str], sparql: &str, version: u64, sols: &Solutions) {
        self.entries
            .lock()
            .put(Self::key(graphs, sparql), (version, sols.clone()));
    }

    /// Version-valid cached pairs, counting a *hit* on success. A miss is
    /// deliberately not counted here: the caller falls through to
    /// `run_sparql_leg`, whose own cache lookup counts the event (one leg
    /// executed = one hit-or-miss, warm or cold).
    fn get_pairs(&self, graphs: &[&str], prop_key: &str, version: u64) -> Option<CachedPairs> {
        let key = Self::key(graphs, prop_key);
        match self.pairs.lock().get(&key) {
            Some(cached) if cached.version == version => {
                self.hits.fetch_add(1, AtomicOrdering::Relaxed);
                Some(cached.clone())
            }
            _ => None,
        }
    }

    /// Version-valid cached pairs without touching recency or the
    /// hit/miss counters — the diagnostic (`EXPLAIN`) lookup.
    fn peek_pairs(&self, graphs: &[&str], prop_key: &str, version: u64) -> Option<CachedPairs> {
        match self.pairs.lock().peek(&Self::key(graphs, prop_key)) {
            Some(cached) if cached.version == version => Some(cached.clone()),
            _ => None,
        }
    }

    /// Publish a pairs entry, tracking its persistent table. Returns the
    /// table names this insert displaced — the replaced entry under the
    /// same key and/or LRU capacity evictions — so the caller can drop
    /// them from the catalog (otherwise a bounded cache would leak an
    /// unbounded catalog).
    fn put_pairs(&self, graphs: &[&str], prop_key: &str, cached: CachedPairs) -> Vec<String> {
        let key = Self::key(graphs, prop_key);
        let table = cached.table.clone();
        let mut pairs = self.pairs.lock();
        let displaced: Vec<String> = pairs
            .put_evicting(key, cached)
            .into_iter()
            .map(|(_, v)| v.table)
            .collect();
        let mut tables = self.pairs_tables.lock();
        tables.retain(|t| !displaced.contains(t));
        tables.push(table);
        displaced
    }

    /// Drain the tracked persistent pairs tables (for `clear_cache`).
    fn drain_pairs_tables(&self) -> Vec<String> {
        std::mem::take(&mut *self.pairs_tables.lock())
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(AtomicOrdering::Relaxed),
            misses: self.misses.load(AtomicOrdering::Relaxed),
            evictions: self.entries.lock().stats().evictions
                + self.pairs.lock().stats().evictions,
        }
    }
}

/// Cumulative cache statistics (hits, misses, LRU evictions) — shared
/// shape across the engine's caches.
pub use crosse_cache::CacheStats;

/// A compiled SESQL query as stored in the engine's prepared cache,
/// tagged with the catalog version its slot types were inferred against.
#[derive(Debug, Clone)]
struct CachedSesql {
    query: Arc<SesqlQuery>,
    slots: Arc<Vec<crosse_relational::SlotInfo>>,
    warnings: Arc<Vec<Diagnostic>>,
    version: u64,
}

/// The SESQL engine: relational databank + knowledge base + registries.
#[derive(Clone)]
pub struct SesqlEngine {
    db: Database,
    kb: KnowledgeBase,
    stored: StoredQueries,
    mapping: ResourceMapping,
    tempdb: TempDb,
    options: EnrichOptions,
    cache: Arc<SparqlLegCache>,
    /// Compiled SPARQL ASTs keyed by query text (bounded LRU): generated
    /// legs parse once, then evaluate the compiled form (the result cache
    /// above is version-checked; this one never needs invalidation — the
    /// same text always parses to the same AST).
    parsed: Arc<Mutex<Lru<String, Arc<crosse_rdf::sparql::ast::Query>>>>,
    /// Prepared SESQL queries keyed by normalized text (bounded LRU):
    /// repeated `prepare` traffic skips the scanner + both parsers.
    prepared: Arc<Mutex<Lru<String, CachedSesql>>>,
}

impl SesqlEngine {
    pub fn new(db: Database, kb: KnowledgeBase) -> Self {
        SesqlEngine {
            db,
            kb,
            stored: StoredQueries::new(),
            mapping: ResourceMapping::new(),
            tempdb: TempDb::new(),
            options: EnrichOptions::default(),
            cache: Arc::default(),
            parsed: Arc::new(Mutex::new_labeled("sesql.ast_cache", Lru::new(DEFAULT_CACHE_CAPACITY))),
            prepared: Arc::new(Mutex::new_labeled("sesql.prepared_cache", Lru::new(DEFAULT_CACHE_CAPACITY))),
        }
    }

    /// Open (or create) a durable engine backed by the write-ahead log at
    /// `dir`: loads the latest snapshot of both substrates, replays the
    /// log tail, and attaches the redo sinks so every subsequent
    /// relational or RDF mutation is logged. See [`crate::storage`].
    pub fn open(dir: impl AsRef<std::path::Path>) -> Result<SesqlEngine> {
        crate::storage::open_engine(dir, crate::storage::WalOptions::default())
    }

    /// [`SesqlEngine::open`] with explicit WAL options (sync policy).
    pub fn open_with(
        dir: impl AsRef<std::path::Path>,
        opts: crate::storage::WalOptions,
    ) -> Result<SesqlEngine> {
        crate::storage::open_engine(dir, opts)
    }

    /// Whether this engine logs to a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.db.is_durable()
    }

    /// Take a checkpoint: pin the relational catalog and the triple store
    /// at one LSN under the WAL barrier, write the two-section snapshot
    /// off-thread, truncate the log. Surfaces any parked background
    /// storage error first. Errors if the engine is in-memory.
    pub fn checkpoint(&self) -> Result<u64> {
        self.storage_check()?;
        Ok(self.db.checkpoint()?)
    }

    /// Wait for any in-flight checkpoint and surface its error, if any.
    pub fn checkpoint_join(&self) -> Result<()> {
        Ok(self.db.checkpoint_join()?)
    }

    /// WAL statistics, or `None` for an in-memory engine.
    pub fn wal_stats(&self) -> Option<crate::storage::WalStats> {
        self.db.wal_stats()
    }

    /// Per-site lock counters from the concurrency tracking layer (CLI
    /// `\lock-stats`). Empty in release builds and when tracking is off;
    /// see [`crosse_relational::Database::lock_stats`].
    pub fn lock_stats(&self) -> Vec<crosse_relational::LockSiteStats> {
        self.db.lock_stats()
    }

    /// Non-fatal notes from recovery (e.g. a torn final record truncated
    /// away). Empty for in-memory engines and clean opens.
    pub fn recovery_warnings(&self) -> Vec<String> {
        self.db.recovery_warnings()
    }

    /// Surface a storage error parked by an RDF mutator whose signature
    /// cannot return one (`insert` → bool, `insert_all` → usize): once a
    /// redo append fails, the store refuses further writes and this
    /// reports why. `Ok` on healthy and in-memory engines.
    pub fn storage_check(&self) -> Result<()> {
        Ok(self.kb.store().storage_check()?)
    }

    /// Set the engine-wide worker-thread budget for intra-query
    /// parallelism: relational scans/filters/projections and hash-join
    /// probes partition pinned table snapshots, and SPARQL probe batches
    /// partition across the same pool. 1 (the default) is sequential; 0 is
    /// clamped to 1. The budget lives on the shared [`Database`], so every
    /// engine clone — and direct `Database` users — see one setting.
    pub fn set_exec_threads(&self, threads: usize) {
        self.db.set_exec_threads(threads);
    }

    /// Current worker-thread budget (see [`SesqlEngine::set_exec_threads`]).
    pub fn exec_threads(&self) -> usize {
        self.db.exec_threads()
    }

    /// Parse a SPARQL SELECT once per distinct text, returning the shared
    /// compiled AST (bounded LRU — generated leg texts vary with the live
    /// predicate set, so old entries age out instead of accumulating).
    fn parse_cached(&self, sparql: &str) -> Result<Arc<crosse_rdf::sparql::ast::Query>> {
        if let Some(q) = self.parsed.lock().get(sparql) {
            return Ok(q.clone());
        }
        let q = Arc::new(crosse_rdf::sparql::parser::parse_query(sparql)?);
        self.parsed.lock().put(sparql.to_string(), q.clone());
        Ok(q)
    }

    /// SPARQL-leg solution cache statistics (only queries executed with
    /// `use_cache` enabled touch the hit/miss counters).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Parsed-SPARQL AST cache statistics.
    pub fn ast_cache_stats(&self) -> CacheStats {
        self.parsed.lock().stats()
    }

    /// Prepared-SESQL cache statistics.
    pub fn prepared_cache_stats(&self) -> CacheStats {
        self.prepared.lock().stats()
    }

    /// Resize every engine-level cache (solutions, parsed ASTs, prepared
    /// queries). Capacity 0 disables them.
    pub fn set_cache_capacity(&self, capacity: usize) {
        self.cache.entries.lock().set_capacity(capacity);
        self.cache.pairs.lock().set_capacity(capacity);
        self.parsed.lock().set_capacity(capacity);
        self.prepared.lock().set_capacity(capacity);
    }

    /// Drop all cached SPARQL-leg results (including REPLACEVARIABLE
    /// pairs entries and their persistent relational pairs tables).
    pub fn clear_cache(&self) {
        self.cache.entries.lock().clear();
        self.cache.pairs.lock().clear();
        for table in self.cache.drain_pairs_tables() {
            let _ = self.db.catalog().drop_table(&table);
        }
    }

    /// Evaluate one SPARQL leg with version-checked caching and record it
    /// in the pipeline report.
    fn run_sparql_leg(
        &self,
        graphs: &[&str],
        sparql: &str,
        parsed: Option<&crosse_rdf::sparql::ast::Query>,
        purpose: String,
        report: &mut PipelineReport,
    ) -> Result<Solutions> {
        let version = self.kb.store().version();
        let t = Instant::now();
        // The compiled AST is cached per query text, so repeated legs skip
        // the parser even when the solution cache is off or invalidated.
        let opts =
            crosse_rdf::sparql::eval::EvalOptions { threads: self.exec_threads(), ..Default::default() };
        let evaluate = |parsed: Option<&crosse_rdf::sparql::ast::Query>| -> Result<Solutions> {
            match parsed {
                Some(q) => Ok(crosse_rdf::sparql::eval::evaluate_with(
                    self.kb.store(),
                    graphs,
                    q,
                    &opts,
                )?),
                None => {
                    let q = self.parse_cached(sparql)?;
                    Ok(crosse_rdf::sparql::eval::evaluate_with(
                        self.kb.store(),
                        graphs,
                        &q,
                        &opts,
                    )?)
                }
            }
        };
        let (sols, cached) = if self.options.use_cache {
            match self.cache.get(graphs, sparql, version) {
                Some(s) => (s, true),
                None => {
                    let s = evaluate(parsed)?;
                    self.cache.put(graphs, sparql, version, &s);
                    (s, false)
                }
            }
        } else {
            (evaluate(parsed)?, false)
        };
        let duration = t.elapsed();
        report.sparql_exec += duration;
        report.sparql_runs.push(SparqlRun {
            purpose,
            sparql: sparql.to_string(),
            solutions: sols.len(),
            duration,
            cached,
            shared: false,
        });
        Ok(sols)
    }

    pub fn with_options(mut self, options: EnrichOptions) -> Self {
        self.options = options;
        self
    }

    pub fn with_mapping(mut self, mapping: ResourceMapping) -> Self {
        self.mapping = mapping;
        self
    }

    pub fn database(&self) -> &Database {
        &self.db
    }

    pub fn knowledge_base(&self) -> &KnowledgeBase {
        &self.kb
    }

    pub fn stored_queries(&self) -> &StoredQueries {
        &self.stored
    }

    pub fn options(&self) -> EnrichOptions {
        self.options
    }

    /// Explain a SESQL query without executing the enrichment: the
    /// scanner's cleaned SQL, the bound relational plan, the tagged
    /// conditions, and — per enrichment — the SPARQL text the SQM would
    /// issue in `user`'s context. SESQL's counterpart to `EXPLAIN SELECT`.
    pub fn explain(&self, user: &str, sesql: &str) -> Result<String> {
        use std::fmt::Write;
        if !self.kb.is_registered(user) {
            return Err(Error::platform(format!("user `{user}` is not registered")));
        }
        let query = parse_sesql(sesql)?;
        let mut out = String::new();
        let _ = writeln!(out, "SESQL plan (user `{user}`)");
        let _ = writeln!(out, "clean SQL: {}", query.clean_sql.trim());
        for (id, cond) in &query.conditions {
            let _ = writeln!(out, "tagged condition {id}: {cond}");
        }
        // The cleaned SQL may reference ontology constants that only become
        // valid after the WHERE-clause enrichments rewrite them (e.g.
        // Example 4.5's `elem_name = HazardousWaste`); planning is
        // best-effort here. The plan shown is the *optimized* one — the
        // tree the executor actually runs, annotated with the rewrite
        // passes that fired.
        match self.db.plan_optimized(&query.select) {
            Ok(optimized) => {
                let _ = writeln!(out, "relational plan:");
                for line in optimized.render().lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
            Err(e) => {
                let _ = writeln!(
                    out,
                    "relational plan: deferred until WHERE enrichment ({e})"
                );
            }
        }
        let graphs = self.kb.context_graphs(user);
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        let _ = writeln!(out, "context graphs: {}", graphs.join(", "));
        for e in &query.enrichments {
            let _ = writeln!(out, "enrichment: {e}");
            let property = match e {
                Enrichment::SchemaExtension { property, .. }
                | Enrichment::SchemaReplacement { property, .. }
                | Enrichment::BoolSchemaExtension { property, .. }
                | Enrichment::BoolSchemaReplacement { property, .. }
                | Enrichment::ReplaceConstant { property, .. }
                | Enrichment::ReplaceVariable { property, .. } => property,
            };
            if let Some(stored) = self.stored.get(property) {
                let _ = writeln!(
                    out,
                    "  SPARQL leg (stored query `{}`): {}",
                    stored.name,
                    stored.sparql.replace('\n', " ")
                );
            } else {
                let predicates = self.resolve_predicates(&refs, property);
                // REPLACECONSTANT pushes its constant into the pattern as
                // resolved subject IRIs; every other enrichment fetches
                // the property's (s, o) pairs.
                let sparql = match e {
                    Enrichment::ReplaceConstant { constant, .. } => {
                        let subjects = self.resolve_constant_subjects(constant);
                        sparql_objects_query(&subjects, &predicates)
                    }
                    _ => sparql_pairs_query(&predicates, property),
                };
                let _ = writeln!(out, "  SPARQL leg: {}", sparql.replace('\n', " "));
            }
        }
        // REPLACEVARIABLE rewrites the relational side into a compound
        // (`Q1 UNION Q2` with include_self) over a materialised pairs
        // table. Show the optimized compound the engine will actually run
        // — its `Shared spool` nodes are how the optimizer de-duplicates
        // the base-table work both members read. The real pairs table
        // only exists during execution; plan against an empty stand-in.
        for e in &query.enrichments {
            let Enrichment::ReplaceVariable { cond, attr, property } = e else {
                continue;
            };
            let cond_expr = &query.conditions[cond.as_str()];
            // Prefer the live persistent pairs table (a warm engine plans
            // with zero DDL — no catalog-version churn, no cache-stat
            // perturbation: `peek` bypasses recency and counters); cold
            // engines plan against an ephemeral empty stand-in.
            let prop_key = format!("{property}\u{1f}{:?}", self.options.expand);
            let live_table = if self.options.use_cache {
                self.cache
                    .peek_pairs(&refs, &prop_key, self.kb.store().version())
                    .map(|c| c.table)
                    .filter(|t| self.db.catalog().has_table(t))
            } else {
                None
            };
            let (tmp_name, ephemeral) = match &live_table {
                Some(t) => (t.as_str(), false),
                None => ("__kb_pairs_explain", true),
            };
            let planned = if ephemeral {
                self.db
                    .materialise_owned(tmp_name, &pairs_table_schema(), Vec::new())
                    .map_err(crate::error::Error::from)
            } else {
                Ok(())
            }
            .and_then(|()| {
                let q = variable_expansion_select(
                    &query.select,
                    cond_expr,
                    attr,
                    tmp_name,
                    self.options.include_self,
                )?;
                Ok(self.db.plan_optimized(&q)?)
            });
            if ephemeral {
                let _ = self.db.catalog().drop_table(tmp_name);
            }
            match planned {
                Ok(optimized) => {
                    let _ = writeln!(
                        out,
                        "rewritten plan (REPLACEVARIABLE, include_self={}):",
                        self.options.include_self
                    );
                    for line in optimized.render().lines() {
                        let _ = writeln!(out, "  {line}");
                    }
                }
                Err(err) => {
                    let _ = writeln!(
                        out,
                        "rewritten plan (REPLACEVARIABLE): deferred ({err})"
                    );
                }
            }
        }
        // Lint footer: the same diagnostics `lint` would report, rendered
        // as trailing comment lines so EXPLAIN output stays one artifact.
        if let Ok(diags) = self.lint(user, sesql) {
            for d in &diags {
                let _ = writeln!(out, "-- lint: {d}");
            }
        }
        Ok(out)
    }

    /// Parse and execute a SESQL query in `user`'s knowledge context.
    pub fn execute(&self, user: &str, sesql: &str) -> Result<EnrichedResult> {
        let t0 = Instant::now();
        let query = parse_sesql(sesql)?;
        let parse = t0.elapsed();
        let mut result = self.execute_parsed(user, &query)?;
        result.report.parse = parse;
        Ok(result)
    }

    /// Compile a SESQL query into a [`PreparedSesql`] handle: scan, parse
    /// both grammars, collect typed parameter slots. Compilations are
    /// cached in a bounded LRU keyed by normalized text, so repeated
    /// `prepare` calls with equivalent text skip parsing entirely (check
    /// [`SesqlEngine::prepared_cache_stats`]).
    pub fn prepare(&self, sesql: &str) -> Result<PreparedSesql> {
        let key = normalize_sesql(sesql);
        let version = self.db.catalog().version();
        let stale = match self.prepared.lock().get(&key).cloned() {
            Some(cached) if cached.version == version => {
                return Ok(PreparedSesql {
                    engine: self.clone(),
                    query: cached.query,
                    slots: cached.slots,
                    warnings: cached.warnings,
                    text: key,
                    version,
                    revalidated: Arc::new(Mutex::new_labeled("prepared.revalidated", None)),
                });
            }
            // DDL since compilation: reuse the parse (text → AST is
            // pure), re-infer the slot types below.
            Some(cached) => Some(cached.query),
            None => None,
        };
        let query = match stale {
            Some(q) => q,
            None => Arc::new(parse_sesql(sesql)?),
        };
        let slots = Arc::new(crosse_relational::prepared::infer_slot_types(
            self.db.catalog(),
            &query.select,
            &query.params,
        ));
        let warnings = Arc::new(lint_sesql_static(self.db.catalog(), &query, &key));
        self.prepared.lock().put(
            key.clone(),
            CachedSesql {
                query: Arc::clone(&query),
                slots: Arc::clone(&slots),
                warnings: Arc::clone(&warnings),
                version,
            },
        );
        Ok(PreparedSesql {
            engine: self.clone(),
            query,
            slots,
            warnings,
            text: key,
            version,
            revalidated: Arc::new(Mutex::new_labeled("prepared.revalidated", None)),
        })
    }

    /// Lint a SESQL (or plain SQL) statement in `user`'s knowledge
    /// context without executing it: the relational rules (`L…`) over the
    /// cleaned SELECT, the enrichment-structure rules (`E001`/`E002`),
    /// the context-dependent property check (`E003`), and the SPARQL
    /// rules (`S…`) over any stored queries the enrichments reference.
    pub fn lint(&self, user: &str, sesql: &str) -> Result<Vec<Diagnostic>> {
        if !self.kb.is_registered(user) {
            return Err(Error::platform(format!("user `{user}` is not registered")));
        }
        let query = parse_sesql(sesql)?;
        let mut out = lint_sesql_static(self.db.catalog(), &query, sesql);

        let graphs = self.kb.context_graphs(user);
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        let known_predicates = self.kb.store().distinct_predicates(&refs);
        let mut checked: Vec<&str> = Vec::new();
        for e in &query.enrichments {
            let property = match e {
                Enrichment::SchemaExtension { property, .. }
                | Enrichment::SchemaReplacement { property, .. }
                | Enrichment::BoolSchemaExtension { property, .. }
                | Enrichment::BoolSchemaReplacement { property, .. }
                | Enrichment::ReplaceConstant { property, .. }
                | Enrichment::ReplaceVariable { property, .. } => property.as_str(),
            };
            if checked.contains(&property) {
                continue;
            }
            checked.push(property);
            if let Some(stored) = self.stored.get(property) {
                // The stored query is user-written SPARQL: run the S-rules
                // over it, attributing each finding to the registry name.
                if let Ok(parsed) = crosse_rdf::sparql::parser::parse_any(&stored.sparql) {
                    for mut d in crosse_rdf::sparql::lint::lint_parsed(&parsed, &stored.sparql) {
                        d.message =
                            format!("in stored query `{}`: {}", stored.name, d.message);
                        // The span indexes the stored query's text, not
                        // the SESQL statement being linted.
                        d.span = None;
                        out.push(d);
                    }
                }
            } else if !property.contains("://")
                && !known_predicates.iter().any(|p| p.matches_lexical(property))
            {
                out.push(
                    Diagnostic::warning(
                        "E003",
                        format!(
                            "`{property}` is neither a registered stored query nor a \
                             predicate in the context graphs; its SPARQL leg will \
                             return no solutions"
                        ),
                    )
                    .try_span_of(sesql, property),
                );
            }
        }
        Ok(out)
    }

    /// Execute an already-parsed SESQL query.
    pub fn execute_parsed(&self, user: &str, query: &SesqlQuery) -> Result<EnrichedResult> {
        if !self.kb.is_registered(user) {
            return Err(Error::platform(format!("user `{user}` is not registered")));
        }
        let mut report = PipelineReport::default();

        // -------- Phase A: WHERE-clause enrichments (AST rewrites) --------
        let mut select = query.select.clone();
        let mut variable_ops: Vec<&Enrichment> = Vec::new();
        for e in &query.enrichments {
            match e {
                Enrichment::ReplaceConstant { cond, constant, property } => {
                    let values =
                        self.replacement_values(user, constant, property, e, &mut report)?;
                    let cond_expr = &query.conditions[cond];
                    let rewritten =
                        rewrite_constant(cond_expr.clone(), constant, &values)?;
                    replace_condition(&mut select, cond_expr, rewritten)?;
                }
                Enrichment::ReplaceVariable { .. } => variable_ops.push(e),
                _ => {}
            }
        }
        if variable_ops.len() > 1 {
            return Err(Error::sqm(
                "at most one REPLACEVARIABLE clause per query is supported",
            ));
        }

        // -------- Phase B: the SQL leg ------------------------------------
        let t = Instant::now();
        let mut rows = match variable_ops.first() {
            None => self.db.run_select(&select)?,
            Some(Enrichment::ReplaceVariable { cond, attr, property }) => self
                .execute_with_variable_expansion(
                    user,
                    &select,
                    &query.conditions[cond.as_str()],
                    attr,
                    property,
                    &mut report,
                )?,
            Some(_) => unreachable!("filtered above"),
        };
        report.sql_exec = t.elapsed();
        report.base_rows = rows.len();

        // -------- Phase C: schema enrichments (SPARQL + JoinManager) ------
        let mut applied: Vec<AppliedColumn> = Vec::new();
        for e in &query.enrichments {
            match e {
                Enrichment::SchemaExtension { attr, property }
                | Enrichment::SchemaReplacement { attr, property } => {
                    let replaces = matches!(e, Enrichment::SchemaReplacement { .. });
                    let attr_index = resolve_attr(&rows, attr)?;
                    let sols =
                        self.property_pairs(user, property, e.to_string(), &mut report)?;
                    let sols = apply_multi_policy(sols, self.options.multi);
                    let added_index = rows.schema.len();
                    let tmp_col = format!("__enr{added_index}");
                    let spec = JoinSpec {
                        column: rows.schema.columns[attr_index].display_name(),
                        variable: "s".into(),
                        kind: CombineKind::LeftOuter,
                        take: vec![("o".into(), tmp_col)],
                        strategy: self.attr_strategy(&rows.schema, attr_index),
                    };
                    let t = Instant::now();
                    rows = combine_in(&rows, &sols, &spec, self.db.interner())?;
                    report.join += t.elapsed();
                    applied.push(AppliedColumn {
                        attr_index,
                        added_index,
                        output_name: local_label(property),
                        replaces_attr: replaces,
                    });
                }
                Enrichment::BoolSchemaExtension { attr, property, concept }
                | Enrichment::BoolSchemaReplacement { attr, property, concept } => {
                    let replaces =
                        matches!(e, Enrichment::BoolSchemaReplacement { .. });
                    let attr_index = resolve_attr(&rows, attr)?;
                    let sols =
                        self.property_pairs(user, property, e.to_string(), &mut report)?;
                    let t = Instant::now();
                    let subjects = concept_subjects(&sols, concept)?;
                    let strategy = self.attr_strategy(&rows.schema, attr_index);
                    let added_index = rows.schema.len();
                    rows = append_bool_column(
                        rows,
                        attr_index,
                        &subjects,
                        &strategy,
                        &format!("__enr{added_index}"),
                    );
                    report.join += t.elapsed();
                    applied.push(AppliedColumn {
                        attr_index,
                        added_index,
                        output_name: local_label(concept),
                        replaces_attr: replaces,
                    });
                }
                Enrichment::ReplaceConstant { .. } | Enrichment::ReplaceVariable { .. } => {}
            }
        }

        // -------- Phase D: temporary support DB + final SQL ---------------
        let t = Instant::now();
        let final_rows = if applied.is_empty() {
            rows
        } else {
            self.finalize(rows, &applied)?
        };
        report.final_sql = t.elapsed();
        report.result_rows = final_rows.len();

        Ok(EnrichedResult { rows: final_rows, report })
    }

    /// Execute an already-parsed (and fully bound) SESQL query, returning
    /// the streaming cursor shape. Un-enriched queries stream straight
    /// from the relational executor — a `LIMIT` stops the base-table scan
    /// early — while enriched queries run the Fig. 6 pipeline and stream
    /// the final rows out of it.
    pub fn execute_parsed_cursor(
        &self,
        user: &str,
        query: &SesqlQuery,
    ) -> Result<crate::session::EnrichedRows> {
        if query.has_params() {
            return Err(Error::sqm(
                "query has unbound parameters — bind them before execution",
            ));
        }
        if !query.is_enriched() {
            if !self.kb.is_registered(user) {
                return Err(Error::platform(format!("user `{user}` is not registered")));
            }
            let plan =
                crosse_relational::plan::plan_select(self.db.catalog(), &query.select)?;
            let rows = crosse_relational::Rows::from_plan(plan)?;
            return Ok(crate::session::EnrichedRows::streaming(rows));
        }
        let result = self.execute_parsed(user, query)?;
        Ok(crate::session::EnrichedRows::from_result(result))
    }

    /// Materialise the working rows into the temporary support database and
    /// issue the final SQL query that renames/reorders enrichment columns
    /// (Fig. 6's last stage).
    fn finalize(&self, rows: RowSet, applied: &[AppliedColumn]) -> Result<RowSet> {
        // Synthetic unique column names for the temp table.
        let tmp_schema = Schema::new(
            rows.schema
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| Column::new(format!("c{i}"), c.data_type))
                .collect(),
        );
        let tmp_rows = RowSet { schema: tmp_schema, rows: rows.rows.clone() };

        // Output plan: every base column in order, with replacements
        // substituting the enrichment column at the attr's position and
        // extensions appended at the end (in clause order).
        let base_len = rows
            .schema
            .columns
            .iter()
            .enumerate()
            .filter(|(i, _)| !applied.iter().any(|a| a.added_index == *i))
            .count();
        let mut items: Vec<(usize, String)> = Vec::new(); // (tmp col idx, out name)
        for i in 0..base_len {
            if let Some(a) = applied.iter().find(|a| a.replaces_attr && a.attr_index == i) {
                items.push((a.added_index, a.output_name.clone()));
            } else {
                items.push((i, rows.schema.columns[i].display_name()));
            }
        }
        for a in applied.iter().filter(|a| !a.replaces_attr) {
            items.push((a.added_index, a.output_name.clone()));
        }
        // De-duplicate output names (SQL result sets may repeat names, but
        // the enriched result is easier to consume with unique ones).
        let mut seen: Vec<String> = Vec::new();
        for (_, name) in &mut items {
            let base = name.clone();
            let mut n = 1;
            while seen.iter().any(|s| s.eq_ignore_ascii_case(name)) {
                n += 1;
                *name = format!("{base}_{n}");
            }
            seen.push(name.clone());
        }

        let projections: Vec<String> = items
            .iter()
            .map(|(i, name)| format!("c{i} AS \"{name}\""))
            .collect();
        self.tempdb
            .with_table(&tmp_rows, |t| {
                format!("SELECT {} FROM {t}", projections.join(", "))
            })
            .map_err(Into::into)
    }

    /// Strategy for matching an output column against RDF terms, from the
    /// resource mapping (qualifier stands in for the table name).
    fn attr_strategy(&self, schema: &Schema, attr_index: usize) -> MapStrategy {
        let col = &schema.columns[attr_index];
        self.mapping
            .strategy(col.qualifier.as_deref().unwrap_or(""), &col.name)
    }

    /// Generate + run the SPARQL leg returning (subject, object) pairs for
    /// a property name in the user's context.
    fn property_pairs(
        &self,
        user: &str,
        property: &str,
        purpose: String,
        report: &mut PipelineReport,
    ) -> Result<Solutions> {
        let graphs = self.kb.context_graphs(user);
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        let predicates = self.resolve_predicates(&refs, property);
        let sparql = sparql_pairs_query(&predicates, property);
        self.run_sparql_leg(&refs, &sparql, None, purpose, report)
    }

    /// Resolve a property argument to concrete predicate IRIs: an argument
    /// containing `://` is used verbatim; otherwise every predicate in the
    /// user's context whose local name equals the argument matches.
    fn resolve_predicates(&self, graphs: &[&str], property: &str) -> Vec<Term> {
        if property.contains("://") {
            return vec![Term::iri(property)];
        }
        let matching: Vec<Term> = self
            .kb
            .store()
            .distinct_predicates(graphs)
            .into_iter()
            .filter(|p| p.matches_lexical(property))
            .collect();
        if matching.is_empty() {
            // Keep the literal name: the generated query still runs (and
            // returns no solutions), which is the honest outcome for an
            // unknown property.
            vec![Term::iri(property)]
        } else {
            matching
        }
    }

    /// Resolve a constant argument to concrete subject IRIs: an argument
    /// containing `://` is used verbatim; otherwise every IRI in the
    /// store's dictionary whose local name (or full text) equals the
    /// argument is a candidate — the ID-native evaluator short-circuits
    /// candidates that never occur as subjects, so over-approximating
    /// costs nothing.
    fn resolve_constant_subjects(&self, constant: &str) -> Vec<Term> {
        if constant.contains("://") {
            return vec![Term::iri(constant)];
        }
        let matching = self.kb.store().dictionary().iris_matching_lexical(constant);
        if matching.is_empty() {
            // Keep the literal name: the generated query still runs (and
            // returns no solutions), the honest outcome for an unknown
            // constant.
            vec![Term::iri(constant)]
        } else {
            matching
        }
    }

    /// Values replacing an ontology constant (paper Sec. IV-A.5): a stored
    /// SPARQL query's output if `property` names one, else the objects of
    /// `<constant> <property> ?o` — with the constant resolved and pushed
    /// into the SPARQL pattern, so the leg fetches only the constant's own
    /// objects instead of every (s, o) pair of the property.
    fn replacement_values(
        &self,
        user: &str,
        constant: &str,
        property: &str,
        e: &Enrichment,
        report: &mut PipelineReport,
    ) -> Result<Vec<Value>> {
        let interner = self.db.interner();
        if let Some(stored) = self.stored.get(property) {
            let graphs = self.kb.context_graphs(user);
            let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
            let sols = self.run_sparql_leg(
                &refs,
                &stored.sparql,
                Some(&stored.query),
                e.to_string(),
                report,
            )?;
            let terms = sols.column(&stored.output_variable)?;
            return Ok(terms.iter().map(|t| term_to_value_in(t, interner)).collect());
        }
        // Property-based: objects of (constant, property, ?o).
        let graphs = self.kb.context_graphs(user);
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        let predicates = self.resolve_predicates(&refs, property);
        let subjects = self.resolve_constant_subjects(constant);
        let sparql = sparql_objects_query(&subjects, &predicates);
        let sols = self.run_sparql_leg(&refs, &sparql, None, e.to_string(), report)?;
        let o_idx = sols.var_index("o").expect("objects query binds ?o");
        let mut seen: std::collections::HashSet<Value> =
            std::collections::HashSet::with_capacity(sols.rows.len());
        let mut out = Vec::with_capacity(sols.rows.len());
        for row in &sols.rows {
            if let Some(o) = &row[o_idx] {
                let v = term_to_value_in(o, interner);
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            }
        }
        Ok(out)
    }

    /// The materialised relational pairs table for `property` in `user`'s
    /// context — the oriented, deduplicated KB pairs rows of the
    /// REPLACEVARIABLE expansion. A row (a, b) means "a value equal to
    /// `a` may also match as `b`"; the expansion direction decides the
    /// orientation(s). With caching on, the entry (keyed by context
    /// graphs, property + direction, KB version) keeps its table alive in
    /// the catalog across executions: a warm run skips the SPARQL leg,
    /// the term→value conversion *and* the re-materialisation (no catalog
    /// version churn), reporting the leg as `cached + shared`. Returns
    /// `(table name, persistent)`; a non-persistent table is the caller's
    /// to drop.
    fn pairs_table(
        &self,
        user: &str,
        property: &str,
        purpose: String,
        report: &mut PipelineReport,
    ) -> Result<(String, bool)> {
        let graphs = self.kb.context_graphs(user);
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        let version = self.kb.store().version();
        let prop_key = format!("{property}\u{1f}{:?}", self.options.expand);
        if self.options.use_cache {
            if let Some(cached) = self.cache.get_pairs(&refs, &prop_key, version) {
                if !self.db.catalog().has_table(&cached.table) {
                    // The table was dropped behind our back (explicit DDL);
                    // re-materialise it from the cached rows.
                    self.db.materialise_owned(
                        &cached.table,
                        &pairs_table_schema(),
                        cached.rows.as_ref().clone(),
                    )?;
                }
                report.sparql_runs.push(SparqlRun {
                    purpose,
                    sparql: cached.sparql,
                    solutions: cached.solutions,
                    duration: Duration::ZERO,
                    cached: true,
                    shared: true,
                });
                return Ok((cached.table, true));
            }
        }
        let sols = self.property_pairs(user, property, purpose, report)?;
        let sparql = report
            .sparql_runs
            .last()
            .map(|r| r.sparql.clone())
            .unwrap_or_default();
        let s_idx = sols.var_index("s").expect("pairs query binds ?s");
        let o_idx = sols.var_index("o").expect("pairs query binds ?o");
        let interner = self.db.interner();
        let symmetric = self.options.expand == ExpandDirection::Symmetric;
        let capacity = sols.rows.len() * if symmetric { 2 } else { 1 };
        // Hash-dedup (first-seen order) instead of sort+dedup: O(n) with
        // cheap interned keys, and no O(n log n) comparison pass.
        let mut seen: std::collections::HashSet<(Value, Value)> =
            std::collections::HashSet::with_capacity(capacity);
        let mut rows: Vec<Row> = Vec::with_capacity(capacity);
        let mut push = |a: Value, b: Value, rows: &mut Vec<Row>| {
            if seen.insert((a.clone(), b.clone())) {
                rows.push(vec![a, b]);
            }
        };
        for r in &sols.rows {
            if let (Some(s), Some(o)) = (&r[s_idx], &r[o_idx]) {
                let (sv, ov) = (term_to_value_in(s, interner), term_to_value_in(o, interner));
                match self.options.expand {
                    ExpandDirection::Forward => push(sv, ov, &mut rows),
                    ExpandDirection::Inverse => push(ov, sv, &mut rows),
                    ExpandDirection::Symmetric => {
                        push(sv.clone(), ov.clone(), &mut rows);
                        push(ov, sv, &mut rows);
                    }
                }
            }
        }
        // Unique per materialisation: concurrent REPLACEVARIABLE queries
        // (and successive KB versions) never collide on a table name.
        static PAIRS_SEQ: std::sync::atomic::AtomicU64 =
            std::sync::atomic::AtomicU64::new(0);
        let table = format!(
            "__kb_pairs_{}",
            PAIRS_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        );
        if self.options.use_cache {
            self.db
                .materialise_owned(&table, &pairs_table_schema(), rows.clone())?;
            let displaced = self.cache.put_pairs(
                &refs,
                &prop_key,
                CachedPairs {
                    version,
                    sparql,
                    solutions: sols.len(),
                    rows: Arc::new(rows),
                    table: table.clone(),
                },
            );
            for old in displaced {
                let _ = self.db.catalog().drop_table(&old);
            }
            Ok((table, true))
        } else {
            self.db.materialise_owned(&table, &pairs_table_schema(), rows)?;
            Ok((table, false))
        }
    }

    /// REPLACEVARIABLE execution strategy: the ontology pairs for `prop`
    /// are materialised as a temporary relational table; a rewritten query
    /// joins through it so the tagged condition also matches through
    /// related values; when `include_self` is set the original query's rows
    /// are united in (deduplicated).
    fn execute_with_variable_expansion(
        &self,
        user: &str,
        select: &Select,
        cond_expr: &Expr,
        attr: &str,
        property: &str,
        report: &mut PipelineReport,
    ) -> Result<RowSet> {
        // A persistent pairs table belongs to the cache entry, and a
        // concurrent replacement/eviction/`clear_cache` may drop it
        // between `pairs_table` handing us its name and the SELECT
        // resolving it. That race is legitimate (the dropper couldn't
        // know we were in flight), so one retry re-fetches the table —
        // re-materialising or rebuilding it as needed.
        for attempt in 0..2 {
            let (tmp_name, persistent) = self.pairs_table(
                user,
                property,
                format!("REPLACEVARIABLE(_, {attr}, {property})"),
                report,
            )?;
            let run = (|| -> Result<RowSet> {
                let query = variable_expansion_select(
                    select,
                    cond_expr,
                    attr,
                    &tmp_name,
                    self.options.include_self,
                )?;
                Ok(self.db.run_select(&query)?)
            })();
            // A cache-backed table stays for the next execution (the
            // cache entry owns it); an uncached one is dropped now.
            if !persistent {
                let _ = self.db.catalog().drop_table(&tmp_name);
            }
            match run {
                Err(e)
                    if attempt == 0
                        && persistent
                        && e.to_string().contains(&tmp_name) =>
                {
                    continue;
                }
                other => return other,
            }
        }
        unreachable!("loop returns on the second attempt")
    }
}

/// Schema of a materialised REPLACEVARIABLE pairs table.
fn pairs_table_schema() -> Schema {
    Schema::new(vec![
        Column::new("subj", DataType::Text),
        Column::new("obj", DataType::Text),
    ])
}

/// Build the rewritten SELECT for a REPLACEVARIABLE expansion over the
/// materialised pairs table `tmp_name`: Q2 adds the pairs table to the
/// FROM clause and rewrites the tagged condition so the enriched
/// attribute matches *through* a pair. With `include_self` the emitted
/// statement is the native compound `Q1 UNION Q2` — no longer an opaque
/// second copy of the original query: the relational optimizer's
/// common-subplan pass fingerprints the base-table subtrees both members
/// read and rewrites them to one shared, spooled scan per table, so Q1's
/// scan work runs once per execution (visible as `Shared spool` nodes in
/// `EXPLAIN`). Without `include_self`, Q2 runs alone under DISTINCT (the
/// expansion can hit several KB pairs per row; the paper's replacement
/// semantics are set-oriented).
fn variable_expansion_select(
    select: &Select,
    cond_expr: &Expr,
    attr: &str,
    tmp_name: &str,
    include_self: bool,
) -> Result<Select> {
    let alias = "__exp";
    let (qualifier, name) = split_attr(attr);
    let attr_col = Expr::Column { qualifier, name };
    let expanded_cond = {
        let target = attr_col.clone();
        let replacement = Expr::qcol(alias, "obj");
        let rewritten = cond_expr.clone().rewrite(&mut |node| {
            if node == target {
                replacement.clone()
            } else {
                node
            }
        });
        if rewritten == *cond_expr {
            return Err(Error::sqm(format!(
                "REPLACEVARIABLE: attribute `{attr}` does not occur in the \
                 tagged condition `{cond_expr}`"
            )));
        }
        Expr::and(Expr::eq(Expr::qcol(alias, "subj"), attr_col), rewritten)
    };
    let mut q2 = select.clone();
    q2.from.push(TableRef::Table {
        name: tmp_name.to_string(),
        alias: Some(alias.to_string()),
    });
    replace_condition(&mut q2, cond_expr, expanded_cond)?;

    if include_self {
        let mut compound = select.clone();
        compound.union.push((false, q2));
        Ok(compound)
    } else {
        q2.distinct = true;
        Ok(q2)
    }
}

/// A compiled SESQL query with typed parameter slots, bound to its engine.
///
/// The prepare/execute split of the relational layer, lifted to SESQL:
/// [`PreparedSesql::execute`] binds values, runs the full enrichment
/// pipeline and returns the classic [`EnrichedResult`];
/// [`PreparedSesql::execute_cursor`] returns the streaming shape (see
/// [`crate::session::Rows`]) — for un-enriched queries that path streams
/// straight off the relational executor, so `LIMIT` stops the scan early.
#[derive(Clone)]
pub struct PreparedSesql {
    engine: SesqlEngine,
    query: Arc<SesqlQuery>,
    slots: Arc<Vec<crosse_relational::SlotInfo>>,
    text: String,
    /// Catalog version the slot types were inferred against; executions
    /// after DDL re-infer against the live catalog (memoised below), so a
    /// live handle held across `DROP TABLE` + re-`CREATE` binds with
    /// fresh expectations — mirroring the relational `Prepared`.
    version: u64,
    revalidated: Arc<Mutex<RevalidatedSesqlSlots>>,
    /// Lint findings from prepare time (the user-independent rules; see
    /// [`SesqlEngine::lint`] for the context-dependent ones).
    warnings: Arc<Vec<Diagnostic>>,
}

/// The latest `(catalog version, re-inferred slots)` pair of a
/// [`PreparedSesql`] handle (empty until the first post-DDL execution).
type RevalidatedSesqlSlots = Option<(u64, Arc<Vec<crosse_relational::SlotInfo>>)>;

/// The user-independent SESQL lint: relational rules over the cleaned
/// SELECT (params allowed — binding them is what prepare is for) plus the
/// enrichment-structure rules:
///
/// * `E001` (warning): a tagged condition `${…:id}` is never referenced by
///   any WHERE-clause enrichment — the tag is dead syntax.
/// * `E002` (error): a `REPLACECONSTANT`/`REPLACEVARIABLE` clause names a
///   condition id that no tag defines; the rewrite has nothing to rewrite.
fn lint_sesql_static(
    catalog: &crosse_relational::storage::Catalog,
    query: &SesqlQuery,
    source: &str,
) -> Vec<Diagnostic> {
    let mut out =
        crosse_relational::lint::lint_select(catalog, &query.select, source, true);
    let referenced: Vec<&str> = query
        .enrichments
        .iter()
        .filter_map(|e| e.condition_id())
        .collect();
    let mut unused: Vec<&String> = query
        .conditions
        .keys()
        .filter(|id| !referenced.contains(&id.as_str()))
        .collect();
    unused.sort(); // HashMap order is arbitrary; snapshots need stability.
    for id in unused {
        out.push(
            Diagnostic::warning(
                "E001",
                format!("tagged condition `{id}` is not referenced by any enrichment"),
            )
            .try_span_of(source, &format!(":{id}")),
        );
    }
    for e in &query.enrichments {
        if let Some(cond) = e.condition_id() {
            if !query.conditions.contains_key(cond) {
                out.push(
                    Diagnostic::error(
                        "E002",
                        format!(
                            "{} references unknown condition tag `{cond}`",
                            e.keyword()
                        ),
                    )
                    .try_span_of(source, cond),
                );
            }
        }
    }
    out
}

impl PreparedSesql {
    /// The parameter slots as inferred at prepare time, in binding order.
    pub fn param_slots(&self) -> &[crosse_relational::SlotInfo] {
        &self.slots
    }

    /// Lint findings attached at prepare time (the user-independent
    /// rules: relational `L…` plus `E001`/`E002`). Empty for clean
    /// queries.
    pub fn warnings(&self) -> &[Diagnostic] {
        &self.warnings
    }

    /// Slot types valid for the *current* catalog: the prepare-time
    /// inference while no DDL has happened, else a memoised re-inference.
    fn current_slots(&self) -> Arc<Vec<crosse_relational::SlotInfo>> {
        let version = self.engine.db.catalog().version();
        if version == self.version {
            return Arc::clone(&self.slots);
        }
        let mut memo = self.revalidated.lock();
        match memo.as_ref() {
            Some((v, cached)) if *v == version => Arc::clone(cached),
            _ => {
                let fresh = Arc::new(crosse_relational::prepared::infer_slot_types(
                    self.engine.db.catalog(),
                    &self.query.select,
                    &self.query.params,
                ));
                *memo = Some((version, Arc::clone(&fresh)));
                fresh
            }
        }
    }

    /// Normalized query text (the prepared-cache key).
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The parsed (still parameterised) query.
    pub fn query(&self) -> &SesqlQuery {
        &self.query
    }

    /// Bind `params` into a parameter-free [`SesqlQuery`].
    pub fn bind(&self, params: &crosse_relational::Params) -> Result<SesqlQuery> {
        use crosse_relational::prepared::{resolve_params, substitute_expr, substitute_select};
        if self.slots.is_empty() {
            return Ok((*self.query).clone());
        }
        let values = resolve_params(&self.current_slots(), params)?;
        let mut bound = (*self.query).clone();
        bound.select = substitute_select(bound.select, &values);
        bound.conditions = bound
            .conditions
            .into_iter()
            .map(|(id, e)| (id, substitute_expr(e, &values)))
            .collect();
        bound.params = Vec::new();
        Ok(bound)
    }

    /// Bind and execute in `user`'s context, materialising the enriched
    /// result (no re-parse; the pipeline report's `parse` stage is zero).
    pub fn execute(
        &self,
        user: &str,
        params: &crosse_relational::Params,
    ) -> Result<EnrichedResult> {
        let bound = self.bind(params)?;
        self.engine.execute_parsed(user, &bound)
    }

    /// Bind and execute, returning the streaming cursor shape.
    pub fn execute_cursor(
        &self,
        user: &str,
        params: &crosse_relational::Params,
    ) -> Result<crate::session::EnrichedRows> {
        let bound = self.bind(params)?;
        self.engine.execute_parsed_cursor(user, &bound)
    }
}

/// Quote-aware whitespace normalization of SESQL text (the prepared-cache
/// key): runs of whitespace outside `'...'` / `"..."` collapse to one
/// space. Keyword case is left alone — SESQL's enrichment grammar is
/// case-insensitive but its arguments are not, and a cache miss on case
/// only costs a re-parse.
pub fn normalize_sesql(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    let mut pending_space = false;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            pending_space = !out.is_empty();
            i += 1;
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if c == b'\'' || c == b'"' {
            // Copy the quoted region verbatim (doubled-quote escapes).
            let quote = c;
            out.push(c as char);
            i += 1;
            while i < bytes.len() {
                let b = bytes[i];
                out.push(b as char);
                i += 1;
                if b == quote {
                    if bytes.get(i) == Some(&quote) {
                        out.push(quote as char);
                        i += 1;
                    } else {
                        break;
                    }
                }
            }
            continue;
        }
        let ch = text[i..].chars().next().expect("in bounds");
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

// ---- helpers ---------------------------------------------------------------

/// Attr arguments may be qualified (`Elecond2.elem_name`).
fn split_attr(attr: &str) -> (Option<String>, String) {
    match attr.split_once('.') {
        Some((q, n)) => (Some(q.to_string()), n.to_string()),
        None => (None, attr.to_string()),
    }
}

/// Index of the enriched attribute in the base result schema.
fn resolve_attr(rows: &RowSet, attr: &str) -> Result<usize> {
    rows.column_index(attr).ok_or_else(|| {
        Error::sqm(format!(
            "enriched attribute `{attr}` is not an output column of the SQL query \
             (available: {})",
            rows.schema
                .columns
                .iter()
                .map(|c| c.display_name())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    })
}

/// Human-facing column label from a property/concept argument: the local
/// name for IRIs, the text itself otherwise.
fn local_label(arg: &str) -> String {
    Term::iri(arg).local_name().to_string()
}

/// A term as it appears inside a generated SPARQL pattern.
fn pattern_iri(t: &Term) -> &str {
    match t {
        Term::Iri(i) => i,
        other => other.lexical_form(),
    }
}

/// Generate the pairs SPARQL text for a set of candidate predicates.
fn sparql_pairs_query(predicates: &[Term], property: &str) -> String {
    let branch = |p: &Term| format!("?s <{}> ?o", pattern_iri(p));
    match predicates {
        [] => format!("SELECT ?s ?o WHERE {{ ?s <{property}> ?o }}"),
        [single] => format!("SELECT ?s ?o WHERE {{ {} }}", branch(single)),
        many => {
            let branches: Vec<String> =
                many.iter().map(|p| format!("{{ {} }}", branch(p))).collect();
            format!("SELECT ?s ?o WHERE {{ {} }}", branches.join(" UNION "))
        }
    }
}

/// Generate the objects SPARQL text for resolved constant subjects ×
/// candidate predicates: `SELECT ?o WHERE { <s> <p> ?o }`, UNION-ing over
/// every (subject, predicate) combination. This pushes a REPLACECONSTANT
/// argument into the pattern, so the knowledge base is probed by constant
/// instead of streamed and filtered client-side.
fn sparql_objects_query(subjects: &[Term], predicates: &[Term]) -> String {
    let mut branches: Vec<String> = Vec::with_capacity(subjects.len() * predicates.len());
    for s in subjects {
        for p in predicates {
            branches.push(format!("<{}> <{}> ?o", pattern_iri(s), pattern_iri(p)));
        }
    }
    match branches.as_slice() {
        [single] => format!("SELECT ?o WHERE {{ {single} }}"),
        many => {
            let parts: Vec<String> = many.iter().map(|b| format!("{{ {b} }}")).collect();
            format!("SELECT ?o WHERE {{ {} }}", parts.join(" UNION "))
        }
    }
}

/// Apply the multi-value policy to (s, o) solutions.
fn apply_multi_policy(sols: Solutions, policy: MultiValuePolicy) -> Solutions {
    if policy == MultiValuePolicy::RowPerMatch {
        return sols;
    }
    let s_idx = sols.var_index("s").expect("pairs query binds ?s");
    let o_idx = sols.var_index("o").expect("pairs query binds ?o");
    let mut order: Vec<Term> = Vec::new();
    let mut objects: std::collections::HashMap<Term, Vec<Term>> =
        std::collections::HashMap::new();
    for row in &sols.rows {
        if let (Some(s), Some(o)) = (&row[s_idx], &row[o_idx]) {
            let entry = objects.entry(s.clone()).or_insert_with(|| {
                order.push(s.clone());
                Vec::new()
            });
            entry.push(o.clone());
        }
    }
    let rows = order
        .into_iter()
        .map(|s| {
            let os = &objects[&s];
            let o = match policy {
                MultiValuePolicy::FirstMatch => os[0].clone(),
                MultiValuePolicy::Concatenate => {
                    if os.len() == 1 {
                        os[0].clone()
                    } else {
                        Term::lit(
                            os.iter()
                                .map(|t| t.lexical_form().to_string())
                                .collect::<Vec<_>>()
                                .join("; "),
                        )
                    }
                }
                MultiValuePolicy::RowPerMatch => unreachable!(),
            };
            let mut row = vec![None; sols.variables.len()];
            row[s_idx] = Some(s);
            row[o_idx] = Some(o);
            row
        })
        .collect();
    Solutions { variables: sols.variables, rows }
}

/// Subjects related to `concept` in (s, o) solutions.
fn concept_subjects(sols: &Solutions, concept: &str) -> Result<Vec<Term>> {
    let s_idx = sols
        .var_index("s")
        .ok_or_else(|| Error::sqm("pairs query must bind ?s"))?;
    let o_idx = sols
        .var_index("o")
        .ok_or_else(|| Error::sqm("pairs query must bind ?o"))?;
    let mut out = Vec::new();
    for row in &sols.rows {
        if let (Some(s), Some(o)) = (&row[s_idx], &row[o_idx]) {
            if o.matches_lexical(concept) && !out.contains(s) {
                out.push(s.clone());
            }
        }
    }
    Ok(out)
}

/// Append a boolean column: true iff the row's attr value denotes one of
/// `subjects` (paper Sec. IV-A.3: "all the other values will be associated
/// to the value false").
fn append_bool_column(
    rows: RowSet,
    attr_index: usize,
    subjects: &[Term],
    strategy: &MapStrategy,
    name: &str,
) -> RowSet {
    let mut schema = rows.schema;
    schema.columns.push(Column::new(name.to_string(), DataType::Bool));
    let rows_out = rows
        .rows
        .into_iter()
        .map(|mut r| {
            let hit = !r[attr_index].is_null()
                && subjects.iter().any(|s| strategy.matches(&r[attr_index], s));
            r.push(Value::Bool(hit));
            r
        })
        .collect();
    RowSet { schema, rows: rows_out }
}

/// Rewrite an ontology constant inside a tagged condition into the
/// replacement value set. The constant may appear as a bare identifier
/// (paper Ex. 4.5's `HazardousWaste`) or as a string literal; it must sit
/// on one side of a comparison.
fn rewrite_constant(cond: Expr, constant: &str, values: &[Value]) -> Result<Expr> {
    fn is_marker(e: &Expr, constant: &str) -> bool {
        match e {
            Expr::Column { qualifier: None, name } => name == constant,
            Expr::Literal(Value::Str(s)) => s == constant,
            _ => false,
        }
    }

    let list: Vec<Expr> = values.iter().map(|v| Expr::Literal(v.clone())).collect();
    let mut replaced = false;
    let rewritten = cond.clone().rewrite(&mut |node| {
        if let Expr::Binary { left, op, right } = &node {
            let (other, marker_side) = if is_marker(right, constant) {
                (left.as_ref().clone(), true)
            } else if is_marker(left, constant) {
                (right.as_ref().clone(), false)
            } else {
                return node;
            };
            replaced = true;
            return match op {
                BinaryOp::Eq => Expr::InList {
                    expr: Box::new(other),
                    list: list.clone(),
                    negated: false,
                },
                BinaryOp::NotEq => Expr::InList {
                    expr: Box::new(other),
                    list: list.clone(),
                    negated: true,
                },
                op => {
                    // attr < Const → ∃ v: attr < v (existential over the
                    // replacement set).
                    let op = *op;
                    list.iter()
                        .map(|v| {
                            if marker_side {
                                Expr::binary(other.clone(), op, v.clone())
                            } else {
                                Expr::binary(v.clone(), op, other.clone())
                            }
                        })
                        .reduce(Expr::or)
                        .unwrap_or(Expr::lit(false))
                }
            };
        }
        node
    });
    if !replaced {
        return Err(Error::sqm(format!(
            "REPLACECONSTANT: constant `{constant}` does not occur in a comparison \
             inside the tagged condition `{cond}`"
        )));
    }
    Ok(rewritten)
}

/// Replace the subtree equal to `target` inside the WHERE clause.
fn replace_condition(select: &mut Select, target: &Expr, replacement: Expr) -> Result<()> {
    let Some(filter) = select.filter.take() else {
        return Err(Error::sqm(
            "query has no WHERE clause, nothing to enrich",
        ));
    };
    let mut hit = false;
    let new_filter = filter.rewrite(&mut |node| {
        if !hit && node == *target {
            hit = true;
            replacement.clone()
        } else {
            node
        }
    });
    if !hit {
        select.filter = Some(new_filter);
        return Err(Error::sqm(format!(
            "tagged condition `{target}` not found in the WHERE clause"
        )));
    }
    select.filter = Some(new_filter);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosse_rdf::store::Triple;

    fn iri(s: &str) -> Term {
        Term::iri(s)
    }
    fn lit(s: &str) -> Term {
        Term::lit(s)
    }

    #[test]
    fn static_lint_catches_unknown_condition_in_built_query() {
        // The parser rejects unknown tags, so construct the defect
        // directly: an enrichment naming a condition no tag defines.
        let db = Database::new();
        db.execute("CREATE TABLE t (a TEXT)").unwrap();
        let src = "SELECT a FROM t";
        let mut query = parse_sesql(src).unwrap();
        query.enrichments.push(Enrichment::ReplaceVariable {
            cond: "ghost".into(),
            attr: "a".into(),
            property: "p".into(),
        });
        let diags = lint_sesql_static(db.catalog(), &query, src);
        assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E002"]);
        assert_eq!(diags[0].severity, crosse_lint::Severity::Error);
        assert!(diags[0].message.contains("ghost"));
    }

    /// The running example data: the SmartGround fragment of Fig. 3 plus
    /// the director's personal ontology from the paper's examples.
    fn engine() -> SesqlEngine {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE landfill (name TEXT, city TEXT);
             INSERT INTO landfill VALUES
               ('a', 'Torino'), ('b', 'Lyon'), ('c', 'Collegno');
             CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
             INSERT INTO elem_contained VALUES
               ('Hg', 'a', 12.5), ('Pb', 'a', 30.0), ('Cu', 'a', 100.0),
               ('As', 'b', 5.2), ('Hg', 'c', 3.5), ('Sn', 'c', 7.0);",
        )
        .unwrap();

        let kb = KnowledgeBase::new();
        kb.register_user("director");
        for (s, p, o) in [
            ("Hg", "dangerLevel", "5"),
            ("Pb", "dangerLevel", "4"),
            ("As", "dangerLevel", "5"),
            ("Cu", "dangerLevel", "1"),
        ] {
            kb.assert_statement("director", &Triple::new(iri(s), iri(p), lit(o)))
                .unwrap();
        }
        for (s, o) in [("Hg", "HazardousWaste"), ("Pb", "HazardousWaste"), ("As", "HazardousWaste")] {
            kb.assert_statement("director", &Triple::new(iri(s), iri("isA"), iri(o)))
                .unwrap();
        }
        for (s, o) in [("Torino", "Italy"), ("Collegno", "Italy"), ("Lyon", "France")] {
            kb.assert_statement("director", &Triple::new(iri(s), iri("inCountry"), iri(o)))
                .unwrap();
        }
        // ore assemblage: Hg occurs with As and Sb; Sn with Cu.
        for (s, o) in [("Hg", "As"), ("Hg", "Sb"), ("Sn", "Cu")] {
            kb.assert_statement("director", &Triple::new(iri(s), iri("oreAssemblage"), iri(o)))
                .unwrap();
        }
        SesqlEngine::new(db, kb)
    }

    fn col<'r>(rows: &'r RowSet, name: &str) -> Vec<&'r Value> {
        let i = rows.column_index(name).unwrap_or_else(|| {
            panic!(
                "no column `{name}` in {:?}",
                rows.schema.columns.iter().map(|c| c.display_name()).collect::<Vec<_>>()
            )
        });
        rows.rows.iter().map(|r| &r[i]).collect()
    }

    #[test]
    fn plain_sql_passthrough() {
        let e = engine();
        let r = e
            .execute("director", "SELECT name FROM landfill ORDER BY name")
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert!(r.report.sparql_runs.is_empty());
    }

    #[test]
    fn unregistered_user_rejected() {
        let e = engine();
        assert!(e.execute("stranger", "SELECT name FROM landfill").is_err());
    }

    #[test]
    fn example_41_schema_extension() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name, landfill_name FROM elem_contained \
                 WHERE landfill_name = 'a' \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        assert_eq!(r.rows.schema.columns[2].name, "dangerLevel");
        assert_eq!(r.rows.len(), 3);
        let by_elem: std::collections::HashMap<String, &Value> = r
            .rows
            .rows
            .iter()
            .map(|row| (row[0].lexical_form(), &row[2]))
            .collect();
        assert_eq!(by_elem["Hg"], &Value::Int(5));
        assert_eq!(by_elem["Pb"], &Value::Int(4));
        assert_eq!(by_elem["Cu"], &Value::Int(1));
        assert_eq!(r.report.sparql_runs.len(), 1);
        assert!(r.report.sparql_runs[0].sparql.contains("?s"));
    }

    #[test]
    fn schema_extension_unmatched_rows_get_null() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained WHERE landfill_name = 'c' \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        // Hg has a level, Sn does not.
        let by_elem: std::collections::HashMap<String, &Value> = r
            .rows
            .rows
            .iter()
            .map(|row| (row[0].lexical_form(), &row[1]))
            .collect();
        assert_eq!(by_elem["Hg"], &Value::Int(5));
        assert!(by_elem["Sn"].is_null());
    }

    #[test]
    fn example_42_schema_replacement() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT name, city FROM landfill \
                 ENRICH SCHEMAREPLACEMENT(city, inCountry)",
            )
            .unwrap();
        // city column replaced by country, in position 1.
        assert_eq!(r.rows.schema.columns.len(), 2);
        assert_eq!(r.rows.schema.columns[1].name, "inCountry");
        let countries: Vec<String> = col(&r.rows, "inCountry")
            .iter()
            .map(|v| v.lexical_form())
            .collect();
        assert!(countries.contains(&"Italy".to_string()));
        assert!(countries.contains(&"France".to_string()));
        assert!(!countries.contains(&"Torino".to_string()));
    }

    #[test]
    fn example_43_bool_schema_extension() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
                 ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
            )
            .unwrap();
        assert_eq!(r.rows.schema.columns[1].name, "HazardousWaste");
        let by_elem: std::collections::HashMap<String, &Value> = r
            .rows
            .rows
            .iter()
            .map(|row| (row[0].lexical_form(), &row[1]))
            .collect();
        assert_eq!(by_elem["Hg"], &Value::Bool(true));
        assert_eq!(by_elem["Pb"], &Value::Bool(true));
        assert_eq!(by_elem["Cu"], &Value::Bool(false));
    }

    #[test]
    fn example_44_bool_schema_replacement() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT name, city FROM landfill \
                 ENRICH BOOLSCHEMAREPLACEMENT(city, inCountry, Italy)",
            )
            .unwrap();
        assert_eq!(r.rows.schema.columns.len(), 2);
        assert_eq!(r.rows.schema.columns[1].name, "Italy");
        let by_name: std::collections::HashMap<String, &Value> = r
            .rows
            .rows
            .iter()
            .map(|row| (row[0].lexical_form(), &row[1]))
            .collect();
        assert_eq!(by_name["a"], &Value::Bool(true)); // Torino
        assert_eq!(by_name["b"], &Value::Bool(false)); // Lyon
        assert_eq!(by_name["c"], &Value::Bool(true)); // Collegno
    }

    #[test]
    fn example_45_replace_constant_with_property() {
        let e = engine();
        // Without a stored query, `isA` relates elements to HazardousWaste;
        // REPLACECONSTANT with the *inverse* reading needs objects of
        // (HazardousWaste, prop, ?o) — so use a dedicated property.
        e.knowledge_base()
            .assert_statement(
                "director",
                &Triple::new(iri("DangerList"), iri("includes"), iri("Hg")),
            )
            .unwrap();
        e.knowledge_base()
            .assert_statement(
                "director",
                &Triple::new(iri("DangerList"), iri("includes"), iri("As")),
            )
            .unwrap();
        let r = e
            .execute(
                "director",
                "SELECT landfill_name FROM elem_contained \
                 WHERE ${elem_name = DangerList:cond1} \
                 ENRICH REPLACECONSTANT(cond1, DangerList, includes)",
            )
            .unwrap();
        let mut names: Vec<String> = col(&r.rows, "landfill_name")
            .iter()
            .map(|v| v.lexical_form())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names, vec!["a", "b", "c"]); // Hg in a,c; As in b
    }

    #[test]
    fn example_45_replace_constant_with_stored_query() {
        let e = engine();
        e.stored_queries()
            .register(
                "dangerQuery",
                "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }",
            )
            .unwrap();
        let r = e
            .execute(
                "director",
                "SELECT landfill_name, elem_name FROM elem_contained \
                 WHERE ${elem_name = HazardousWaste:cond1} \
                 ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)",
            )
            .unwrap();
        // dangerLevel >= 4: Hg, Pb, As → rows: (a,Hg),(a,Pb),(b,As),(c,Hg)
        assert_eq!(r.rows.len(), 4);
        let elems: std::collections::HashSet<String> = col(&r.rows, "elem_name")
            .iter()
            .map(|v| v.lexical_form())
            .collect();
        assert!(!elems.contains("Cu"));
        assert!(!elems.contains("Sn"));
    }

    #[test]
    fn replace_constant_empty_set_yields_no_rows() {
        let e = engine();
        e.stored_queries()
            .register("noneQuery", "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d > 99) }")
            .unwrap();
        let r = e
            .execute(
                "director",
                "SELECT landfill_name FROM elem_contained \
                 WHERE ${elem_name = X:cond1} \
                 ENRICH REPLACECONSTANT(cond1, X, noneQuery)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 0);
    }

    #[test]
    fn replace_constant_not_equal() {
        let e = engine();
        e.stored_queries()
            .register(
                "dangerQuery",
                "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }",
            )
            .unwrap();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained \
                 WHERE ${elem_name <> Hazard:c} AND landfill_name = 'a' \
                 ENRICH REPLACECONSTANT(c, Hazard, dangerQuery)",
            )
            .unwrap();
        // NOT IN {Hg, Pb, As} restricted to landfill a → Cu only.
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows.rows[0][0], Value::from("Cu"));
    }

    #[test]
    fn example_46_replace_variable() {
        let e = engine();
        // Landfills with "common" elements modulo the ore-assemblage
        // knowledge: Hg(a,c) occurs with As(b) → pairs across a/b, c/b via
        // expansion; plus literal common element Hg between a and c.
        let r = e
            .execute(
                "director",
                "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, e1.elem_name \
                 FROM elem_contained AS e1, elem_contained AS e2 \
                 WHERE e1.landfill_name <> e2.landfill_name AND \
                       ${ e1.elem_name = e2.elem_name :cond1} \
                 ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage)",
            )
            .unwrap();
        let pairs: std::collections::HashSet<(String, String, String)> = r
            .rows
            .rows
            .iter()
            .map(|row| {
                (
                    row[0].lexical_form(),
                    row[1].lexical_form(),
                    row[2].lexical_form(),
                )
            })
            .collect();
        // include_self: literal sharing Hg between a and c.
        assert!(pairs.contains(&("a".into(), "c".into(), "Hg".into())));
        // expansion: e1 has Hg, e2 has As, Hg oreAssemblage As → (a,b,Hg), (c,b,Hg)
        assert!(pairs.contains(&("a".into(), "b".into(), "Hg".into())));
        assert!(pairs.contains(&("c".into(), "b".into(), "Hg".into())));
        // expansion: e1 has Sn (c), e2 has Cu (a), Sn oreAssemblage Cu → (c,a,Sn)
        assert!(pairs.contains(&("c".into(), "a".into(), "Sn".into())));
    }

    #[test]
    fn replace_variable_without_include_self() {
        let e = engine().with_options(EnrichOptions {
            include_self: false,
            ..EnrichOptions::default()
        });
        let r = e
            .execute(
                "director",
                "SELECT e1.landfill_name AS l1, e2.landfill_name AS l2, e1.elem_name \
                 FROM elem_contained AS e1, elem_contained AS e2 \
                 WHERE e1.landfill_name <> e2.landfill_name AND \
                       ${ e1.elem_name = e2.elem_name :cond1} \
                 ENRICH REPLACEVARIABLE(cond1, e2.elem_name, oreAssemblage)",
            )
            .unwrap();
        let tuples: std::collections::HashSet<(String, String, String)> = r
            .rows
            .rows
            .iter()
            .map(|row| {
                (
                    row[0].lexical_form(),
                    row[1].lexical_form(),
                    row[2].lexical_form(),
                )
            })
            .collect();
        // (a, c, Hg) is supported only by the literal Hg = Hg match, which
        // include_self = false excludes.
        assert!(!tuples.contains(&("a".into(), "c".into(), "Hg".into())));
        // Expansion-supported tuples remain.
        assert!(tuples.contains(&("a".into(), "b".into(), "Hg".into())));
        assert!(tuples.contains(&("c".into(), "a".into(), "Sn".into())));
    }

    #[test]
    fn combined_extension_and_bool() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel) \
                        BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
            )
            .unwrap();
        assert_eq!(r.rows.schema.columns.len(), 3);
        assert_eq!(r.rows.schema.columns[1].name, "dangerLevel");
        assert_eq!(r.rows.schema.columns[2].name, "HazardousWaste");
    }

    #[test]
    fn multi_value_policies() {
        let e = engine();
        e.knowledge_base()
            .assert_statement(
                "director",
                &Triple::new(iri("Hg"), iri("alias"), lit("Mercury")),
            )
            .unwrap();
        e.knowledge_base()
            .assert_statement(
                "director",
                &Triple::new(iri("Hg"), iri("alias"), lit("Quicksilver")),
            )
            .unwrap();
        let sesql = "SELECT elem_name FROM elem_contained WHERE elem_name = 'Hg' \
                     ENRICH SCHEMAEXTENSION(elem_name, alias)";

        // RowPerMatch: 2 base rows × 2 aliases = 4
        let r = e.execute("director", sesql).unwrap();
        assert_eq!(r.rows.len(), 4);

        // FirstMatch: 2 rows
        let e1 = e.clone().with_options(EnrichOptions {
            multi: MultiValuePolicy::FirstMatch,
            ..EnrichOptions::default()
        });
        assert_eq!(e1.execute("director", sesql).unwrap().rows.len(), 2);

        // Concatenate: 2 rows with joined value
        let e2 = e.clone().with_options(EnrichOptions {
            multi: MultiValuePolicy::Concatenate,
            ..EnrichOptions::default()
        });
        let r = e2.execute("director", sesql).unwrap();
        assert_eq!(r.rows.len(), 2);
        let v = r.rows.rows[0][1].lexical_form();
        assert!(v.contains("Mercury") && v.contains("Quicksilver"), "{v}");
    }

    #[test]
    fn enriching_missing_column_errors() {
        let e = engine();
        let err = e
            .execute(
                "director",
                "SELECT landfill_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap_err();
        assert!(err.to_string().contains("elem_name"), "{err}");
    }

    #[test]
    fn unknown_property_yields_nulls_not_errors() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
                 ENRICH SCHEMAEXTENSION(elem_name, noSuchProperty)",
            )
            .unwrap();
        assert!(r.rows.rows.iter().all(|row| row[1].is_null()));
    }

    #[test]
    fn report_records_stages() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        assert!(r.report.parse > Duration::ZERO);
        assert_eq!(r.report.base_rows, 6);
        assert!(r.report.result_rows >= 6);
        assert_eq!(r.report.sparql_runs.len(), 1);
        assert!(r.report.total() >= r.report.parse);
    }

    #[test]
    fn user_contexts_differ() {
        let e = engine();
        let kb = e.knowledge_base();
        kb.register_user("planner");
        kb.assert_statement(
            "planner",
            &Triple::new(iri("Cu"), iri("dangerLevel"), lit("9")),
        )
        .unwrap();
        let sesql = "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
                     ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
        let director = e.execute("director", sesql).unwrap();
        let planner = e.execute("planner", sesql).unwrap();
        let d: std::collections::HashMap<String, String> = director
            .rows
            .rows
            .iter()
            .map(|r| (r[0].lexical_form(), r[1].lexical_form()))
            .collect();
        let p: std::collections::HashMap<String, String> = planner
            .rows
            .rows
            .iter()
            .map(|r| (r[0].lexical_form(), r[1].lexical_form()))
            .collect();
        assert_eq!(d["Cu"], "1");
        assert_eq!(p["Cu"], "9");
        assert_eq!(p["Hg"], "", "planner has no Hg knowledge → NULL");
    }

    #[test]
    fn name_collision_in_output_is_disambiguated() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name, landfill_name AS dangerLevel FROM elem_contained \
                 WHERE landfill_name = 'a' \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        let names: Vec<String> =
            r.rows.schema.columns.iter().map(|c| c.name.clone()).collect();
        assert_eq!(names.len(), 3);
        assert!(names.contains(&"dangerLevel".to_string()));
        assert!(names.contains(&"dangerLevel_2".to_string()), "{names:?}");
    }

    #[test]
    fn two_replace_variables_rejected() {
        let e = engine();
        let err = e
            .execute(
                "director",
                "SELECT e1.elem_name FROM elem_contained e1 \
                 WHERE ${e1.elem_name = 'Hg':c1} AND ${e1.elem_name = 'Pb':c2} \
                 ENRICH REPLACEVARIABLE(c1, e1.elem_name, oreAssemblage) \
                        REPLACEVARIABLE(c2, e1.elem_name, oreAssemblage)",
            )
            .unwrap_err();
        assert!(err.to_string().contains("at most one"), "{err}");
    }

    #[test]
    fn enrichment_on_aggregate_output() {
        // Enriching a GROUP BY key column of an aggregated result works:
        // the attr is resolved against the *output* schema.
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name, COUNT(*) AS n FROM elem_contained \
                 GROUP BY elem_name \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        assert_eq!(r.rows.schema.columns.len(), 3);
        let hg = r
            .rows
            .rows
            .iter()
            .find(|row| row[0] == Value::from("Hg"))
            .expect("Hg grouped");
        assert_eq!(hg[1], Value::Int(2), "Hg in landfills a and c");
        assert_eq!(hg[2], Value::Int(5), "enriched with danger level");
    }

    #[test]
    fn enrichment_with_order_and_limit() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained WHERE landfill_name = 'a' \
                 ORDER BY elem_name LIMIT 2 \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        // LIMIT applies to the SQL leg (2 rows) before enrichment.
        assert_eq!(r.report.base_rows, 2);
        assert_eq!(r.rows.rows[0][0], Value::from("Cu"));
    }

    #[test]
    fn replace_constant_on_condition_without_marker_is_error() {
        let e = engine();
        // The tagged condition does not mention the named constant.
        let err = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained \
                 WHERE ${elem_name = 'Hg':c1} \
                 ENRICH REPLACECONSTANT(c1, SomethingElse, isA)",
            )
            .unwrap_err();
        assert!(err.to_string().contains("SomethingElse"), "{err}");
    }

    #[test]
    fn bool_extension_on_empty_result_is_empty() {
        let e = engine();
        let r = e
            .execute(
                "director",
                "SELECT elem_name FROM elem_contained WHERE landfill_name = 'nope' \
                 ENRICH BOOLSCHEMAEXTENSION(elem_name, isA, HazardousWaste)",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 0);
        assert_eq!(r.rows.schema.columns.len(), 2, "schema still extended");
    }

    #[test]
    fn tempdb_left_clean_after_queries() {
        let e = engine();
        e.execute(
            "director",
            "SELECT elem_name FROM elem_contained \
             ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
        )
        .unwrap();
        assert_eq!(e.tempdb.live_tables(), 0);
    }

    // ---- SPARQL-leg cache ----------------------------------------------------

    const CACHED_QUERY: &str = "SELECT elem_name FROM elem_contained \
                                ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";

    #[test]
    fn explain_renders_full_pipeline() {
        let e = engine();
        let text = e
            .explain(
                "director",
                "SELECT landfill_name FROM elem_contained \
                 WHERE ${elem_name = HazardousWaste:cond1} \
                 ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerLevel)",
            )
            .unwrap();
        assert!(text.contains("clean SQL:"), "{text}");
        assert!(text.contains("tagged condition cond1"), "{text}");
        // Example 4.5's ontology constant defers planning to enrichment.
        assert!(text.contains("deferred until WHERE enrichment"), "{text}");
        assert!(text.contains("REPLACECONSTANT"), "{text}");
        assert!(text.contains("SPARQL leg:"), "{text}");
        assert!(e.explain("nobody", "SELECT 1").is_err());

        // A schema enrichment plans the SQL part normally.
        let text = e
            .explain(
                "director",
                "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        assert!(text.contains("SeqScan: elem_contained"), "{text}");
    }

    #[test]
    fn explain_shows_stored_query_leg() {
        let e = engine();
        e.stored_queries()
            .register("dq", "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }")
            .unwrap();
        let text = e
            .explain(
                "director",
                "SELECT elem_name FROM elem_contained \
                 WHERE ${elem_name = X:c} ENRICH REPLACECONSTANT(c, X, dq)",
            )
            .unwrap();
        assert!(text.contains("stored query `dq`"), "{text}");
    }

    #[test]
    fn repeated_query_hits_sparql_cache() {
        let e = engine();
        let r1 = e.execute("director", CACHED_QUERY).unwrap();
        assert!(!r1.report.sparql_runs[0].cached);
        let r2 = e.execute("director", CACHED_QUERY).unwrap();
        assert!(r2.report.sparql_runs[0].cached);
        assert_eq!(r1.rows.rows, r2.rows.rows);
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn kb_mutation_invalidates_cache() {
        let e = engine();
        let r1 = e.execute("director", CACHED_QUERY).unwrap();
        let nulls_before = r1
            .rows
            .column_values("dangerLevel")
            .unwrap()
            .iter()
            .filter(|v| v.is_null())
            .count();
        e.knowledge_base()
            .assert_statement(
                "director",
                &Triple::new(iri("Sn"), iri("dangerLevel"), lit("2")),
            )
            .unwrap();
        let r2 = e.execute("director", CACHED_QUERY).unwrap();
        assert!(!r2.report.sparql_runs[0].cached, "stale entry must not serve");
        let nulls_after = r2
            .rows
            .column_values("dangerLevel")
            .unwrap()
            .iter()
            .filter(|v| v.is_null())
            .count();
        assert!(nulls_after < nulls_before, "Sn's new danger level is visible");
    }

    #[test]
    fn cache_is_per_user_context() {
        let e = engine();
        e.knowledge_base().register_user("other");
        e.execute("director", CACHED_QUERY).unwrap();
        let r = e.execute("other", CACHED_QUERY).unwrap();
        // `other` has an empty context — different graphs, no false hit.
        assert!(!r.report.sparql_runs[0].cached);
        assert!(r.rows.column_values("dangerLevel").unwrap().iter().all(Value::is_null));
    }

    #[test]
    fn cache_can_be_disabled() {
        let e = engine().with_options(EnrichOptions {
            use_cache: false,
            ..EnrichOptions::default()
        });
        e.execute("director", CACHED_QUERY).unwrap();
        let r = e.execute("director", CACHED_QUERY).unwrap();
        assert!(!r.report.sparql_runs[0].cached);
        assert_eq!(e.cache_stats(), CacheStats::default());
    }

    #[test]
    fn clear_cache_forces_reevaluation() {
        let e = engine();
        e.execute("director", CACHED_QUERY).unwrap();
        e.clear_cache();
        let r = e.execute("director", CACHED_QUERY).unwrap();
        assert!(!r.report.sparql_runs[0].cached);
    }

    #[test]
    fn stored_query_leg_is_cached_too() {
        let e = engine();
        e.stored_queries()
            .register(
                "dangerQuery",
                "SELECT ?e WHERE { ?e <dangerLevel> ?d . FILTER(?d >= 4) }",
            )
            .unwrap();
        let q = "SELECT landfill_name FROM elem_contained \
                 WHERE ${elem_name = HazardousWaste:cond1} \
                 ENRICH REPLACECONSTANT(cond1, HazardousWaste, dangerQuery)";
        let r1 = e.execute("director", q).unwrap();
        assert!(!r1.report.sparql_runs[0].cached);
        let r2 = e.execute("director", q).unwrap();
        assert!(r2.report.sparql_runs[0].cached);
        assert_eq!(r1.rows.rows, r2.rows.rows);
    }
}
