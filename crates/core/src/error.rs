//! Unified error type for the SESQL engine.

use std::fmt;

/// Errors raised while parsing or executing SESQL queries.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// SESQL-level syntax error (ENRICH clause, `${...:id}` tagging).
    Sesql { message: String, position: usize },
    /// Error from the relational substrate.
    Relational(crosse_relational::Error),
    /// Error from the semantic substrate.
    Semantic(crosse_rdf::Error),
    /// Semantic-query-module orchestration error.
    Sqm(String),
    /// Platform-level error (unknown user, scenario violation, ...).
    Platform(String),
    /// Durability error (write-ahead log, snapshot, recovery).
    Storage(String),
}

impl Error {
    pub fn sesql(message: impl Into<String>, position: usize) -> Self {
        Error::Sesql { message: message.into(), position }
    }
    pub fn sqm(message: impl Into<String>) -> Self {
        Error::Sqm(message.into())
    }
    pub fn platform(message: impl Into<String>) -> Self {
        Error::Platform(message.into())
    }
    pub fn storage(message: impl Into<String>) -> Self {
        Error::Storage(message.into())
    }

    /// If this error is (or wraps) a cooperative interruption — a query
    /// stopped by a [`crosse_exec::CancelToken`] or its deadline — return
    /// which kind. Serving layers use this to map engine errors to typed
    /// `CANCELLED` / `DEADLINE_EXCEEDED` responses regardless of which
    /// substrate (relational or semantic) the interruption surfaced in.
    pub fn as_interrupt(&self) -> Option<crosse_exec::Interrupt> {
        match self {
            Error::Relational(crosse_relational::Error::Interrupted(i)) => Some(*i),
            Error::Semantic(crosse_rdf::Error::Interrupted(i)) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Sesql { message, position } => {
                write!(f, "SESQL error at byte {position}: {message}")
            }
            Error::Relational(e) => write!(f, "relational: {e}"),
            Error::Semantic(e) => write!(f, "semantic: {e}"),
            Error::Sqm(m) => write!(f, "semantic query module: {m}"),
            Error::Platform(m) => write!(f, "platform: {m}"),
            Error::Storage(m) => write!(f, "storage: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Relational(e) => Some(e),
            Error::Semantic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crosse_relational::Error> for Error {
    fn from(e: crosse_relational::Error) -> Self {
        Error::Relational(e)
    }
}

impl From<crosse_rdf::Error> for Error {
    fn from(e: crosse_rdf::Error) -> Self {
        Error::Semantic(e)
    }
}

impl From<crosse_wal::WalError> for Error {
    fn from(e: crosse_wal::WalError) -> Self {
        Error::Storage(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: Error = crosse_relational::Error::plan("x").into();
        assert!(e.to_string().contains("relational"));
        let e: Error = crosse_rdf::Error::eval("y").into();
        assert!(e.to_string().contains("semantic"));
        assert!(Error::sesql("bad", 2).to_string().contains("byte 2"));
        assert!(Error::sqm("z").to_string().contains("module"));
        assert!(Error::platform("p").to_string().contains("platform"));
        assert!(Error::storage("s").to_string().contains("storage"));
        let e: Error = crosse_wal::WalError::MissingSnapshot { base_lsn: 3 }.into();
        assert!(matches!(e, Error::Storage(_)), "{e:?}");
    }

    #[test]
    fn interrupts_are_extracted_through_wrappers() {
        use crosse_exec::Interrupt;
        let e: Error =
            crosse_relational::Error::Interrupted(Interrupt::DeadlineExceeded).into();
        assert_eq!(e.as_interrupt(), Some(Interrupt::DeadlineExceeded));
        let e: Error = crosse_rdf::Error::Interrupted(Interrupt::Cancelled).into();
        assert_eq!(e.as_interrupt(), Some(Interrupt::Cancelled));
        assert_eq!(Error::sqm("x").as_interrupt(), None);
    }
}
