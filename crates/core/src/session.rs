//! Sessions and the unified streaming cursor API.
//!
//! The platform serves three query languages — SESQL, plain SQL and
//! SPARQL — that historically returned three incompatible result shapes
//! (`EnrichedResult`, `RowSet`, `Solutions`). A [`Session`] ties a user's
//! knowledge context to the engine and exposes one lifecycle for all
//! three:
//!
//! ```text
//! Session::new(engine, user)
//!   └─ prepare(text)        → Prepared handle (compiled, typed params)
//!        └─ execute(params) → Rows cursor (lazy)
//!             └─ collect()  → the legacy materialised shape
//! ```
//!
//! The [`Rows`] trait is the common cursor: uniform `columns()` /
//! `next_row()` over relational execution (fully streaming — `LIMIT`
//! stops the scan), SPARQL solutions (term→value rendered lazily per
//! row), and SESQL enrichment (un-enriched queries stream end-to-end;
//! enriched ones stream out of the pipeline). `collect_rows()` and the
//! per-language collect adapters keep every pre-cursor call site working
//! mechanically.

use crosse_federation::join_manager::term_to_value_in;
use crosse_lint::Diagnostic;
use crosse_relational::Interner;
use crosse_rdf::sparql::eval::{EvalOptions, Solutions};
use crosse_rdf::sparql::{Prepared as PreparedSparql, SolutionCursor, SparqlParams};
use crosse_relational::{Column, DataType, Params, Prepared as PreparedSql, RowSet, Schema, Value};

use crate::error::{Error, Result};
use crate::sqm::{EnrichedResult, PipelineReport, PreparedSesql, SesqlEngine};

/// The uniform streaming cursor over all three query languages.
///
/// Implementations yield rows of [`Value`]s lazily; `collect_rows`
/// drains the remainder into a [`RowSet`].
pub trait Rows {
    /// Output column names, in row order.
    fn columns(&self) -> Vec<String>;

    /// Pull the next row; `None` when exhausted.
    fn next_row(&mut self) -> Option<Result<Vec<Value>>>;

    /// Output schema; the default types every column as TEXT (language
    /// backends with real type information override this).
    fn schema(&self) -> Schema {
        Schema::new(
            self.columns()
                .into_iter()
                .map(|c| Column::new(c, DataType::Text))
                .collect(),
        )
    }

    /// Drain the remaining rows into a materialised row set.
    fn collect_rows(&mut self) -> Result<RowSet> {
        let schema = self.schema();
        let mut rows = Vec::new();
        while let Some(r) = self.next_row() {
            rows.push(r?);
        }
        Ok(RowSet { schema, rows })
    }
}

/// The relational cursor is already the right shape; adapt errors.
impl Rows for crosse_relational::Rows {
    fn columns(&self) -> Vec<String> {
        self.schema().columns.iter().map(|c| c.display_name()).collect()
    }

    fn next_row(&mut self) -> Option<Result<Vec<Value>>> {
        crosse_relational::Rows::next_row(self).map(|r| r.map_err(Error::from))
    }

    fn schema(&self) -> Schema {
        crosse_relational::Rows::schema(self).clone()
    }
}

/// SPARQL solutions as a cursor: variables become columns, terms render
/// to values lazily per pulled row (unbound → NULL). A cursor-local
/// interner makes a term that occurs in many rows cost one allocation.
#[derive(Debug)]
pub struct SparqlRows {
    cursor: SolutionCursor,
    interner: Interner,
}

impl SparqlRows {
    pub fn new(sols: Solutions) -> Self {
        SparqlRows { cursor: SolutionCursor::new(sols), interner: Interner::new() }
    }
}

impl Rows for SparqlRows {
    fn columns(&self) -> Vec<String> {
        self.cursor.variables().to_vec()
    }

    fn next_row(&mut self) -> Option<Result<Vec<Value>>> {
        let interner = &self.interner;
        self.cursor.next().map(|row| {
            Ok(row
                .iter()
                .map(|t| {
                    t.as_ref()
                        .map(|t| term_to_value_in(t, interner))
                        .unwrap_or(Value::Null)
                })
                .collect())
        })
    }
}

enum EnrichedInner {
    /// Un-enriched query streaming straight off the relational executor.
    Streaming(crosse_relational::Rows),
    /// Enrichment pipeline output, streamed from the materialised result.
    Materialized {
        schema: Schema,
        rows: std::vec::IntoIter<Vec<Value>>,
        report: PipelineReport,
    },
}

/// SESQL execution as a cursor, with the pipeline report retained for the
/// [`EnrichedResult`] collect adapter.
pub struct EnrichedRows {
    inner: EnrichedInner,
}

impl EnrichedRows {
    pub(crate) fn streaming(rows: crosse_relational::Rows) -> Self {
        EnrichedRows { inner: EnrichedInner::Streaming(rows) }
    }

    pub fn from_result(result: EnrichedResult) -> Self {
        EnrichedRows {
            inner: EnrichedInner::Materialized {
                schema: result.rows.schema,
                rows: result.rows.rows.into_iter(),
                report: result.report,
            },
        }
    }

    /// The Fig. 6 pipeline report (`None` while streaming un-enriched
    /// queries, which never enter the pipeline).
    pub fn report(&self) -> Option<&PipelineReport> {
        match &self.inner {
            EnrichedInner::Streaming(_) => None,
            EnrichedInner::Materialized { report, .. } => Some(report),
        }
    }

    /// Base-table rows fetched so far on the streaming path (proof of the
    /// `LIMIT` short-circuit); `None` once materialised.
    pub fn rows_scanned(&self) -> Option<u64> {
        match &self.inner {
            EnrichedInner::Streaming(rows) => Some(rows.rows_scanned()),
            EnrichedInner::Materialized { .. } => None,
        }
    }

    /// Drain into the legacy [`EnrichedResult`] shape.
    pub fn collect(mut self) -> Result<EnrichedResult> {
        let schema = Rows::schema(&self);
        let mut out = Vec::new();
        while let Some(r) = self.next_row() {
            out.push(r?);
        }
        let report = match self.inner {
            EnrichedInner::Streaming(_) => PipelineReport {
                result_rows: out.len(),
                base_rows: out.len(),
                ..PipelineReport::default()
            },
            EnrichedInner::Materialized { report, .. } => report,
        };
        Ok(EnrichedResult { rows: RowSet { schema, rows: out }, report })
    }
}

impl Rows for EnrichedRows {
    fn columns(&self) -> Vec<String> {
        match &self.inner {
            EnrichedInner::Streaming(rows) => Rows::columns(rows),
            EnrichedInner::Materialized { schema, .. } => {
                schema.columns.iter().map(|c| c.display_name()).collect()
            }
        }
    }

    fn next_row(&mut self) -> Option<Result<Vec<Value>>> {
        match &mut self.inner {
            EnrichedInner::Streaming(rows) => Rows::next_row(rows),
            EnrichedInner::Materialized { rows, .. } => rows.next().map(Ok),
        }
    }

    fn schema(&self) -> Schema {
        match &self.inner {
            EnrichedInner::Streaming(rows) => Rows::schema(rows),
            EnrichedInner::Materialized { schema, .. } => schema.clone(),
        }
    }
}

/// A user session: the engine plus the user's knowledge context, with the
/// prepare → execute → cursor lifecycle for all three languages.
#[derive(Clone)]
pub struct Session {
    engine: SesqlEngine,
    user: String,
}

impl Session {
    /// Open a session for a registered user.
    pub fn new(engine: &SesqlEngine, user: &str) -> Result<Session> {
        if !engine.knowledge_base().is_registered(user) {
            return Err(Error::platform(format!("user `{user}` is not registered")));
        }
        Ok(Session { engine: engine.clone(), user: user.to_string() })
    }

    /// Open a durable engine at `dir` and start a session for `user` in
    /// one step, registering the user on first contact (registration is
    /// idempotent and — like every mutation on a durable engine — logged,
    /// so the user survives restarts).
    pub fn open(dir: impl AsRef<std::path::Path>, user: &str) -> Result<Session> {
        let engine = SesqlEngine::open(dir)?;
        if !engine.knowledge_base().is_registered(user) {
            engine.knowledge_base().register_user(user);
        }
        Session::new(&engine, user)
    }

    pub fn user(&self) -> &str {
        &self.user
    }

    pub fn engine(&self) -> &SesqlEngine {
        &self.engine
    }

    /// Set the worker-thread budget for intra-query parallelism (morsel
    /// scans, hash-join probes, SPARQL probe batches). The budget lives on
    /// the shared engine — it is a server-wide setting surfaced here (and
    /// as the CLI's `--threads` flag) for convenience. 1 = sequential.
    pub fn set_threads(&self, threads: usize) {
        self.engine.set_exec_threads(threads);
    }

    /// Current worker-thread budget.
    pub fn threads(&self) -> usize {
        self.engine.exec_threads()
    }

    /// Explain a SESQL (or plain SQL) statement without executing it: the
    /// cleaned SQL, the optimized relational plan with its rewrite-pass
    /// annotations (shared spools, pushdowns), and — for enriched queries
    /// — the SPARQL legs the SQM would issue plus the rewritten
    /// REPLACEVARIABLE compound. The session-level face of `EXPLAIN`.
    pub fn explain(&self, text: &str) -> Result<String> {
        self.engine.explain(&self.user, text)
    }

    /// Explain a plain SQL SELECT against the databank: the optimized
    /// plan tree plus pass annotations (`EXPLAIN <stmt>` as a string).
    pub fn explain_sql(&self, sql: &str) -> Result<String> {
        let prepared = self.prepare_sql(sql)?;
        Ok(prepared.explain()?)
    }

    /// Lint a SESQL (or plain SQL) statement in this session's knowledge
    /// context without executing it. See [`SesqlEngine::lint`] for the
    /// rule set.
    pub fn lint(&self, text: &str) -> Result<Vec<Diagnostic>> {
        self.engine.lint(&self.user, text)
    }

    /// Lint a plain SQL statement against the databank (`L…` rules only).
    pub fn lint_sql(&self, sql: &str) -> Result<Vec<Diagnostic>> {
        Ok(self.engine.database().lint(sql)?)
    }

    /// Lint a SPARQL query (`S…` rules). Parse errors are real errors;
    /// lint findings are the returned list.
    pub fn lint_sparql(&self, sparql: &str) -> Result<Vec<Diagnostic>> {
        let parsed = crosse_rdf::sparql::parser::parse_any(sparql)?;
        Ok(crosse_rdf::sparql::lint::lint_parsed(&parsed, sparql))
    }

    // ---- SESQL ----------------------------------------------------------

    /// Prepare a SESQL query (LRU-cached compilation).
    pub fn prepare(&self, sesql: &str) -> Result<PreparedSesql> {
        self.engine.prepare(sesql)
    }

    /// Execute a prepared SESQL query, materialising the enriched result.
    pub fn execute(
        &self,
        prepared: &PreparedSesql,
        params: &Params,
    ) -> Result<EnrichedResult> {
        prepared.execute(&self.user, params)
    }

    /// Execute a prepared SESQL query as a streaming cursor.
    pub fn execute_cursor(
        &self,
        prepared: &PreparedSesql,
        params: &Params,
    ) -> Result<EnrichedRows> {
        prepared.execute_cursor(&self.user, params)
    }

    // ---- plain SQL (databank, no enrichment context) ---------------------

    /// Prepare a plain SQL SELECT against the databank (plan-cached).
    pub fn prepare_sql(&self, sql: &str) -> Result<PreparedSql> {
        Ok(self.engine.database().prepare(sql)?)
    }

    /// Execute a prepared SQL statement as a streaming cursor.
    pub fn execute_sql(
        &self,
        prepared: &PreparedSql,
        params: &Params,
    ) -> Result<crosse_relational::Rows> {
        Ok(prepared.execute(params)?)
    }

    // ---- SPARQL (the user's knowledge context) ---------------------------

    /// Prepare a SPARQL SELECT (parse only; evaluation binds the user's
    /// context graphs at execute time).
    pub fn prepare_sparql(&self, sparql: &str) -> Result<PreparedSparql> {
        Ok(crosse_rdf::sparql::prepare(sparql)?)
    }

    /// Execute a prepared SPARQL query in this session's context graphs,
    /// returning the uniform cursor. Evaluation uses the session's
    /// worker-thread budget for partition-parallel probing.
    pub fn execute_sparql(
        &self,
        prepared: &PreparedSparql,
        params: &SparqlParams,
    ) -> Result<SparqlRows> {
        let kb = self.engine.knowledge_base();
        let graphs = kb.context_graphs(&self.user);
        let refs: Vec<&str> = graphs.iter().map(String::as_str).collect();
        let opts = EvalOptions { threads: self.engine.exec_threads(), ..Default::default() };
        let sols = prepared.execute_with(kb.store(), &refs, params, &opts)?;
        Ok(SparqlRows::new(sols))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosse_rdf::provenance::KnowledgeBase;
    use crosse_rdf::store::Triple;
    use crosse_rdf::term::Term;
    use crosse_relational::Database;

    fn engine() -> SesqlEngine {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE elem_contained (elem_name TEXT, landfill_name TEXT, amount FLOAT);
             INSERT INTO elem_contained VALUES
               ('Hg', 'a', 12.5), ('Pb', 'a', 30.0), ('Cu', 'b', 100.0);",
        )
        .unwrap();
        let kb = KnowledgeBase::new();
        kb.register_user("director");
        for (s, o) in [("Hg", "5"), ("Pb", "4")] {
            kb.assert_statement(
                "director",
                &Triple::new(Term::iri(s), Term::iri("dangerLevel"), Term::lit(o)),
            )
            .unwrap();
        }
        SesqlEngine::new(db, kb)
    }

    #[test]
    fn lint_clean_enriched_query_is_silent() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let diags = s
            .lint(
                "SELECT elem_name FROM elem_contained WHERE ${amount > 10:cond1} \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel) \
                 REPLACEVARIABLE(cond1, elem_name, dangerLevel)",
            )
            .unwrap();
        assert!(diags.is_empty(), "expected clean lint, got {diags:?}");
    }

    #[test]
    fn lint_reports_unused_and_unknown_condition_tags() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        // cond1 tagged but never referenced → E001.
        let diags = s
            .lint(
                "SELECT elem_name FROM elem_contained WHERE ${amount > 10:cond1} \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E001"]);

        // An enrichment naming a tag that does not exist is a *parse*
        // error — the linter's E002 is defense-in-depth for queries built
        // programmatically (covered in `sqm::tests`).
        let err = s
            .lint(
                "SELECT elem_name FROM elem_contained WHERE ${amount > 10:cond1} \
                 ENRICH REPLACEVARIABLE(ghost, elem_name, dangerLevel)",
            )
            .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn lint_flags_unresolvable_property() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let diags = s
            .lint(
                "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, noSuchProperty)",
            )
            .unwrap();
        assert_eq!(diags.iter().map(|d| d.code).collect::<Vec<_>>(), vec!["E003"]);
        // A verbatim IRI is deliberate — never flagged.
        let diags = s
            .lint(
                "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, urn://no-such-property)",
            )
            .unwrap();
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn lint_runs_sparql_rules_over_stored_queries() {
        let e = engine();
        e.stored_queries()
            .register("deadFilter", "SELECT ?s WHERE { ?s <urn:p> ?o FILTER(1 > 2) }")
            .unwrap();
        let s = Session::new(&e, "director").unwrap();
        let diags = s
            .lint(
                "SELECT elem_name FROM elem_contained WHERE ${elem_name = 'Hg':c1} \
                 ENRICH REPLACECONSTANT(c1, Hg, deadFilter)",
            )
            .unwrap();
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"S003"), "got {diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("deadFilter")));
    }

    #[test]
    fn prepared_sesql_carries_warnings() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let p = s
            .prepare("SELECT elem_name FROM elem_contained WHERE 1 = 2")
            .unwrap();
        assert_eq!(p.warnings().iter().map(|d| d.code).collect::<Vec<_>>(), vec!["L001"]);
        // Clean parameterised query: params are fine at prepare time.
        let p = s
            .prepare("SELECT elem_name FROM elem_contained WHERE landfill_name = $lf")
            .unwrap();
        assert!(p.warnings().is_empty());
    }

    #[test]
    fn lint_sparql_surfaces_s_rules() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let diags = s
            .lint_sparql("SELECT ?s ?ghost WHERE { ?s <urn:p> ?o . ?o <urn:q> <urn:x> }")
            .unwrap();
        assert!(diags.iter().map(|d| d.code).any(|c| c == "S002"), "got {diags:?}");
    }

    #[test]
    fn explain_carries_lint_footer() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let out = s
            .explain(
                "SELECT elem_name FROM elem_contained WHERE ${amount > 10:cond1} \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        assert!(out.contains("-- lint: warning[E001]"), "got:\n{out}");
        // Clean statements keep their EXPLAIN output footer-free.
        let out = s.explain("SELECT elem_name FROM elem_contained").unwrap();
        assert!(!out.contains("-- lint:"), "got:\n{out}");
    }

    #[test]
    fn session_requires_registered_user() {
        let e = engine();
        assert!(Session::new(&e, "director").is_ok());
        assert!(Session::new(&e, "nobody").is_err());
    }

    #[test]
    fn sesql_prepare_execute_with_params() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let p = s
            .prepare(
                "SELECT elem_name FROM elem_contained WHERE landfill_name = $lf \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        assert_eq!(p.param_slots().len(), 1);
        let r = s.execute(&p, &Params::new().set("lf", "a")).unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows.schema.columns[1].name, "dangerLevel");
        // Execute-many: same handle, new binding, no re-parse.
        let r = s.execute(&p, &Params::new().set("lf", "b")).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert!(r.rows.rows[0][1].is_null(), "Cu has no danger level");
    }

    #[test]
    fn prepared_cache_hits_across_sessions() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let q = "SELECT elem_name FROM elem_contained WHERE landfill_name = $lf";
        let _p1 = s.prepare(q).unwrap();
        let _p2 = s.prepare("SELECT elem_name  FROM elem_contained WHERE landfill_name = $lf").unwrap();
        let stats = e.prepared_cache_stats();
        assert_eq!(stats.hits, 1, "{stats:?}");
        assert_eq!(stats.misses, 1, "{stats:?}");
    }

    #[test]
    fn unified_cursor_over_all_three_languages() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();

        // SESQL (un-enriched → streaming).
        let p = s.prepare("SELECT elem_name FROM elem_contained ORDER BY elem_name").unwrap();
        let mut cur = s.execute_cursor(&p, &Params::new()).unwrap();
        assert_eq!(Rows::columns(&cur), vec!["elem_name"]);
        let first = cur.next_row().unwrap().unwrap();
        assert_eq!(first[0], Value::from("Cu"));

        // SQL.
        let p = s.prepare_sql("SELECT COUNT(*) AS n FROM elem_contained").unwrap();
        let mut cur = s.execute_sql(&p, &Params::new()).unwrap();
        assert_eq!(Rows::columns(&cur), vec!["n"]);
        assert_eq!(Rows::next_row(&mut cur).unwrap().unwrap()[0], Value::Int(3));

        // SPARQL.
        let p = s.prepare_sparql("SELECT ?o WHERE { $e <dangerLevel> ?o }").unwrap();
        let mut cur = s
            .execute_sparql(&p, &SparqlParams::new().set("e", Term::iri("Hg")))
            .unwrap();
        assert_eq!(Rows::columns(&cur), vec!["o"]);
        let row = cur.next_row().unwrap().unwrap();
        assert_eq!(row[0], Value::Int(5));
    }

    #[test]
    fn cursor_collect_matches_legacy_execute() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let text = "SELECT elem_name FROM elem_contained \
                    ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)";
        let p = s.prepare(text).unwrap();
        let via_cursor = s.execute_cursor(&p, &Params::new()).unwrap().collect().unwrap();
        let legacy = e.execute("director", text).unwrap();
        assert_eq!(via_cursor.rows.rows, legacy.rows.rows);
        assert!(via_cursor.report.result_rows == legacy.report.result_rows);
    }

    #[test]
    fn streaming_limit_stops_scan_early() {
        let e = engine();
        let t = e.database().catalog().get_table("elem_contained").unwrap();
        let mut rows = Vec::new();
        for i in 0..50_000 {
            rows.push(vec![
                Value::from(format!("E{i}")),
                Value::from("x"),
                Value::from(1.0),
            ]);
        }
        t.insert_many(rows).unwrap();
        let s = Session::new(&e, "director").unwrap();
        let p = s.prepare("SELECT elem_name FROM elem_contained LIMIT 5").unwrap();
        let mut cur = s.execute_cursor(&p, &Params::new()).unwrap();
        let mut n = 0;
        while let Some(r) = cur.next_row() {
            r.unwrap();
            n += 1;
        }
        assert_eq!(n, 5);
        let scanned = cur.rows_scanned().expect("streaming path");
        assert!(
            scanned < 5_000,
            "LIMIT 5 over 50k rows scanned {scanned} rows — no short-circuit"
        );
    }

    #[test]
    fn enriched_cursor_reports_pipeline() {
        let e = engine();
        let s = Session::new(&e, "director").unwrap();
        let p = s
            .prepare(
                "SELECT elem_name FROM elem_contained \
                 ENRICH SCHEMAEXTENSION(elem_name, dangerLevel)",
            )
            .unwrap();
        let cur = s.execute_cursor(&p, &Params::new()).unwrap();
        assert!(cur.report().is_some());
        assert_eq!(cur.report().unwrap().sparql_runs.len(), 1);
    }
}
