//! # crosse-core
//!
//! SESQL — the contextually-enriched query language of CroSSE
//! (*Contextually-Enriched Querying of Integrated Data Sources*, ICDE
//! 2018) — together with the platform services built around it.
//!
//! * [`sesql`] — the language front-end: the `${cond:id}` tagging scanner
//!   (Remark 4.1), the Fig. 5 enrichment grammar, and the Semantic Query
//!   Parser.
//! * [`sqm::SesqlEngine`] — the Semantic Query Module: generates SPARQL
//!   from the enrichment syntax tree, runs the SQL and SPARQL legs,
//!   combines them through the JoinManager and the temporary support
//!   database (Fig. 6), and reports per-stage timings.
//! * [`platform`] — users, annotation scenarios (integrated / independent /
//!   crowdsourced, Sec. III-A) and the query log.
//! * [`recommend`] — the Sec. I-B vision services: peer discovery,
//!   statement recommendation, and context-aware result ranking.
#![forbid(unsafe_code)]

pub mod error;
pub mod explore;
pub mod platform;
pub mod recommend;
pub mod sesql;
pub mod session;
pub mod sqm;
pub mod storage;

pub use crosse_lint::{Diagnostic, Severity, Span};
pub use error::{Error, Result};
pub use crosse_relational::LockSiteStats;
pub use storage::{SyncPolicy, WalOptions, WalStats};
pub use sesql::ast::{Enrichment, SesqlQuery};
pub use sesql::parser::parse_sesql;
pub use session::{EnrichedRows, Rows, Session, SparqlRows};
pub use sqm::{
    EnrichOptions, EnrichedResult, MultiValuePolicy, PipelineReport, PreparedSesql,
    SesqlEngine,
};
