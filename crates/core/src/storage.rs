//! Engine-wide durability: one write-ahead log shared by the relational
//! databank and the RDF knowledge base.
//!
//! The two substrates log redo records on separate channels of a single
//! [`crosse_wal::WalStore`] (`CHAN_REL` for relational DML/DDL, `CHAN_RDF`
//! for triple mutations), so a checkpoint can pin one generation across
//! **both** stores under a single barrier section: no interleaving between
//! the relational pin and the RDF pin, hence no snapshot that reflects a
//! SESQL execution's SQL half but not its annotation half.
//!
//! [`SesqlEngine::open`](crate::sqm::SesqlEngine::open) is the recovery
//! entry point: load the latest valid snapshot (both sections), replay the
//! log tail in LSN order dispatching by channel, attach the redo sinks,
//! and rebuild the [`KnowledgeBase`] provenance counters from the
//! recovered meta graph. Engine caches need no explicit flush on recovery:
//! every cache (SPARQL-leg solutions, REPLACEVARIABLE pairs tables,
//! prepared plans) is version-checked against the recovered stores, and a
//! freshly opened engine starts with empty caches keyed by the recovered
//! KB/catalog versions.

use std::path::Path;
use std::sync::Arc;

use crosse_rdf::persist::{apply_rdf_op, decode_store, encode_store, pin_store, WalRdfSink};
use crosse_rdf::provenance::KnowledgeBase;
use crosse_rdf::store::TripleStore;
use crosse_relational::storage::durable::{DurabilityHandle, WalRedoSink};
use crosse_relational::storage::snapshot::{decode_catalog, encode_catalog, pin_catalog};
use crosse_relational::storage::wal::apply_rel_op;
use crosse_relational::storage::Catalog;
use crosse_relational::Database;
use crosse_wal::{WalStore, CHAN_RDF, CHAN_REL};

pub use crosse_wal::{SyncPolicy, WalOptions, WalStats};

use crate::error::{Error, Result};
use crate::sqm::SesqlEngine;

/// Combined relational + RDF durability handle: checkpoints pin both
/// stores in one barrier section and write a two-section snapshot.
/// Installed on the [`Database`] so `db.checkpoint()` and the engine-level
/// checkpoint are the same operation.
pub struct EngineDurability {
    wal: Arc<WalStore>,
    catalog: Catalog,
    store: TripleStore,
    warnings: Vec<String>,
}

impl std::fmt::Debug for EngineDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineDurability")
            .field("dir", &self.wal.dir())
            .finish_non_exhaustive()
    }
}

impl EngineDurability {
    pub fn new(
        wal: Arc<WalStore>,
        catalog: Catalog,
        store: TripleStore,
        warnings: Vec<String>,
    ) -> Self {
        EngineDurability { wal, catalog, store, warnings }
    }
}

impl DurabilityHandle for EngineDurability {
    fn checkpoint(&self) -> crosse_relational::Result<u64> {
        let catalog = self.catalog.clone();
        let store = self.store.clone();
        // The pin closure runs under the WAL barrier write lock: both
        // stores are frozen at the same LSN. Encoding runs off-thread.
        self.wal
            .checkpoint(
                move || (pin_catalog(&catalog), pin_store(&store)),
                |(cat, rdf)| {
                    vec![
                        (CHAN_REL, encode_catalog(&cat)),
                        (CHAN_RDF, encode_store(&rdf)),
                    ]
                },
            )
            .map_err(crosse_relational::Error::from)
    }

    fn checkpoint_join(&self) -> crosse_relational::Result<()> {
        self.wal.checkpoint_join().map_err(crosse_relational::Error::from)
    }

    fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    fn recovery_warnings(&self) -> Vec<String> {
        self.warnings.clone()
    }

    fn sync(&self) -> crosse_relational::Result<()> {
        self.wal.sync().map_err(crosse_relational::Error::from)
    }
}

/// Open (or create) a durable engine at `dir`: recover both stores from
/// the latest snapshot + log tail, attach the redo sinks, and rebuild the
/// knowledge base's provenance state. See
/// [`SesqlEngine::open`](crate::sqm::SesqlEngine::open) for the public
/// face.
pub fn open_engine(dir: impl AsRef<Path>, opts: WalOptions) -> Result<SesqlEngine> {
    let (wal, recovered) = WalStore::open(dir, opts)?;
    let mut db = Database::new();
    let store = TripleStore::new();

    // 1. Restore the checkpoint snapshot, one section per substrate.
    for (tag, bytes) in &recovered.sections {
        match *tag {
            CHAN_REL => decode_catalog(db.catalog(), bytes, Some(db.interner()))?,
            CHAN_RDF => decode_store(&store, bytes)?,
            other => {
                return Err(Error::storage(format!(
                    "snapshot carries unknown section tag {other}"
                )))
            }
        }
    }

    // 2. Replay the log tail in LSN order, dispatching by channel. No
    //    sink is attached yet, so replay never re-logs.
    for rec in &recovered.records {
        match rec.chan {
            CHAN_REL => apply_rel_op(db.catalog(), &rec.payload, Some(db.interner()))?,
            CHAN_RDF => apply_rdf_op(&store, &rec.payload)?,
            other => {
                return Err(Error::storage(format!(
                    "log record {} carries unknown channel {other}",
                    rec.lsn
                )))
            }
        }
    }

    // 3. Start logging on both channels, sharing one barrier and one log.
    db.catalog()
        .attach_sink(Arc::new(WalRedoSink::new(Arc::clone(&wal), CHAN_REL)));
    store.attach_sink(Arc::new(WalRdfSink::new(Arc::clone(&wal))));
    db.set_durability(Arc::new(EngineDurability::new(
        wal,
        db.catalog().clone(),
        store.clone(),
        recovered.warnings.clone(),
    )));

    // 4. Rebuild provenance state (next statement id) from the recovered
    //    meta graph. On a fresh directory this also creates the meta and
    //    common graphs — through the sink, so they are durable too.
    let kb = KnowledgeBase::from_store(store);
    Ok(SesqlEngine::new(db, kb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosse_rdf::store::Triple;
    use crosse_rdf::term::Term;
    use std::path::PathBuf;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "crosse-core-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> SesqlEngine {
        SesqlEngine::open(dir).unwrap()
    }

    #[test]
    fn both_substrates_survive_reopen() {
        let dir = tmp_dir("both");
        {
            let engine = open(&dir);
            engine
                .database()
                .execute_script(
                    "CREATE TABLE elem (name TEXT, amount FLOAT);
                     INSERT INTO elem VALUES ('Hg', 12.5), ('Pb', 30.0);",
                )
                .unwrap();
            engine.knowledge_base().register_user("director");
            engine
                .knowledge_base()
                .assert_statement(
                    "director",
                    &Triple::new(
                        Term::iri("Hg"),
                        Term::iri("dangerLevel"),
                        Term::lit("5"),
                    ),
                )
                .unwrap();
        }
        let engine = open(&dir);
        let rows = engine.database().query("SELECT COUNT(*) AS n FROM elem").unwrap();
        assert_eq!(rows.rows[0][0], crosse_relational::Value::Int(2));
        assert!(engine.knowledge_base().is_registered("director"));
        let sols = engine
            .knowledge_base()
            .query_as("director", "SELECT ?o WHERE { <Hg> <dangerLevel> ?o }")
            .unwrap();
        assert_eq!(sols.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_covers_both_channels_and_statement_ids_resume() {
        let dir = tmp_dir("ckpt");
        let first_id;
        {
            let engine = open(&dir);
            engine
                .database()
                .execute_script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1);")
                .unwrap();
            engine.knowledge_base().register_user("u");
            first_id = engine
                .knowledge_base()
                .assert_statement(
                    "u",
                    &Triple::new(Term::iri("a"), Term::iri("p"), Term::lit("1")),
                )
                .unwrap();
            let lsn = engine.checkpoint().unwrap();
            engine.checkpoint_join().unwrap();
            assert!(lsn > 0);
            // Post-checkpoint tail on both channels.
            engine.database().execute("INSERT INTO t VALUES (2)").unwrap();
            engine
                .knowledge_base()
                .assert_statement(
                    "u",
                    &Triple::new(Term::iri("b"), Term::iri("p"), Term::lit("2")),
                )
                .unwrap();
            let stats = engine.wal_stats().unwrap();
            assert!(stats.snapshot_lsn > 0, "{stats:?}");
            assert!(stats.last_lsn > stats.snapshot_lsn, "{stats:?}");
        }
        let engine = open(&dir);
        let rows = engine.database().query("SELECT COUNT(*) AS n FROM t").unwrap();
        assert_eq!(rows.rows[0][0], crosse_relational::Value::Int(2));
        assert_eq!(engine.knowledge_base().statements_by("u").len(), 2);
        // Fresh statements must not collide with recovered ids.
        let next = engine
            .knowledge_base()
            .assert_statement(
                "u",
                &Triple::new(Term::iri("c"), Term::iri("p"), Term::lit("3")),
            )
            .unwrap();
        assert!(next.0 > first_id.0, "recovered counter resumed too low");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pairs_tables_are_not_persisted() {
        let dir = tmp_dir("pairs");
        {
            let engine = open(&dir);
            engine
                .database()
                .execute_script(
                    "CREATE TABLE elem_contained (elem_name TEXT, amount FLOAT);
                     INSERT INTO elem_contained VALUES ('Hg', 12.5), ('Cu', 3.0);",
                )
                .unwrap();
            engine.knowledge_base().register_user("director");
            engine
                .knowledge_base()
                .assert_statement(
                    "director",
                    &Triple::new(
                        Term::iri("Hg"),
                        Term::iri("oreAssemblage"),
                        Term::iri("Cu"),
                    ),
                )
                .unwrap();
            let r = engine
                .execute(
                    "director",
                    "SELECT elem_name, amount FROM elem_contained \
                     WHERE ${elem_name = 'Hg':c1} \
                     ENRICH REPLACEVARIABLE(c1, elem_name, oreAssemblage)",
                )
                .unwrap();
            assert_eq!(r.rows.len(), 2, "expansion matches Hg and Cu");
        }
        let engine = open(&dir);
        let names = engine.database().catalog().table_names();
        assert!(
            !names.iter().any(|n| n.starts_with("__kb_pairs")),
            "ephemeral pairs table leaked into the WAL: {names:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_engine_rejects_checkpoint_with_typed_error() {
        let engine = SesqlEngine::new(Database::new(), KnowledgeBase::new());
        assert!(!engine.is_durable());
        let err = engine.checkpoint().unwrap_err();
        assert!(matches!(err, Error::Relational(_)), "{err:?}");
        assert!(engine.wal_stats().is_none());
        assert!(engine.recovery_warnings().is_empty());
    }

    #[test]
    fn recovery_warnings_surface_torn_tail() {
        let dir = tmp_dir("torn");
        {
            let engine = open(&dir);
            engine
                .database()
                .execute_script("CREATE TABLE t (x INT); INSERT INTO t VALUES (1);")
                .unwrap();
        }
        // Tear the final record: chop bytes off the end of the log.
        let log = dir.join("wal.log");
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 3]).unwrap();
        let engine = open(&dir);
        assert!(
            !engine.recovery_warnings().is_empty(),
            "torn tail should produce a recovery warning"
        );
        // The engine is usable and the table survived (only the torn
        // record was dropped).
        assert!(engine.database().catalog().has_table("t"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
