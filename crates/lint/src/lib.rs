//! # crosse-lint
//!
//! The shared diagnostic model for CroSSE's static analyses: the SQL and
//! SESQL linter in `crosse-relational`/`crosse-core`, the SPARQL linter
//! in `crosse-rdf`, and the corpus lint gate (`cargo xtask lint`) all
//! speak [`Diagnostic`].
//!
//! A diagnostic is deliberately small — a stable machine-readable code, a
//! severity, a human message, and an optional source span — so it can
//! cross crate boundaries without any of the linters depending on each
//! other, travel with prepared-statement handles, and render identically
//! in the CLI, `EXPLAIN` footers, and golden snapshots.
//!
//! ## Diagnostic codes
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | `L001` | error   | predicate is always false (`x = 1 AND x = 2`, `1 = 2`) |
//! | `L002` | warning | predicate is always true (`x = x`, `1 = 1`) |
//! | `L003` | warning | implicit cross join: FROM items share no equi-link |
//! | `L004` | warning | comparison forces implicit string↔numeric coercion |
//! | `L005` | warning | DISTINCT is a no-op under this GROUP BY |
//! | `L006` | warning | statement has unbound `$params` (prepare + bind) |
//! | `S001` | warning | SPARQL variable bound but never used |
//! | `S002` | warning | SPARQL variable projected but never bound |
//! | `S003` | error   | SPARQL FILTER is always false |
//! | `E001` | warning | SESQL tagged condition not referenced by any enrichment |
//! | `E002` | error   | SESQL enrichment references an unknown condition tag |
//! | `E003` | warning | enrichment references an unregistered stored query |
//! | `R000` | error   | malformed `srclint: allow` directive (unknown rule / no justification) |
//! | `R001` | error   | `std::sync::Mutex`/`RwLock` outside the compat shim |
//! | `R002` | error   | `.unwrap()`/`.expect(` in non-test library code |
//! | `R003` | error   | `panic!` outside tests/sabotage hooks |
//! | `R004` | warning | unlabeled `Mutex::new`/`RwLock::new` in engine code |
//! | `R005` | error   | crate root missing `#![forbid(unsafe_code)]` |
//! | `R006` | error   | `Instant::now`/`SystemTime::now` in planner/optimizer code |
//!
//! The `R`-prefixed rules are [`srclint`] — the workspace's own Rust
//! sources linted by `cargo xtask srclint` with a hand-rolled,
//! dependency-free lexer.

#![forbid(unsafe_code)]

pub mod srclint;

use std::fmt;

/// How bad a [`Diagnostic`] is. Ordered: `Info < Warning < Error`, so
/// `--deny-warnings` style gates can threshold on `>= Warning`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing wrong, but worth knowing.
    Info,
    /// The query is probably not what the author meant.
    Warning,
    /// The query cannot mean anything useful (e.g. always-false filter).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A half-open byte range `[start, end)` into the linted source text.
///
/// The SQL/SESQL ASTs do not carry positions, so spans are best-effort:
/// linters attach one when they can locate the offending fragment in the
/// original text, and omit it otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }
}

/// One linter finding: a stable code, a severity, a human-readable
/// message, and (when locatable) a source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Diagnostic {
    /// Stable machine-readable code (`L001`…, `S001`…, `E001`…); see the
    /// crate-level table. Snapshots and tests match on this.
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
}

impl Diagnostic {
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic { code, severity, message: message.into(), span: None }
    }

    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Error, message)
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Warning, message)
    }

    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic::new(code, Severity::Info, message)
    }

    /// Attach a source span (builder-style).
    pub fn with_span(mut self, start: usize, end: usize) -> Self {
        self.span = Some(Span::new(start, end));
        self
    }

    /// Locate `fragment` in `source` (case-insensitive) and attach its
    /// span if found. Best-effort: the diagnostic is returned unchanged
    /// when the fragment does not occur verbatim.
    pub fn try_span_of(mut self, source: &str, fragment: &str) -> Self {
        if self.span.is_none() && !fragment.is_empty() {
            let hay = source.to_ascii_lowercase();
            let needle = fragment.to_ascii_lowercase();
            if let Some(start) = hay.find(&needle) {
                self.span = Some(Span::new(start, start + needle.len()));
            }
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `warning[L003]: implicit cross join … (at 12..40)`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = &self.span {
            write!(f, " (at {}..{})", span.start, span.end)?;
        }
        Ok(())
    }
}

/// The highest severity among `diags`, or `None` when empty.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Render a diagnostic list one-per-line (no trailing newline), the
/// format shared by the CLI, EXPLAIN footers, and golden snapshots.
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_for_thresholding() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_code_and_span() {
        let d = Diagnostic::warning("L003", "implicit cross join").with_span(4, 9);
        assert_eq!(d.to_string(), "warning[L003]: implicit cross join (at 4..9)");
        let d = Diagnostic::error("L001", "always false");
        assert_eq!(d.to_string(), "error[L001]: always false");
    }

    #[test]
    fn try_span_is_case_insensitive_and_best_effort() {
        let src = "SELECT * FROM t WHERE X = 1 AND x = 2";
        let d = Diagnostic::error("L001", "contradiction").try_span_of(src, "x = 1");
        assert_eq!(d.span, Some(Span::new(22, 27)));
        let d = Diagnostic::error("L001", "contradiction").try_span_of(src, "nowhere");
        assert_eq!(d.span, None);
    }

    #[test]
    fn max_severity_over_mixed_list() {
        assert_eq!(max_severity(&[]), None);
        let diags = vec![
            Diagnostic::info("L006", "params"),
            Diagnostic::error("L001", "false"),
            Diagnostic::warning("L003", "cross join"),
        ];
        assert_eq!(max_severity(&diags), Some(Severity::Error));
    }
}
