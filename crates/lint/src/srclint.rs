//! srclint: a token-level linter for the workspace's own Rust sources.
//!
//! The engine cannot take crates.io analysis dependencies (no `syn`, no
//! clippy lints of our own), so the repo's concurrency/correctness rules
//! are enforced by a hand-rolled lexer + token-pattern matcher. The lexer
//! is *correct about what is code*: strings (plain, raw, byte, C),
//! char-vs-lifetime, nested block comments, and doc comments are all
//! recognised, so a `.unwrap()` inside a doc example or a string literal
//! never fires. It is not a parser — rules match short token sequences,
//! which is exactly enough for the rule set below and keeps the linter
//! total: any byte sequence lexes to *something*.
//!
//! ## Rules
//!
//! | code | severity | fires on |
//! |------|----------|----------|
//! | `R001` | error   | `std::sync::Mutex`/`RwLock` outside the compat shim — engine code must use the labeled, tracked `parking_lot` wrappers |
//! | `R002` | error   | `.unwrap()` / `.expect(` in non-test library code |
//! | `R003` | error   | `panic!` outside tests |
//! | `R004` | warning | unlabeled `Mutex::new` / `RwLock::new` in engine code (use `new_labeled` so the lock participates in deadlock detection and `\lock-stats`) |
//! | `R005` | error   | crate root missing `#![forbid(unsafe_code)]` |
//! | `R006` | error   | `Instant::now` / `SystemTime::now` in planner/optimizer code (plans must be deterministic functions of catalog + query) |
//! | `R000` | error   | malformed `srclint: allow` directive (unknown rule or missing justification) |
//!
//! ## Per-file allows
//!
//! A file opts out of one rule with a justified directive comment:
//!
//! ```text
//! // srclint: allow(R002): lexer peeks are guarded by is_some checks two lines up
//! ```
//!
//! The justification is mandatory — an empty one fires `R000` and does
//! not suppress. Directives are file-wide: srclint is a review gate, not
//! a per-line escape hatch, and a file that needs many distinct waivers
//! should be split or fixed.
//!
//! ## Scope
//!
//! What runs where is decided from the file's workspace-relative path
//! (see [`FileClass`]): compat shims get only `R005`, test code and
//! fixtures are exempt from the panic-discipline rules, `R006` applies
//! only to planner/optimizer paths.

use crate::{Diagnostic, Severity};

// ---- lexer ----------------------------------------------------------------

/// What a lexed token is. Comments are kept (allow directives live in
/// them); rule matching skips them via [`Lexed::code_tokens`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    /// One punctuation byte (`:`, `(`, `#`, …). Multi-byte operators are
    /// consecutive `Punct` tokens.
    Punct,
    /// String/char/byte/number literal, lexed as one atom.
    Literal,
    /// `// …`, `/// …`, `//! …`, `/* … */` (nested ok), incl. doc text.
    Comment,
}

/// One token: kind, byte range, 1-based line of its first byte.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
}

/// A lexed file: the source plus its token stream.
pub struct Lexed<'a> {
    pub source: &'a str,
    pub tokens: Vec<Token>,
}

impl<'a> Lexed<'a> {
    pub fn text(&self, t: &Token) -> &'a str {
        &self.source[t.start..t.end]
    }

    /// Indices of non-comment tokens, in order.
    fn code_tokens(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| self.tokens[i].kind != TokKind::Comment)
            .collect()
    }
}

/// Lex `source` into tokens. Total: never panics, any input produces a
/// token stream (unterminated constructs run to end of input).
pub fn lex(source: &str) -> Lexed<'_> {
    let b = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines in b[from..to] into `line`.
    fn advance_lines(b: &[u8], from: usize, to: usize, line: &mut u32) {
        *line += b[from..to].iter().filter(|&&c| c == b'\n').count() as u32;
    }

    while i < b.len() {
        let start = i;
        let start_line = line;
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => {
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::Comment, start, end: i, line: start_line });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                tokens.push(Token { kind: TokKind::Comment, start, end: i, line: start_line });
            }
            b'"' => {
                i = lex_string(b, i);
                advance_lines(b, start, i, &mut line);
                tokens.push(Token { kind: TokKind::Literal, start, end: i, line: start_line });
            }
            b'r' | b'b' | b'c' if starts_raw_or_bytes(b, i) => {
                i = lex_prefixed_literal(b, i);
                advance_lines(b, start, i, &mut line);
                tokens.push(Token { kind: TokKind::Literal, start, end: i, line: start_line });
            }
            b'\'' => {
                // Char literal vs lifetime. `'a'`, `'\n'`, `'\u{1F4A9}'`
                // are chars; `'a` followed by non-quote is a lifetime.
                if let Some(end) = try_lex_char(b, i) {
                    i = end;
                    tokens.push(Token {
                        kind: TokKind::Literal,
                        start,
                        end: i,
                        line: start_line,
                    });
                } else {
                    i += 1; // the quote
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    tokens.push(Token {
                        kind: TokKind::Ident, // lifetimes rule-match like idents
                        start,
                        end: i,
                        line: start_line,
                    });
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                i += 1;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::Ident, start, end: i, line: start_line });
            }
            c if c.is_ascii_digit() => {
                // Numbers as atoms; `1.5e-3`, `0xFF_u32` all one literal.
                i += 1;
                while i < b.len()
                    && (b[i] == b'_'
                        || b[i] == b'.'
                        || b[i].is_ascii_alphanumeric()
                        || ((b[i] == b'+' || b[i] == b'-')
                            && matches!(b[i - 1], b'e' | b'E')))
                {
                    // Leave `1..2` (range) and `1.method()` intact: a dot
                    // followed by a non-digit is not part of the number.
                    if b[i] == b'.' && !b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token { kind: TokKind::Literal, start, end: i, line: start_line });
            }
            _ => {
                // Multi-byte UTF-8 scalar or single punctuation byte.
                let mut end = i + 1;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                i = end;
                tokens.push(Token { kind: TokKind::Punct, start, end: i, line: start_line });
            }
        }
    }
    Lexed { source, tokens }
}

/// Does `b[i..]` start a raw string (`r"`, `r#"`), byte string (`b"`,
/// `br"`), byte char (`b'`), or C string (`c"`) literal — as opposed to a
/// plain identifier like `radius` or a raw identifier like `r#type`?
fn starts_raw_or_bytes(b: &[u8], i: usize) -> bool {
    let rest = &b[i + 1..];
    match b[i] {
        b'r' | b'c' => {
            // r" | r#…" (raw string; r#ident is a raw identifier)
            if rest.first() == Some(&b'"') {
                return true;
            }
            let hashes = rest.iter().take_while(|&&c| c == b'#').count();
            hashes > 0 && rest.get(hashes) == Some(&b'"')
        }
        b'b' => match rest.first() {
            Some(&b'"') | Some(&b'\'') => true,
            Some(&b'r') => {
                let rest2 = &rest[1..];
                if rest2.first() == Some(&b'"') {
                    return true;
                }
                let hashes = rest2.iter().take_while(|&&c| c == b'#').count();
                hashes > 0 && rest2.get(hashes) == Some(&b'"')
            }
            _ => false,
        },
        _ => false,
    }
}

/// Lex a plain `"…"` string starting at the opening quote; returns the
/// index one past the closing quote (or end of input).
fn lex_string(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Lex a literal with an `r`/`b`/`c` prefix (raw/byte/C strings, byte
/// chars) starting at the prefix; returns the index one past its end.
fn lex_prefixed_literal(b: &[u8], mut i: usize) -> usize {
    let mut raw = false;
    while i < b.len() && matches!(b[i], b'r' | b'b' | b'c') {
        raw |= b[i] == b'r';
        i += 1;
    }
    if raw {
        let hashes = b[i..].iter().take_while(|&&c| c == b'#').count();
        i += hashes;
        if b.get(i) != Some(&b'"') {
            return i; // not actually a literal; treated as consumed prefix
        }
        i += 1;
        // Scan for `"` followed by `hashes` hashes.
        while i < b.len() {
            if b[i] == b'"' && b[i + 1..].iter().take(hashes).filter(|&&c| c == b'#').count() == hashes
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
        i
    } else if b.get(i) == Some(&b'\'') {
        // Byte char b'…'.
        i += 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i = (i + 2).min(b.len()),
                b'\'' => return i + 1,
                _ => i += 1,
            }
        }
        i
    } else {
        // b"…" / c"…"
        lex_string(b, i)
    }
}

/// If `b[i..]` (at a `'`) is a char literal, return its end; `None` for a
/// lifetime.
fn try_lex_char(b: &[u8], i: usize) -> Option<usize> {
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        // Escaped char: scan to the closing quote.
        let mut j = i + 2;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(j);
    }
    // `'x'` — a single scalar then a quote is a char; anything else
    // (ident char not followed by `'`) is a lifetime.
    let mut j = i + 1 + utf8_len(next);
    if b.get(j) == Some(&b'\'') {
        return Some(j + 1);
    }
    // Multi-char like `'abc'`? Not valid Rust, but stay total: if a quote
    // appears before whitespace, treat as a (malformed) char literal.
    if !(next == b'_' || next.is_ascii_alphanumeric()) {
        while j < b.len() && !b[j].is_ascii_whitespace() {
            if b[j] == b'\'' {
                return Some(j + 1);
            }
            j += 1;
        }
    }
    None
}

fn utf8_len(first: u8) -> usize {
    match first {
        c if c < 0x80 => 1,
        c if c >= 0xF0 => 4,
        c if c >= 0xE0 => 3,
        _ => 2,
    }
}

// ---- scope classification -------------------------------------------------

/// Which rule set a file gets, decided from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/compat/**`: vendored API stand-ins; only `R005` applies
    /// (the shims hold the `std::sync` primitives everything wraps).
    Compat,
    /// `crates/xtask/**`, `crates/bench/**`, `**/benches/**`,
    /// `**/examples/**`: developer tooling and demos may unwrap and
    /// panic, but still must not use raw `std::sync` locks.
    Tooling,
    /// `tests/**` integration tests and lint fixtures.
    TestCode,
    /// Everything else: engine library code — the full rule set.
    Engine,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(path: &str) -> FileClass {
    let p = path.replace('\\', "/");
    if p.starts_with("crates/compat/") {
        FileClass::Compat
    } else if p.starts_with("crates/xtask/")
        || p.starts_with("crates/bench/")
        || p.starts_with("examples/")
        || p.contains("/benches/")
        || p.contains("/examples/")
    {
        FileClass::Tooling
    } else if p.starts_with("tests/") || p.contains("/tests/") {
        FileClass::TestCode
    } else {
        FileClass::Engine
    }
}

/// Is this file a crate root (`R005` checks only these)?
fn is_crate_root(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.ends_with("src/lib.rs") || p.ends_with("src/main.rs")
}

/// Planner/optimizer paths where `R006` (no wall-clock) applies: the plan
/// builder and every rewrite pass. Plans must be deterministic functions
/// of (catalog version, query text) — the plan cache and EXPLAIN
/// snapshots depend on it.
fn is_planner_code(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.ends_with("relational/src/plan.rs") || p.contains("relational/src/opt/")
}

// ---- allow directives -----------------------------------------------------

const RULES: &[&str] = &["R001", "R002", "R003", "R004", "R005", "R006"];

/// Parse `// srclint: allow(RXXX): justification` directives out of the
/// comment tokens. Returns the allowed codes; malformed directives push
/// `R000` diagnostics instead of suppressing anything.
fn parse_allows(lexed: &Lexed<'_>, out: &mut Vec<Diagnostic>) -> Vec<&'static str> {
    let mut allowed = Vec::new();
    for t in &lexed.tokens {
        if t.kind != TokKind::Comment {
            continue;
        }
        let text = lexed.text(t);
        // Directives live only in plain comments and must open them —
        // doc comments (`///`, `//!`, `/**`, `/*!`) are documentation
        // and may *mention* the syntax without activating it.
        let body = if let Some(rest) = text.strip_prefix("//") {
            if rest.starts_with('/') || rest.starts_with('!') {
                continue;
            }
            rest
        } else if let Some(rest) = text.strip_prefix("/*") {
            if rest.starts_with('*') || rest.starts_with('!') {
                continue;
            }
            rest.trim_end_matches("*/")
        } else {
            continue;
        };
        let Some(rest) = body.trim_start().strip_prefix("srclint:") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            out.push(
                Diagnostic::error(
                    "R000",
                    format!("malformed srclint directive on line {}: expected `srclint: allow(RXXX): justification`", t.line),
                )
                .with_span(t.start, t.end),
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(
                Diagnostic::error(
                    "R000",
                    format!("unclosed srclint allow directive on line {}", t.line),
                )
                .with_span(t.start, t.end),
            );
            continue;
        };
        let code = rest[..close].trim();
        let Some(&code) = RULES.iter().find(|&&r| r == code) else {
            out.push(
                Diagnostic::error(
                    "R000",
                    format!("srclint allow on line {} names unknown rule `{code}`", t.line),
                )
                .with_span(t.start, t.end),
            );
            continue;
        };
        let justification = rest[close + 1..].trim_start_matches(':').trim();
        if justification.is_empty() {
            out.push(
                Diagnostic::error(
                    "R000",
                    format!(
                        "srclint allow({code}) on line {} has no justification — \
                         `// srclint: allow({code}): <why this file is exempt>`",
                        t.line
                    ),
                )
                .with_span(t.start, t.end),
            );
            continue;
        }
        allowed.push(code);
    }
    allowed
}

// ---- `#[cfg(test)]` region detection --------------------------------------

/// Byte ranges of `#[cfg(test)] mod … { … }` bodies (and any item a
/// `#[test]`/`#[cfg(test)]` attribute introduces), where the test-only
/// exemptions (R002/R003/R004) apply even in engine files.
fn test_regions(lexed: &Lexed<'_>, code: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let toks = &lexed.tokens;
    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        // Match `#` `[` … `]` containing ident `test`.
        if toks[i].kind == TokKind::Punct && lexed.text(&toks[i]) == "#" {
            let Some(&open) = code.get(k + 1) else { break };
            if lexed.text(&toks[open]) == "[" {
                // Scan the attribute body to its matching `]`.
                let mut depth = 0usize;
                let mut saw_test = false;
                let mut m = k + 1;
                let mut end_k = None;
                while m < code.len() {
                    let t = &toks[code[m]];
                    match (t.kind, lexed.text(t)) {
                        (TokKind::Punct, "[") => depth += 1,
                        (TokKind::Punct, "]") => {
                            depth -= 1;
                            if depth == 0 {
                                end_k = Some(m);
                                break;
                            }
                        }
                        (TokKind::Ident, "test") => saw_test = true,
                        _ => {}
                    }
                    m += 1;
                }
                let Some(end_k) = end_k else { break };
                if saw_test {
                    // The attributed item runs to the end of its brace
                    // block: find the first `{` and its match.
                    let mut n = end_k + 1;
                    let mut brace_depth = 0usize;
                    let mut started = false;
                    while n < code.len() {
                        let t = &toks[code[n]];
                        match (t.kind, lexed.text(t)) {
                            (TokKind::Punct, "{") => {
                                brace_depth += 1;
                                started = true;
                            }
                            (TokKind::Punct, "}") => {
                                brace_depth = brace_depth.saturating_sub(1);
                                if started && brace_depth == 0 {
                                    regions.push((toks[code[end_k]].end, t.end));
                                    break;
                                }
                            }
                            (TokKind::Punct, ";") if !started => {
                                // Attribute on a braceless item.
                                regions.push((toks[code[end_k]].end, t.end));
                                break;
                            }
                            _ => {}
                        }
                        n += 1;
                    }
                    if n >= code.len() {
                        regions.push((toks[code[end_k]].end, lexed.source.len()));
                    }
                    k = end_k + 1;
                    continue;
                }
                k = end_k + 1;
                continue;
            }
        }
        k += 1;
    }
    regions
}

fn in_regions(regions: &[(usize, usize)], pos: usize) -> bool {
    regions.iter().any(|&(s, e)| pos >= s && pos < e)
}

// ---- rules ----------------------------------------------------------------

/// Lint one file. `path` is workspace-relative and decides the rule
/// scope; `source` is the file text.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let code = lexed.code_tokens();
    let mut out: Vec<Diagnostic> = Vec::new();
    let allowed = parse_allows(&lexed, &mut out);
    let class = classify(path);
    let tests = test_regions(&lexed, &code);

    let allow = |rule: &str| allowed.contains(&rule);
    let toks = &lexed.tokens;
    let text = |k: usize| lexed.text(&toks[code[k]]);
    let is = |k: usize, s: &str| code.get(k).is_some_and(|&i| lexed.text(&toks[i]) == s);

    // R005 first: crate roots only, every class (even compat — the shims
    // are exactly where unsafe would be tempting).
    if is_crate_root(path) && !allow("R005") {
        let mut found = false;
        for k in 0..code.len().saturating_sub(7) {
            if text(k) == "#"
                && is(k + 1, "!")
                && is(k + 2, "[")
                && is(k + 3, "forbid")
                && is(k + 4, "(")
                && is(k + 5, "unsafe_code")
                && is(k + 6, ")")
                && is(k + 7, "]")
            {
                found = true;
                break;
            }
        }
        if !found {
            out.push(Diagnostic::error(
                "R005",
                "crate root missing `#![forbid(unsafe_code)]`".to_string(),
            ));
        }
    }
    if class == FileClass::Compat {
        out.sort_by_key(|d| d.span.map(|s| s.start));
        return out;
    }

    let full_rules = class == FileClass::Engine;
    let planner = is_planner_code(path);

    for k in 0..code.len() {
        let t = &toks[code[k]];
        let w = lexed.text(t);

        // R001: `std :: sync :: {Mutex,RwLock}` or `use std::sync::{…}`.
        if w == "std" && !allow("R001") && is(k + 1, ":") && is(k + 2, ":")
            && is(k + 3, "sync") && is(k + 4, ":") && is(k + 5, ":")
        {
            let mut hits: Vec<(&str, Token)> = Vec::new();
            if let Some(&i6) = code.get(k + 6) {
                let t6 = &toks[i6];
                let w6 = lexed.text(t6);
                if w6 == "Mutex" || w6 == "RwLock" {
                    hits.push((w6, *t6));
                } else if w6 == "{" {
                    // Scan the use-group to its `}` for the lock types.
                    let mut m = k + 7;
                    let mut depth = 1usize;
                    while m < code.len() && depth > 0 {
                        let tm = &toks[code[m]];
                        match lexed.text(tm) {
                            "{" => depth += 1,
                            "}" => depth -= 1,
                            "Mutex" | "RwLock" if depth == 1 => {
                                hits.push((lexed.text(tm), *tm));
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                }
            }
            for (name, ht) in hits {
                out.push(
                    Diagnostic::error(
                        "R001",
                        format!(
                            "`std::sync::{name}` on line {} — use the labeled \
                             `parking_lot::{name}` shim so the lock participates \
                             in lock-order tracking",
                            ht.line
                        ),
                    )
                    .with_span(ht.start, ht.end),
                );
            }
        }

        // R002: `.unwrap()` / `.expect(` in non-test engine code.
        if full_rules
            && !allow("R002")
            && w == "."
            && !in_regions(&tests, t.start)
        {
            if is(k + 1, "unwrap") && is(k + 2, "(") && is(k + 3, ")") {
                let ut = &toks[code[k + 1]];
                out.push(
                    Diagnostic::error(
                        "R002",
                        format!(
                            "`.unwrap()` in library code on line {} — propagate a \
                             typed error or justify with a srclint allow",
                            ut.line
                        ),
                    )
                    .with_span(ut.start, ut.end),
                );
            } else if is(k + 1, "expect") && is(k + 2, "(") {
                let ut = &toks[code[k + 1]];
                out.push(
                    Diagnostic::error(
                        "R002",
                        format!(
                            "`.expect(…)` in library code on line {} — propagate a \
                             typed error or justify with a srclint allow",
                            ut.line
                        ),
                    )
                    .with_span(ut.start, ut.end),
                );
            }
        }

        // R003: `panic!` outside tests.
        if full_rules
            && !allow("R003")
            && w == "panic"
            && is(k + 1, "!")
            && !in_regions(&tests, t.start)
        {
            out.push(
                Diagnostic::error(
                    "R003",
                    format!(
                        "`panic!` in library code on line {} — return an error \
                         (or move the check into a test/sabotage hook)",
                        t.line
                    ),
                )
                .with_span(t.start, t.end),
            );
        }

        // R004: unlabeled lock construction in engine code.
        if full_rules
            && !allow("R004")
            && (w == "Mutex" || w == "RwLock")
            && is(k + 1, ":")
            && is(k + 2, ":")
            && is(k + 3, "new")
            && is(k + 4, "(")
            && !in_regions(&tests, t.start)
        {
            out.push(
                Diagnostic::warning(
                    "R004",
                    format!(
                        "unlabeled `{w}::new` on line {} — use \
                         `{w}::new_labeled(\"site.label\", …)` so the lock joins \
                         deadlock detection and `\\lock-stats`",
                        t.line
                    ),
                )
                .with_span(t.start, t.end),
            );
        }

        // R006: wall-clock reads in planner/optimizer code.
        if planner
            && !allow("R006")
            && (w == "Instant" || w == "SystemTime")
            && is(k + 1, ":")
            && is(k + 2, ":")
            && is(k + 3, "now")
        {
            out.push(
                Diagnostic::error(
                    "R006",
                    format!(
                        "`{w}::now` in planner code on line {} — plans must be \
                         deterministic functions of catalog + query (time the \
                         execution, not the plan)",
                        t.line
                    ),
                )
                .with_span(t.start, t.end),
            );
        }
    }

    out.sort_by_key(|d| d.span.map(|s| s.start));
    out
}

// ---- workspace walker -----------------------------------------------------

/// Lint every `.rs` file under `root`, returning per-file findings for
/// files with at least one, sorted by path. Skips build output, VCS
/// metadata, and the lint fixture corpus (fixtures are linted by the
/// golden test, on purpose — half of them must fire).
pub fn lint_workspace(root: &std::path::Path) -> std::io::Result<Vec<(String, Vec<Diagnostic>)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))?;
        let diags = lint_source(&rel, &source);
        if !diags.is_empty() {
            out.push((rel, diags));
        }
    }
    Ok(out)
}

fn collect_rs_files(
    root: &std::path::Path,
    dir: &std::path::Path,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Render findings the way the golden snapshot and `cargo xtask srclint`
/// print them: one `path: severity[code]: message` line per finding.
pub fn render_findings(findings: &[(String, Vec<Diagnostic>)]) -> String {
    let mut s = String::new();
    for (path, diags) in findings {
        for d in diags {
            s.push_str(&format!("{path}: {}[{}]: {}\n", d.severity, d.code, d.message));
        }
    }
    s
}

/// Does any finding gate the build? (`R004` is a warning; everything
/// else is an error.)
pub fn has_errors(findings: &[(String, Vec<Diagnostic>)]) -> bool {
    findings
        .iter()
        .flat_map(|(_, ds)| ds)
        .any(|d| d.severity >= Severity::Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn lexer_skips_strings_and_comments() {
        let src = r#"
            // .unwrap() in a comment
            /* panic! in a block /* nested */ still comment */
            /// doc: x.unwrap()
            fn f() -> String { "std::sync::Mutex .unwrap() panic!".to_string() }
        "#;
        assert!(codes("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn raw_strings_and_chars_do_not_confuse_the_lexer() {
        let src = r##"
            fn f() {
                let s = r#"not code: .unwrap() "quoted" panic!"#;
                let c = '"';
                let esc = '\'';
                let bytes = b"panic!";
                let _ = (s, c, esc, bytes);
                let lifetime: &'static str = "x";
                let _ = lifetime;
            }
        "##;
        assert!(codes("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn r001_fires_on_direct_and_grouped_use() {
        let direct = "fn f(m: &std::sync::Mutex<u8>) {}";
        assert_eq!(codes("crates/core/src/x.rs", direct), vec!["R001"]);
        let grouped = "use std::sync::{Arc, Mutex, RwLock};";
        assert_eq!(codes("crates/core/src/x.rs", grouped), vec!["R001", "R001"]);
        let atomic = "use std::sync::{Arc, atomic::AtomicU64};";
        assert!(codes("crates/core/src/x.rs", atomic).is_empty());
    }

    #[test]
    fn r002_and_r003_exempt_test_regions_and_test_files() {
        let src = r#"
            fn lib() { maybe().unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { maybe().unwrap(); panic!("fine here"); }
            }
        "#;
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["R002"]);
        assert!(codes("tests/integration.rs", src).is_empty());
    }

    #[test]
    fn r004_wants_labels_but_not_in_tests() {
        let src = r#"
            fn f() { let _m = Mutex::new(0); }
            fn g() { let _m = Mutex::new_labeled("x.y", 0); }
            #[cfg(test)]
            mod tests { fn t() { let _m = RwLock::new(0); } }
        "#;
        assert_eq!(codes("crates/core/src/x.rs", src), vec!["R004"]);
    }

    #[test]
    fn r005_only_on_crate_roots() {
        let src = "pub fn f() {}";
        assert_eq!(codes("crates/core/src/lib.rs", src), vec!["R005"]);
        assert!(codes("crates/core/src/other.rs", src).is_empty());
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}";
        assert!(codes("crates/core/src/lib.rs", ok).is_empty());
    }

    #[test]
    fn r006_only_in_planner_paths() {
        let src = "fn f() { let _t = std::time::Instant::now(); }";
        assert_eq!(codes("crates/relational/src/opt/rules.rs", src), vec!["R006"]);
        assert!(codes("crates/relational/src/exec/stream.rs", src).is_empty());
    }

    #[test]
    fn allows_suppress_with_justification_only() {
        let with = "// srclint: allow(R002): probe is guarded by contains_key\nfn f() { x().unwrap(); }";
        assert!(codes("crates/core/src/x.rs", with).is_empty());
        let without = "// srclint: allow(R002):\nfn f() { x().unwrap(); }";
        assert_eq!(codes("crates/core/src/x.rs", without), vec!["R000", "R002"]);
        let unknown = "// srclint: allow(R099): nope\nfn f() {}";
        assert_eq!(codes("crates/core/src/x.rs", unknown), vec!["R000"]);
    }

    #[test]
    fn compat_class_gets_only_r005() {
        let src = "use std::sync::Mutex;\nfn f() { x().unwrap(); panic!(); }";
        assert!(codes("crates/compat/parking_lot/src/inner.rs", src).is_empty());
        assert_eq!(codes("crates/compat/parking_lot/src/lib.rs", src), vec!["R005"]);
    }

    #[test]
    fn tooling_class_skips_panic_discipline() {
        let src = "use std::sync::Mutex;\nfn f() { x().unwrap(); panic!(); }";
        assert_eq!(codes("crates/xtask/src/gates.rs", src), vec!["R001"]);
    }

    #[test]
    fn totality_on_nasty_inputs() {
        for src in [
            "",
            "\"unterminated",
            "r#\"unterminated raw",
            "/* unterminated block /* nested",
            "'",
            "b'",
            "'\\",
            "𝕊𝕥𝕣𝕒𝕟𝕘𝕖 𝕦𝕟𝕚𝕔𝕠𝕕𝕖 §§§",
            "#![]",
            "# ! [ forbid ( unsafe_code ) ]",
            "0x 1. 2e+ 'a 'b1 r#type",
        ] {
            let _ = lint_source("crates/core/src/x.rs", src);
            let _ = lint_source("crates/core/src/lib.rs", src);
        }
    }

    #[test]
    fn spaced_forbid_attribute_is_recognised() {
        let src = "# ! [ forbid ( unsafe_code ) ]\npub fn f() {}";
        assert!(codes("crates/core/src/lib.rs", src).is_empty());
    }
}
