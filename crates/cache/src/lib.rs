// srclint: allow(R002): the expect re-reads an entry inserted under the same &mut borrow (map/order coherence is this type's invariant)
//! # crosse-cache
//!
//! A small bounded LRU cache shared by the query layers: the relational
//! plan cache, the SPARQL prepared-query cache, and the SESQL AST cache
//! all key compiled artefacts by normalized query text and must stay
//! bounded under adversarial traffic (millions of distinct query strings
//! must not grow memory without bound).
//!
//! The implementation favours simplicity over peak throughput: a
//! `HashMap` from key to a stamped entry plus a `BTreeMap` from stamp to
//! key gives O(log n) touch/evict, which is noise next to the parse/plan
//! work a hit saves. Statistics ([`CacheStats`]) count hits, misses and
//! evictions so callers can surface cache behaviour to operators.
//!
//! The cache itself is not synchronised; engines wrap it in a mutex (all
//! call sites hold the lock only for the map operation, never while
//! parsing or planning).

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Cumulative statistics of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries pushed out by capacity pressure (not explicit clears).
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry<K, V> {
    stamp: u64,
    /// Copy of the map key, so a hit can refresh the recency index
    /// without requiring the caller to hand back an owned key.
    key: K,
    value: V,
}

/// A bounded least-recently-used map.
///
/// `get` refreshes recency; `put` evicts the least recently used entry
/// once the capacity is reached. Capacity 0 disables caching entirely
/// (every `get` misses, every `put` is dropped).
#[derive(Debug)]
pub struct Lru<K, V> {
    map: HashMap<K, Entry<K, V>>,
    order: BTreeMap<u64, K>,
    stamp: u64,
    capacity: usize,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    pub fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            order: BTreeMap::new(),
            stamp: 0,
            capacity,
            stats: CacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the capacity, evicting LRU entries if the cache shrank.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.map.len() > self.capacity {
            self.evict_one();
        }
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop every entry (does not count as evictions).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn next_stamp(&mut self) -> u64 {
        self.stamp += 1;
        self.stamp
    }

    fn evict_one(&mut self) -> Option<(K, V)> {
        if let Some((&oldest, _)) = self.order.iter().next() {
            if let Some(key) = self.order.remove(&oldest) {
                let entry = self.map.remove(&key);
                self.stats.evictions += 1;
                return entry.map(|e| (key, e.value));
            }
        }
        None
    }

    /// Look up `key` without touching recency or the hit/miss counters —
    /// for diagnostic paths (e.g. `EXPLAIN`) that must not perturb what
    /// they observe.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(key).map(|e| &e.value)
    }

    /// Look up `key`, refreshing its recency. Clones are the caller's
    /// concern — values are typically `Arc`s.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let stamp = self.next_stamp();
        match self.map.get_mut(key) {
            Some(entry) => {
                self.order.remove(&entry.stamp);
                entry.stamp = stamp;
                self.order.insert(stamp, entry.key.clone());
                self.stats.hits += 1;
                Some(&self.map.get(key).expect("just seen").value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the LRU entry if full.
    pub fn put(&mut self, key: K, value: V) {
        self.put_evicting(key, value);
    }

    /// [`Lru::put`], returning the entries this insert displaced — the
    /// replaced value under the same key and/or capacity evictions — so
    /// callers owning resources tied to cached values (e.g. materialised
    /// tables) can release them.
    pub fn put_evicting(&mut self, key: K, value: V) -> Vec<(K, V)> {
        if self.capacity == 0 {
            return Vec::new();
        }
        let mut displaced = Vec::new();
        let stamp = self.next_stamp();
        if let Some(old) = self.map.remove(&key) {
            self.order.remove(&old.stamp);
            displaced.push((key.clone(), old.value));
        } else {
            while self.map.len() >= self.capacity {
                displaced.extend(self.evict_one());
            }
        }
        self.order.insert(stamp, key.clone());
        self.map.insert(key.clone(), Entry { stamp, key, value });
        displaced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_eviction_counting() {
        let mut lru: Lru<String, u32> = Lru::new(2);
        assert!(lru.get("a").is_none());
        lru.put("a".into(), 1);
        lru.put("b".into(), 2);
        assert_eq!(lru.get("a"), Some(&1));
        lru.put("c".into(), 3); // evicts b (LRU)
        assert!(lru.get("b").is_none());
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("c"), Some(&3));
        let s = lru.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn put_refreshes_existing_key_without_eviction() {
        let mut lru: Lru<String, u32> = Lru::new(2);
        lru.put("a".into(), 1);
        lru.put("b".into(), 2);
        lru.put("a".into(), 10);
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.stats().evictions, 0);
        assert_eq!(lru.get("a"), Some(&10));
    }

    #[test]
    fn capacity_zero_disables() {
        let mut lru: Lru<u32, u32> = Lru::new(0);
        lru.put(1, 1);
        assert!(lru.is_empty());
        assert!(lru.get(&1).is_none());
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut lru: Lru<u32, u32> = Lru::new(4);
        for i in 0..4 {
            lru.put(i, i);
        }
        lru.set_capacity(1);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.stats().evictions, 3);
        // The survivor is the most recently used.
        assert_eq!(lru.get(&3), Some(&3));
    }

    #[test]
    fn clear_resets_entries_not_stats() {
        let mut lru: Lru<u32, u32> = Lru::new(2);
        lru.put(1, 1);
        assert_eq!(lru.get(&1), Some(&1));
        lru.clear();
        assert!(lru.get(&1).is_none());
        assert_eq!(lru.stats().hits, 1);
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut lru: Lru<String, usize> = Lru::new(8);
        for i in 0..1000 {
            lru.put(format!("q{i}"), i);
        }
        assert_eq!(lru.len(), 8);
        assert_eq!(lru.stats().evictions, 992);
        // The most recent 8 are present.
        for i in 992..1000 {
            assert!(lru.get(format!("q{i}").as_str()).is_some());
        }
    }
}
