//! # crosse-wal
//!
//! Durability primitives for the CroSSE engine: a write-ahead log of
//! length-prefixed, CRC32-checksummed redo records, snapshot checkpoints,
//! and replay-on-open crash recovery. The crate is deliberately store-
//! agnostic (and dependency-free): payloads are opaque byte strings tagged
//! with a *channel* byte, so the relational engine and the RDF store share
//! one log — and one LSN sequence — without this crate knowing either's
//! record schema.
//!
//! ## On-disk layout (one directory per database)
//!
//! * `wal.log` — the live log segment. Header `CROSWAL1` + base LSN;
//!   then records `[len u32][crc32 u32][lsn u64][chan u8][payload]`.
//! * `wal.prev` — the previous segment, present only inside a checkpoint
//!   window (rotated out at checkpoint begin, deleted once the snapshot
//!   is durable).
//! * `snapshot.bin` — the latest checkpoint. Header `CROSNAP1` + the LSN
//!   it covers + tagged sections + a trailing whole-file CRC32. Written
//!   to `snapshot.tmp` first and atomically renamed.
//!
//! ## Protocol
//!
//! Appenders hold the [`WalStore::barrier`] read lock across their whole
//! log-then-apply critical section; a checkpoint takes the write lock
//! only long enough to read the pin LSN and rotate the segment, then
//! serialises the pinned state *off-thread* while writers proceed.
//! Recovery loads the newest valid snapshot, replays both segments
//! skipping records the snapshot already covers, tolerates a torn final
//! record (truncate-and-warn) and rejects mid-log corruption with a typed
//! [`WalError`] — never a panic.

#![forbid(unsafe_code)]

mod enc;
mod error;
mod log;

pub use enc::{crc32, Decoder, Encoder};
pub use error::{Result, WalError};
pub use log::{Record, Recovered, SyncPolicy, WalOptions, WalStats, WalStore};

/// Channel tag for relational redo records (also used as the snapshot
/// section tag for the relational catalog).
pub const CHAN_REL: u8 = 1;
/// Channel tag for RDF triple-store redo records / snapshot section.
pub const CHAN_RDF: u8 = 2;
