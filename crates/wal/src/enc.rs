// srclint: allow(R002): take(n) returns exactly n bytes, so the fixed-width try_into cannot fail
//! Hand-rolled binary encoding: little-endian fixed-width integers,
//! length-prefixed strings, and the CRC32 (IEEE 802.3) checksum. The
//! workspace has no serde; every store serialises its records and
//! snapshot sections through these two small helpers so the byte-level
//! conventions stay identical across crates.

use crate::error::{Result, WalError};

/// CRC32 lookup tables (IEEE polynomial, reflected: 0xEDB88320), built at
/// compile time. Eight tables for the slicing-by-8 kernel: table 0 is the
/// classic per-byte table, table k folds a byte that sits k positions
/// ahead in the stream.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC32 (IEEE) of a byte string. Slicing-by-8: records are kilobytes
/// (a bulk INSERT is one record), so the checksum is on the hot write
/// path and the per-byte kernel would tax every append.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only byte writer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap) }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    /// Raw bytes with no length prefix (framing the caller controls).
    pub fn raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Cursor-style reader over an encoded byte string. Every accessor is
/// bounds-checked and returns a typed error instead of panicking — the
/// input may be a half-written or corrupted record.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(WalError::BadRecord(format!(
                "unexpected end of payload (need {n} bytes at offset {}, have {})",
                self.pos,
                self.buf.len().saturating_sub(self.pos)
            ))),
        }
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WalError::BadRecord(format!("invalid utf-8 string: {e}")))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Remaining unread byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the whole payload was consumed — trailing garbage on a
    /// record means the encoder and decoder disagree about the schema.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WalError::BadRecord(format!(
                "{} unconsumed trailing bytes",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn roundtrip_all_types() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.i64(-42);
        e.f64(3.25);
        e.str("héllo");
        e.bytes(&[1, 2, 3]);
        let buf = e.into_vec();

        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 3.25);
        assert_eq!(d.str().unwrap(), "héllo");
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_typed_error_not_panic() {
        let mut e = Encoder::new();
        e.str("hello");
        let buf = e.into_vec();
        let mut d = Decoder::new(&buf[..3]); // inside the length prefix
        assert!(d.str().is_err());
        let mut d = Decoder::new(&buf[..6]); // length ok, body short
        assert!(d.str().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.u8(1);
        e.u8(2);
        let buf = e.into_vec();
        let mut d = Decoder::new(&buf);
        d.u8().unwrap();
        assert!(d.finish().is_err());
        d.u8().unwrap();
        d.finish().unwrap();
    }

    #[test]
    fn invalid_utf8_is_typed_error() {
        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let buf = e.into_vec();
        let mut d = Decoder::new(&buf);
        assert!(d.str().is_err());
    }
}
