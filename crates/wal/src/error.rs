//! Typed durability errors.
//!
//! I/O failures are carried as rendered messages (not `std::io::Error`)
//! so the enum stays `Clone + PartialEq + Eq` — the engine error enums it
//! threads through derive those.

use std::fmt;

/// Errors raised by the write-ahead log, checkpointer, or recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// Underlying filesystem error (open/write/fsync/rename), with the
    /// path context baked into the message.
    Io(String),
    /// A record in the *middle* of a segment failed its CRC or framing
    /// check — silent data corruption, not a torn tail. Recovery refuses
    /// to replay past it.
    Corrupt { segment: String, offset: u64, reason: String },
    /// The snapshot file exists but is unreadable (bad magic, bad CRC,
    /// truncated).
    CorruptSnapshot(String),
    /// The log claims a snapshot base the directory does not have: records
    /// start after LSN 0 but no snapshot file exists.
    MissingSnapshot { base_lsn: u64 },
    /// The surviving snapshot + log leave a hole in the LSN sequence
    /// (e.g. a newer log paired with an older snapshot than it was
    /// truncated against).
    LsnGap { expected: u64, found: u64 },
    /// A record payload failed to decode during replay.
    BadRecord(String),
}

impl WalError {
    pub fn io(context: impl fmt::Display, e: std::io::Error) -> Self {
        WalError::Io(format!("{context}: {e}"))
    }
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "wal i/o error: {m}"),
            WalError::Corrupt { segment, offset, reason } => write!(
                f,
                "corrupt wal record in {segment} at byte {offset}: {reason}"
            ),
            WalError::CorruptSnapshot(m) => write!(f, "corrupt snapshot: {m}"),
            WalError::MissingSnapshot { base_lsn } => write!(
                f,
                "log starts at LSN {base_lsn} but no snapshot file exists"
            ),
            WalError::LsnGap { expected, found } => write!(
                f,
                "lsn gap in recovery: expected {expected}, found {found}"
            ),
            WalError::BadRecord(m) => write!(f, "bad wal record payload: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

pub type Result<T> = std::result::Result<T, WalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(WalError::Io("x".into()).to_string().contains("i/o"));
        assert!(WalError::Corrupt {
            segment: "wal.log".into(),
            offset: 7,
            reason: "crc".into()
        }
        .to_string()
        .contains("byte 7"));
        assert!(WalError::CorruptSnapshot("m".into()).to_string().contains("snapshot"));
        assert!(WalError::MissingSnapshot { base_lsn: 3 }.to_string().contains("LSN 3"));
        assert!(WalError::LsnGap { expected: 4, found: 9 }.to_string().contains("gap"));
        assert!(WalError::BadRecord("p".into()).to_string().contains("payload"));
    }
}
